//! The Arcade XML format round-trips the water-treatment models losslessly and
//! analysis results are unaffected by a round trip.

use arcade_core::Analysis;
use watertreatment::{facility, strategies, Line};

#[test]
fn all_paper_models_round_trip() {
    for line in Line::both() {
        for spec in strategies::paper_strategies() {
            let model = facility::line_model(line, &spec).unwrap();
            let xml = arcade_xml::to_xml(&model);
            let restored = arcade_xml::from_xml(&xml).expect("generated XML parses");
            assert_eq!(
                restored,
                model,
                "round trip changed the {} / {} model",
                line.id(),
                spec.label
            );
        }
    }
}

#[test]
fn serialized_facility_mentions_every_component_and_disaster() {
    let model = facility::line_model(Line::Line2, &strategies::fff(2)).unwrap();
    let xml = arcade_xml::to_xml(&model);
    for component in model.components() {
        assert!(xml.contains(&format!("name=\"{}\"", component.name())));
    }
    assert!(xml.contains("strategy=\"fff\""));
    assert!(xml.contains("crews=\"2\""));
    assert!(xml.contains(facility::DISASTER_ALL_PUMPS));
    assert!(xml.contains(facility::DISASTER_LINE2_MIXED));
    assert!(xml.contains("required-of required=\"2\""));
}

#[test]
fn analysis_results_are_preserved_across_a_round_trip() {
    let spec = strategies::frf(1);
    let original = facility::line_model(Line::Line2, &spec).unwrap();
    let restored = arcade_xml::from_xml(&arcade_xml::to_xml(&original)).unwrap();

    let analysis_original = Analysis::new(&original).unwrap();
    let analysis_restored = Analysis::new(&restored).unwrap();

    assert_eq!(
        analysis_original.state_space_stats(),
        analysis_restored.state_space_stats(),
        "state spaces differ after a round trip"
    );
    let a = analysis_original.steady_state_availability().unwrap();
    let b = analysis_restored.steady_state_availability().unwrap();
    assert!((a - b).abs() < 1e-12);

    let disaster = restored.disaster(facility::DISASTER_LINE2_MIXED).unwrap();
    let survivability_restored = analysis_restored
        .survivability(disaster, 1.0 / 3.0, 10.0)
        .unwrap();
    let disaster = original.disaster(facility::DISASTER_LINE2_MIXED).unwrap();
    let survivability_original = analysis_original
        .survivability(disaster, 1.0 / 3.0, 10.0)
        .unwrap();
    assert!((survivability_original - survivability_restored).abs() < 1e-12);
}
