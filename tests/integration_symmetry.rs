//! End-to-end checks of the isomorphic-subtree symmetry engine at the
//! facility level:
//!
//! * pinned reduction ladders for the paper's symmetric strategy pairs —
//!   Line 1 × Line 2 carries **no** cross-line symmetry, and the
//!   exact-lumping certificate proves the product minimal for the facility
//!   measures;
//! * pinned sorted-tuple orbit counts for twin facilities (two identical
//!   Line 2 copies), `n² → n(n+1)/2`, bit-identical at 1/2/4/8 threads;
//! * the matrix-free Kronecker-sum transient path agreeing with the
//!   materialised quotient path on survivability curves;
//! * the shared facility suite matching the standalone experiment runners.

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis};
use watertreatment::experiments;
use watertreatment::{facility, strategies, Line};

type TwinReference = (f64, f64, Vec<(f64, f64)>, Vec<(f64, f64)>);

fn options(threads: usize) -> ComposerOptions {
    ComposerOptions {
        exec: ExecOptions::with_threads(threads),
        ..ComposerOptions::default()
    }
}

/// The paper's DED×DED facility: two *different* lines, so the symmetry
/// engine finds no interchangeable factors, and partition refinement
/// certifies that the 160 × 96 product is already the coarsest quotient
/// respecting the facility measures — no sound cross-line reduction exists.
#[test]
fn paper_pairs_carry_no_cross_line_symmetry() {
    let model = facility::facility_model(&strategies::dedicated(), &strategies::dedicated())
        .expect("facility builds");
    let analysis = FacilityAnalysis::new(&model).expect("facility compiles");
    assert_eq!(analysis.stats().orbit_blocks, None);
    let reduction = analysis.joint_reduction().unwrap();
    assert_eq!(reduction.product_blocks, 160 * 96);
    assert_eq!(reduction.orbit_blocks, None);
    assert_eq!(reduction.solver_blocks, 160 * 96);
    assert_eq!(
        reduction.exact_blocks, reduction.solver_blocks,
        "the minimality certificate: no coarser facility-measure quotient exists"
    );

    // The cheaper FRF-1 check: factor classes only (no refinement pass).
    let model = facility::facility_model(&strategies::frf(1), &strategies::frf(1)).unwrap();
    let analysis = FacilityAnalysis::new(&model).unwrap();
    let stats = analysis.stats();
    assert_eq!(stats.joint_blocks, 449 * 257);
    assert_eq!(stats.orbit_blocks, None);
}

/// Twin facilities fold: two identical Line 2 copies under one strategy have
/// interchangeable factor chains, so the joint tuples collapse to sorted
/// pairs — 96² = 9,216 → 96·97/2 = 4,656 under DED — with all measures
/// matching the product form and the matrix-free certificate, bit-identical
/// at every thread count.
#[test]
fn twin_facility_orbit_counts_are_pinned_across_thread_counts() {
    let mut reference: Option<TwinReference> = None;
    for threads in [1usize, 2, 4, 8] {
        let model = facility::twin_facility(Line::Line2, &strategies::dedicated()).unwrap();
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();

        let stats = analysis.stats();
        assert_eq!(stats.joint_blocks, 96 * 96, "{threads} threads");
        assert_eq!(stats.orbit_blocks, Some(96 * 97 / 2), "{threads} threads");

        let reduction = analysis.joint_reduction().unwrap();
        assert_eq!(reduction.orbit_blocks, Some(4656));
        assert_eq!(reduction.solver_blocks, 4656);
        assert_eq!(
            reduction.exact_blocks, 4656,
            "the orbit fold already is the coarsest facility-measure quotient"
        );

        let joint = analysis.joint_steady_state_availability().unwrap();
        assert_eq!(joint.joint_states, 9216);
        assert_eq!(joint.solved_states, 4656);
        let product_form = analysis.steady_state_availability().unwrap();
        assert!(
            (joint.availability - product_form).abs() <= 1e-9,
            "{} vs {product_form}",
            joint.availability
        );
        assert!(joint.residual < 1e-9, "residual {}", joint.residual);

        let times = [0.5, 1.5, 4.0];
        let recovery = analysis
            .survivability_curve(facility::FACILITY_DISASTER_ALL_PUMPS, 1.0, &times)
            .unwrap();
        let cost = analysis
            .accumulated_cost_curve(Some(facility::FACILITY_DISASTER_ALL_PUMPS), &times)
            .unwrap();

        match &reference {
            None => {
                reference = Some((joint.availability, product_form, recovery, cost));
            }
            Some((availability, product, recovery_reference, cost_reference)) => {
                assert!(
                    availability.to_bits() == joint.availability.to_bits()
                        && product.to_bits() == product_form.to_bits(),
                    "steady-state results differ at {threads} threads"
                );
                for ((t1, v1), (t2, v2)) in recovery_reference.iter().zip(recovery.iter()) {
                    assert_eq!(t1, t2);
                    assert!(
                        v1.to_bits() == v2.to_bits(),
                        "recovery differs at {threads} threads: {v1} vs {v2}"
                    );
                }
                for ((t1, v1), (t2, v2)) in cost_reference.iter().zip(cost.iter()) {
                    assert_eq!(t1, t2);
                    assert!(
                        v1.to_bits() == v2.to_bits(),
                        "cost differs at {threads} threads: {v1} vs {v2}"
                    );
                }
            }
        }
    }
}

/// Pinned orbit counts for all five symmetric strategy pairs as twins: the
/// closed form `n(n+1)/2` over the pinned Line 2 quotient sizes. (The heavy
/// FRF-2/FFF-2 orbit chains are materialised in the release-mode bench and
/// the `--symmetric-only` sweep; here the counts come from the closed form,
/// which never builds the chain.)
#[test]
fn twin_orbit_counts_match_the_closed_form_for_all_strategies() {
    let expected = [
        ("DED", 96usize),
        ("FRF-1", 257),
        ("FRF-2", 387),
        ("FFF-1", 257),
        ("FFF-2", 387),
    ];
    for (label, blocks) in expected {
        let spec = strategies::paper_strategies()
            .into_iter()
            .find(|s| s.label == label)
            .unwrap();
        let model = facility::twin_facility(Line::Line2, &spec).unwrap();
        let analysis = FacilityAnalysis::new(&model).unwrap();
        let stats = analysis.stats();
        assert_eq!(stats.joint_blocks, blocks * blocks, "{label}");
        assert_eq!(
            stats.orbit_blocks,
            Some(blocks * (blocks + 1) / 2),
            "{label}"
        );
    }
}

/// The matrix-free Kronecker-sum transient path (never materialises the
/// joint chain) agrees with the quotient path to ≤ 1e-9, on both the
/// asymmetric paper facility and the orbit-folded twin.
#[test]
fn matrix_free_survivability_agrees_with_the_quotient_path() {
    let times = [0.0, 0.5, 1.0, 2.5];
    let paper =
        facility::facility_model(&strategies::dedicated(), &strategies::dedicated()).unwrap();
    let twin = facility::twin_facility(Line::Line2, &strategies::dedicated()).unwrap();
    for model in [&paper, &twin] {
        let analysis = FacilityAnalysis::new(model).unwrap();
        for level in [1.0, 1.0 / 3.0] {
            let quotient = analysis
                .survivability_curve(facility::FACILITY_DISASTER_ALL_PUMPS, level, &times)
                .unwrap();
            let matrix_free = analysis
                .matrix_free_survivability_curve(
                    facility::FACILITY_DISASTER_ALL_PUMPS,
                    level,
                    &times,
                )
                .unwrap();
            for ((t, a), (_, b)) in quotient.iter().zip(matrix_free.iter()) {
                assert!(
                    (a - b).abs() <= 1e-9,
                    "{}, level {level}, t={t}: {a} vs {b}",
                    model.name()
                );
            }
        }
    }
}

/// The shared facility suite (one `FacilityAnalysis` per pair across the
/// table and all four figures) reproduces the standalone experiment runners.
#[test]
fn facility_suite_matches_the_standalone_runners() {
    let pairs = [(strategies::dedicated(), strategies::dedicated())];
    let times = [0.0, 1.0, 2.0];
    let exec = ExecOptions::default();
    let suite = experiments::facility_suite_with(&pairs, &times, &times, &times, exec).unwrap();

    let table = experiments::table_facility_with(&pairs, exec).unwrap();
    assert_eq!(suite.table, table);
    assert_eq!(suite.table[0].solved_blocks, suite.table[0].joint_blocks);

    let (full, basic) = experiments::facility_recovery_with(&times, &pairs, exec).unwrap();
    assert_eq!(suite.recovery_full.series, full.series);
    assert_eq!(suite.recovery_basic.series, basic.series);

    let (inst, acc) = experiments::facility_cost_with(&times, &times, &pairs, exec).unwrap();
    assert_eq!(suite.cost_instantaneous.series, inst.series);
    assert_eq!(suite.cost_accumulated.series, acc.series);
}
