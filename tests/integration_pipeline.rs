//! End-to-end pipeline test: XML model -> Arcade model -> composed CTMC ->
//! CSL queries and PRISM export, all agreeing with each other.

use arcade_core::{Analysis, CompiledModel, Measure};
use csl::{parse_query, CslChecker};
use prism_export::{properties, translate};

const PLANT_XML: &str = r#"<?xml version="1.0"?>
<arcade-model name="mini-plant">
  <components>
    <component name="filter-a" mttf="1000" mttr="100" failed-cost="3"/>
    <component name="filter-b" mttf="1000" mttr="100" failed-cost="3"/>
    <component name="pump" mttf="500" mttr="1" failed-cost="3"/>
  </components>
  <repair-units>
    <repair-unit name="crew" strategy="frf" crews="1" idle-cost="1">
      <responsible ref="filter-a"/>
      <responsible ref="filter-b"/>
      <responsible ref="pump"/>
    </repair-unit>
  </repair-units>
  <structure>
    <series>
      <redundant>
        <component ref="filter-a"/>
        <component ref="filter-b"/>
      </redundant>
      <component ref="pump"/>
    </series>
  </structure>
  <disasters>
    <disaster name="everything">
      <failed ref="filter-a"/>
      <failed ref="filter-b"/>
      <failed ref="pump"/>
    </disaster>
  </disasters>
</arcade-model>
"#;

#[test]
fn xml_to_analysis_pipeline() {
    let model = arcade_xml::from_xml(PLANT_XML).expect("the embedded XML model is valid");
    assert_eq!(model.name(), "mini-plant");
    assert_eq!(model.components().len(), 3);

    let analysis = Analysis::new(&model).expect("the model composes");
    let availability = analysis.steady_state_availability().unwrap();
    assert!(availability > 0.0 && availability < 1.0);

    // The declarative measure interface agrees with the direct calls.
    let via_measure = analysis
        .evaluate(&Measure::SteadyStateAvailability)
        .unwrap()
        .as_scalar()
        .unwrap();
    assert!((via_measure - availability).abs() < 1e-12);

    // Survivability from the "everything failed" disaster is monotone in time
    // and approaches certainty.
    let disaster = model.disaster("everything").unwrap();
    let curve = analysis
        .survivability_curve(disaster, 1.0, &[1.0, 10.0, 100.0, 2000.0])
        .unwrap();
    assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9));
    assert!(curve.last().unwrap().1 > 0.99);
}

#[test]
fn csl_queries_match_the_analysis_layer() {
    let model = arcade_xml::from_xml(PLANT_XML).unwrap();
    let compiled = CompiledModel::compile(&model).unwrap();
    let checker = CslChecker::new(compiled.chain()).with_rewards(compiled.cost_rewards());

    let analysis = Analysis::from_compiled(&model, compiled.clone());

    // Availability via the CSL steady-state operator on the "operational" label.
    let availability_csl = checker
        .check(&parse_query("S=? [ \"operational\" ]").unwrap())
        .unwrap();
    let availability_direct = analysis.steady_state_availability().unwrap();
    assert!((availability_csl - availability_direct).abs() < 1e-9);

    // Unreliability via the time-bounded until operator on the "down" label.
    let unreliability = checker
        .check(&parse_query("P=? [ true U<=500 \"down\" ]").unwrap())
        .unwrap();
    let reliability_direct = analysis.reliability(500.0).unwrap();
    assert!((1.0 - unreliability - reliability_direct).abs() < 1e-9);

    // Long-run cost rate via the CSRL steady-state reward operator.
    let cost_csl = checker.check(&parse_query("R=? [ S ]").unwrap()).unwrap();
    let cost_direct = analysis.long_run_cost_rate().unwrap();
    assert!((cost_csl - cost_direct).abs() < 1e-9);
}

#[test]
fn prism_export_covers_the_composed_model() {
    let model = arcade_xml::from_xml(PLANT_XML).unwrap();
    let compiled = CompiledModel::compile(&model).unwrap();

    // The flat translation enumerates exactly the composed state space.
    let flat = translate::flat(&model, &compiled);
    let source = flat.to_source();
    assert!(source.contains(&format!("[0..{}]", compiled.chain().num_states() - 1)));
    assert!(source.contains("label \"operational\""));
    assert!(source.contains("rewards \"repair_cost\""));

    // The modular translation refuses the queueing strategy but accepts the
    // dedicated variant of the same model.
    assert!(translate::modular(&model).is_err());
    let dedicated = model
        .with_repair_strategy(arcade_core::RepairStrategy::Dedicated, 1)
        .unwrap();
    let modular = translate::modular(&dedicated).unwrap().to_source();
    assert!(modular.contains("module filter_a"));
    assert!(modular.contains("module pump"));

    // The properties file mentions every requested measure.
    let props = properties::properties_file(&[
        Measure::SteadyStateAvailability,
        Measure::Reliability { time: 1000.0 },
        Measure::AccumulatedCost {
            disaster: Some("everything".into()),
            times: vec![10.0],
        },
    ]);
    assert!(props.contains("S=? [ \"operational\" ]"));
    assert!(props.contains("U<=1000"));
    assert!(props.contains("C<=T"));
}
