//! End-to-end checks of the quotient-resident Monte-Carlo engine on the
//! paper's water-treatment models:
//!
//! * the **rare-event acceptance pin**: on a rare-failure variant of Line 2
//!   (failure rates ×10⁻³), importance sampling reaches a relative CI
//!   half-width the naive estimator cannot reach at the same replication
//!   count;
//! * integration-level bit-identity of a biased, tail-reporting run across
//!   1/2/4/8 worker threads;
//! * the facility product: simulated measures on the joint Line 1 × Line 2
//!   quotient agree with the exact [`FacilityAnalysis`].

use arcade_core::{CompiledQuotient, ComposerOptions, FacilityAnalysis};
use arcade_sim::{QuotientSimulator, SimulationOptions};
use ctmc::ExecOptions;
use watertreatment::{facility, strategies, Line};

fn options(replications: usize, seed: u64, threads: usize) -> SimulationOptions {
    SimulationOptions {
        replications,
        seed,
        exec: ExecOptions::with_threads(threads),
        ..Default::default()
    }
}

/// The pinned rare-event acceptance criterion: with every failure rate of
/// Line 2 scaled by 10⁻³, system outages over a 100 h window are so rare
/// that 4000 naive replications observe (essentially) none — the naive
/// estimator cannot produce a finite-relative-width confidence interval.
/// Failure biasing at the same replication count and seed budget reaches a
/// tight relative half-width, observes the event, and certifies unbiasedness
/// through the likelihood-ratio mean.
#[test]
fn rare_disaster_importance_sampling_beats_naive_at_equal_replications() {
    let model = facility::line_model_scaled(Line::Line2, &strategies::dedicated(), 1e-3).unwrap();
    let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
    let sim = QuotientSimulator::new(&quotient);
    let horizon = 100.0;
    let replications = 4000;

    let naive = sim
        .unavailability(horizon, &options(replications, 97, 4))
        .unwrap();
    let mut biased_options = options(replications, 97, 4);
    biased_options.bias = 1e3;
    let biased = sim.unavailability(horizon, &biased_options).unwrap();

    eprintln!(
        "naive  {:?} rhw {}",
        naive.estimate,
        naive.estimate.relative_half_width()
    );
    eprintln!(
        "biased {:?} rhw {}",
        biased.estimate,
        biased.estimate.relative_half_width()
    );
    eprintln!("lr {:?}", biased.lr_mean);

    // The biased estimator observes the rare outage and pins it down.
    assert!(biased.estimate.mean > 0.0, "{biased:?}");
    let biased_rhw = biased.estimate.relative_half_width();
    assert!(biased_rhw < 0.5, "biased rhw {biased_rhw}: {biased:?}");
    // The naive estimator cannot reach that precision at the same
    // replication count: it either saw no outage at all (no estimate) or its
    // interval is far wider than the biased one.
    let naive_rhw = naive.estimate.relative_half_width();
    assert!(
        naive.estimate.mean == 0.0 || naive_rhw > 4.0 * biased_rhw,
        "naive {naive:?} (rhw {naive_rhw}) vs biased rhw {biased_rhw}"
    );
    // And the likelihood-ratio certificate covers 1.
    let lr = biased.lr_mean.unwrap();
    assert!(lr.contains_with_slack(1.0, 0.05), "{lr:?}");
}

/// A biased, tail-reporting cost run on the real Line 2 model is bit-identical
/// at 1, 2, 4 and 8 worker threads: counter-based replication streams plus
/// batch-ordered statistic merging make scheduling invisible.
#[test]
fn line_simulation_is_bit_identical_across_thread_counts() {
    let model = facility::line_model(Line::Line2, &strategies::dedicated()).unwrap();
    let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
    let sim = QuotientSimulator::new(&quotient);

    let mut reference = None;
    for threads in [1usize, 2, 4, 8] {
        let mut opts = options(2000, 4242, threads);
        opts.bias = 10.0;
        let report = sim
            .accumulated_cost(Some(facility::DISASTER_LINE2_MIXED), 50.0, 0.95, &opts)
            .unwrap();
        let tail = report.tail.unwrap();
        let bits = (
            report.estimate.mean.to_bits(),
            report.estimate.half_width.to_bits(),
            tail.var.to_bits(),
            tail.cvar.to_bits(),
            report.lr_mean.unwrap().mean.to_bits(),
        );
        match &reference {
            None => reference = Some(bits),
            Some(expected) => assert_eq!(*expected, bits, "threads {threads}"),
        }
    }
}

/// Simulated measures on the joint Line 1 × Line 2 facility quotient agree
/// with the exact [`FacilityAnalysis`]: long-horizon unavailability with the
/// steady-state complement, and the post-disaster accumulated cost with the
/// exact cost curve.
#[test]
fn facility_simulation_agrees_with_facility_analysis() {
    let spec = strategies::dedicated();
    let model = facility::facility_model(&spec, &spec).unwrap();
    let analysis = FacilityAnalysis::new(&model).unwrap();
    let quotient = analysis.compiled_quotient().unwrap();
    let sim = QuotientSimulator::new(&quotient);

    let exact = 1.0 - analysis.steady_state_availability().unwrap();
    let report = sim.unavailability(2000.0, &options(200, 3, 4)).unwrap();
    assert!(
        report.estimate.contains_with_slack(exact, 0.01),
        "exact {exact} vs {:?}",
        report.estimate
    );

    let horizon = 25.0;
    let exact = analysis
        .accumulated_cost_curve(Some(facility::FACILITY_DISASTER_ALL_PUMPS), &[horizon])
        .unwrap()[0]
        .1;
    let report = sim
        .accumulated_cost(
            Some(facility::FACILITY_DISASTER_ALL_PUMPS),
            horizon,
            0.95,
            &options(2500, 5, 4),
        )
        .unwrap();
    assert!(
        report.estimate.contains_with_slack(exact, 0.05 * exact),
        "exact {exact} vs {:?}",
        report.estimate
    );
    let tail = report.tail.unwrap();
    assert!(
        tail.cvar >= tail.var && tail.var >= report.estimate.mean,
        "{tail:?}"
    );
}
