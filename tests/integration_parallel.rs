//! End-to-end determinism of the parallel execution layer on the paper's
//! models: composing and analysing Line 1 and Line 2 with 2/4/8 worker
//! threads must reproduce the single-threaded pipeline — bit-identical
//! composed chains (including the pinned canonical state counts) and
//! measures agreeing far below the 1e-12 acceptance bound.

use arcade_core::{Analysis, CompiledModel, ComposerOptions, ExecOptions, LumpingMode};
use watertreatment::experiments::{self, grids, service_levels};
use watertreatment::{facility, strategies, Line};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn options(lumping: LumpingMode, threads: usize) -> ComposerOptions {
    ComposerOptions {
        lumping,
        exec: ExecOptions::with_threads(threads),
        ..Default::default()
    }
}

/// The canonical frontier explores the same states in the same order for
/// every worker count, on both lines and for the heavy queueing strategies;
/// the pinned canonical counts (Line 1: 160/449/727, Line 2: 96/257/387)
/// hold for every thread count.
#[test]
fn canonical_frontier_is_bit_identical_across_thread_counts() {
    let pinned = [
        (Line::Line1, strategies::dedicated(), 160),
        (Line::Line1, strategies::frf(1), 449),
        (Line::Line1, strategies::fff(2), 727),
        (Line::Line2, strategies::dedicated(), 96),
        (Line::Line2, strategies::frf(1), 257),
        (Line::Line2, strategies::fff(2), 387),
    ];
    for (line, spec, canonical_states) in pinned {
        let model = facility::line_model(line, &spec).unwrap();
        let reference =
            CompiledModel::compile_with(&model, options(LumpingMode::Compositional, 1)).unwrap();
        assert_eq!(
            reference.stats().num_states,
            canonical_states,
            "{} {}",
            line.id(),
            spec.label
        );
        for threads in THREAD_COUNTS {
            let parallel =
                CompiledModel::compile_with(&model, options(LumpingMode::Compositional, threads))
                    .unwrap();
            assert_eq!(
                parallel.states(),
                reference.states(),
                "{} {} states, {threads} threads",
                line.id(),
                spec.label
            );
            assert_eq!(
                parallel.chain(),
                reference.chain(),
                "{} {} chain, {threads} threads",
                line.id(),
                spec.label
            );
        }
    }
}

/// The *flat* Line 2 frontier (8129 states under FRF-1) is large enough to
/// engage the sharded waves and kernels; it must still be bit-identical.
#[test]
fn flat_frontier_is_bit_identical_across_thread_counts() {
    let model = facility::line_model(Line::Line2, &strategies::frf(1)).unwrap();
    let reference = CompiledModel::compile_with(&model, options(LumpingMode::Disabled, 1)).unwrap();
    assert_eq!(reference.stats().num_states, 8129);
    for threads in THREAD_COUNTS {
        let parallel =
            CompiledModel::compile_with(&model, options(LumpingMode::Disabled, threads)).unwrap();
        assert_eq!(parallel.states(), reference.states(), "{threads} threads");
        assert_eq!(parallel.chain(), reference.chain(), "{threads} threads");
        assert_eq!(
            parallel.cost_rewards(),
            reference.cost_rewards(),
            "{threads} threads"
        );
    }
}

/// Table 2 availability and a Fig. 8/9 survivability curve agree with the
/// serial pipeline to <= 1e-12 for every worker count (they are in fact
/// bit-identical: the sharded kernels accumulate in the serial order).
#[test]
fn measures_agree_with_serial_below_1e12() {
    let model = facility::line_model(Line::Line2, &strategies::frf(1)).unwrap();
    let disaster = model.disaster(facility::DISASTER_LINE2_MIXED).unwrap();
    let times = grids::fig8_9();

    let serial = Analysis::with_options(&model, options(LumpingMode::Compositional, 1)).unwrap();
    let availability = serial.steady_state_availability().unwrap();
    let curve = serial
        .survivability_curve(disaster, service_levels::LINE2_X1, &times)
        .unwrap();

    for threads in THREAD_COUNTS {
        let parallel =
            Analysis::with_options(&model, options(LumpingMode::Compositional, threads)).unwrap();
        let a = parallel.steady_state_availability().unwrap();
        assert!(
            (a - availability).abs() <= 1e-12,
            "{threads} threads: availability {a} vs {availability}"
        );
        let c = parallel
            .survivability_curve(disaster, service_levels::LINE2_X1, &times)
            .unwrap();
        for ((t, serial_v), (_, parallel_v)) in curve.iter().zip(c.iter()) {
            assert!(
                (serial_v - parallel_v).abs() <= 1e-12,
                "{threads} threads, t={t}: {parallel_v} vs {serial_v}"
            );
        }
    }
}

/// The experiment-level sweep (the `--threads` knob of `wt_experiments`)
/// returns identical figures for every worker count.
#[test]
fn experiment_sweeps_do_not_depend_on_the_thread_count() {
    let times = grids::fig8_9();
    let reference =
        experiments::fig8_9_survivability_line2_with(&times, ExecOptions::serial()).unwrap();
    for threads in THREAD_COUNTS {
        let sweep = experiments::fig8_9_survivability_line2_with(
            &times,
            ExecOptions::with_threads(threads),
        )
        .unwrap();
        assert_eq!(sweep, reference, "{threads} threads");
    }
}
