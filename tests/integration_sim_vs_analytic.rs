//! Cross-validation: the Monte-Carlo simulator and the stochastic model checker
//! are independent implementations of the Arcade semantics; their estimates of
//! the paper's measures must agree within the simulation confidence intervals.

use arcade_core::Analysis;
use arcade_sim::{SimulationOptions, Simulator};
use watertreatment::experiments::service_levels;
use watertreatment::{facility, strategies, Line};

fn options(replications: usize) -> SimulationOptions {
    SimulationOptions {
        replications,
        seed: 2024,
        ..SimulationOptions::with_threads(4)
    }
}

#[test]
fn reliability_of_line2_agrees() {
    let model = facility::line_model(Line::Line2, &strategies::dedicated()).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let simulator = Simulator::new(&model).unwrap();

    for t in [50.0, 200.0] {
        let exact = analysis.reliability(t).unwrap();
        let estimate = simulator.reliability(t, &options(3000)).unwrap();
        assert!(
            estimate.contains_with_slack(exact, 0.02),
            "t={t}: exact {exact} vs simulated {estimate:?}"
        );
    }
}

#[test]
fn availability_of_line2_agrees() {
    let spec = strategies::frf(2);
    let model = facility::line_model(Line::Line2, &spec).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let simulator = Simulator::new(&model).unwrap();

    let exact = analysis.steady_state_availability().unwrap();
    // Long-run time averages over 2000 h, 150 replications.
    let estimate = simulator
        .steady_state_availability(2000.0, &options(150))
        .unwrap();
    assert!(
        estimate.contains_with_slack(exact, 0.01),
        "exact {exact} vs simulated {estimate:?}"
    );
}

#[test]
fn survivability_after_disaster2_agrees() {
    let spec = strategies::frf(1);
    let model = facility::line_model(Line::Line2, &spec).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let simulator = Simulator::new(&model).unwrap();
    let disaster = model.disaster(facility::DISASTER_LINE2_MIXED).unwrap();

    for (level, deadline) in [
        (service_levels::LINE2_X1, 10.0),
        (service_levels::LINE2_X3, 40.0),
        (service_levels::LINE2_X4, 60.0),
    ] {
        let exact = analysis.survivability(disaster, level, deadline).unwrap();
        let estimate = simulator
            .survivability(disaster, level, deadline, &options(3000))
            .unwrap();
        assert!(
            estimate.contains_with_slack(exact, 0.025),
            "level {level}, deadline {deadline}: exact {exact} vs simulated {estimate:?}"
        );
    }
}

#[test]
fn costs_after_disaster2_agree() {
    let spec = strategies::fff(1);
    let model = facility::line_model(Line::Line2, &spec).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let simulator = Simulator::new(&model).unwrap();
    let disaster = model.disaster(facility::DISASTER_LINE2_MIXED).unwrap();

    // Instantaneous cost right after the disaster is deterministic: five failed
    // components at 3 per hour plus one busy crew (idle cost 1, busy cost 0).
    let exact_at_zero = analysis
        .instantaneous_cost_curve(Some(disaster), &[0.0])
        .unwrap()[0]
        .1;
    let simulated_at_zero = simulator
        .instantaneous_cost(Some(disaster), 0.0, &options(200))
        .unwrap();
    assert!((exact_at_zero - 15.0).abs() < 1e-9);
    assert!((simulated_at_zero.mean - exact_at_zero).abs() < 1e-9);

    // Accumulated cost over the recovery phase.
    let horizon = 25.0;
    let exact = analysis
        .accumulated_cost_curve(Some(disaster), &[horizon])
        .unwrap()[0]
        .1;
    let estimate = simulator
        .accumulated_cost(Some(disaster), horizon, &options(2500))
        .unwrap();
    assert!(
        estimate.contains_with_slack(exact, exact * 0.05),
        "exact {exact} vs simulated {estimate:?}"
    );
}
