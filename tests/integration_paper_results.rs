//! Reproduction checks against the numbers and qualitative claims of the paper.
//!
//! The full-size experiments (Line 1 under the queueing strategies, dense time
//! grids) live in the Criterion benchmark harness; these tests cover the exact
//! claims that are cheap enough for the regular test suite: the dedicated-repair
//! state spaces and availabilities (which the paper reports to seven digits)
//! and the qualitative orderings of the survivability and cost curves on Line 2.

use arcade_core::{Analysis, ComposerOptions, LumpingMode};
use watertreatment::experiments::{self, service_levels};
use watertreatment::{combined_availability, facility, strategies, Line};

/// Options reproducing the paper's Table 1: materialise the flat product
/// chain (the default pipeline composes the per-family quotients instead and
/// never visits these state counts).
fn flat_options() -> ComposerOptions {
    ComposerOptions {
        lumping: LumpingMode::Exact,
        ..Default::default()
    }
}

/// Table 1, dedicated rows: the flat state spaces are exactly the
/// cross-product of the component modes.
#[test]
fn table1_dedicated_state_spaces_match_exactly() {
    let line1 = facility::line_model(Line::Line1, &strategies::dedicated()).unwrap();
    let stats1 = Analysis::with_options(&line1, flat_options())
        .unwrap()
        .state_space_stats();
    assert_eq!(stats1.num_states, 2048);
    assert_eq!(stats1.num_transitions, 22528);

    let line2 = facility::line_model(Line::Line2, &strategies::dedicated()).unwrap();
    let stats2 = Analysis::with_options(&line2, flat_options())
        .unwrap()
        .state_space_stats();
    assert_eq!(stats2.num_states, 512);
    // The paper reports 4606; the full cross product has 9 * 512 = 4608
    // transitions, which we reproduce.
    assert_eq!(stats2.num_transitions, 4608);
}

/// Table 1, queueing rows for Line 2: the canonical queue encoding reproduces
/// the paper's state count exactly, FRF and FFF coincide, and adding a crew
/// adds transitions.
#[test]
fn table1_line2_queueing_state_spaces() {
    let frf1 = Analysis::with_options(
        &facility::line_model(Line::Line2, &strategies::frf(1)).unwrap(),
        flat_options(),
    )
    .unwrap()
    .state_space_stats();
    let fff1 = Analysis::with_options(
        &facility::line_model(Line::Line2, &strategies::fff(1)).unwrap(),
        flat_options(),
    )
    .unwrap()
    .state_space_stats();
    let frf2 = Analysis::with_options(
        &facility::line_model(Line::Line2, &strategies::frf(2)).unwrap(),
        flat_options(),
    )
    .unwrap()
    .state_space_stats();

    assert_eq!(
        frf1.num_states, 8129,
        "paper reports 8129 states for FRF-1 on Line 2"
    );
    assert_eq!(
        fff1.num_states, frf1.num_states,
        "FRF and FFF state counts coincide"
    );
    assert_eq!(fff1.num_transitions, frf1.num_transitions);
    assert!(
        frf1.num_states > 512,
        "queueing strategies blow up the dedicated state space"
    );
    assert!(
        frf2.num_transitions > frf1.num_transitions,
        "a second crew adds ways to perform repairs"
    );

    // Exact lumping collapses the symmetric component groups (and the queue
    // orders of interchangeable components): the quotient sizes are pinned so
    // a regression in the refinement engine is caught immediately.
    assert_eq!(frf1.lumped_states, Some(257));
    assert_eq!(fff1.lumped_states, Some(257));
    assert_eq!(frf2.lumped_states, Some(387));
    assert!(
        frf1.lumped_states.unwrap() < frf1.num_states,
        "lumping must strictly reduce the Line 2 state space"
    );
}

/// The default compositional pipeline: per-line block counts are pinned for
/// both lines under the dedicated and FRF strategies, and the exploration
/// never materialises the flat product — the peak explored state count stays
/// below the product of the per-family sub-chain quotient sizes.
#[test]
fn compositional_per_line_block_counts_are_pinned() {
    // (line, spec, canonical states, final blocks, flat states of the paper)
    let expectations = [
        (Line::Line1, strategies::dedicated(), 160, 160, 2048),
        (Line::Line1, strategies::frf(1), 449, 449, 111_809),
        (Line::Line1, strategies::frf(2), 727, 727, 111_809),
        (Line::Line2, strategies::dedicated(), 96, 96, 512),
        (Line::Line2, strategies::frf(1), 257, 257, 8129),
        (Line::Line2, strategies::frf(2), 387, 387, 8129),
    ];
    for (line, spec, canonical, blocks, flat) in expectations {
        let model = facility::line_model(line, &spec).unwrap();
        let stats = Analysis::new(&model).unwrap().state_space_stats();
        assert_eq!(
            stats.num_states,
            canonical,
            "{} {}: canonical states",
            line.id(),
            spec.label
        );
        assert_eq!(
            stats.lumped_states,
            Some(blocks),
            "{} {}: final blocks",
            line.id(),
            spec.label
        );
        let bound = stats
            .subchain_state_bound
            .expect("compositional mode reports the sub-chain bound");
        assert!(
            stats.num_states <= bound && bound < flat,
            "{} {}: explored {} must stay within the sub-chain bound {bound} < flat {flat}",
            line.id(),
            spec.label,
            stats.num_states
        );
        // Per-line breakdown covers every component exactly once.
        let covered: usize = stats.subchains.iter().map(|s| s.members.len()).sum();
        assert_eq!(covered, model.components().len());
    }
}

/// The lumped quotient gives the same measures as the flat chain on a real
/// paper model (Line 2 under FRF-1), within solver tolerance.
#[test]
fn lumping_is_exact_on_line2_frf1() {
    use arcade_core::{CompiledModel, ComposerOptions, LumpingMode};

    let model = facility::line_model(Line::Line2, &strategies::frf(1)).unwrap();
    let flat_compiled = CompiledModel::compile_with(
        &model,
        ComposerOptions {
            lumping: LumpingMode::Disabled,
            ..Default::default()
        },
    )
    .unwrap();
    let flat = Analysis::from_compiled(&model, flat_compiled);
    let lumped = Analysis::new(&model).unwrap(); // lumping on by default

    let a_flat = flat.steady_state_availability().unwrap();
    let a_lumped = lumped.steady_state_availability().unwrap();
    assert!((a_flat - a_lumped).abs() <= 1e-9, "{a_flat} vs {a_lumped}");

    let r_flat = flat.reliability(1000.0).unwrap();
    let r_lumped = lumped.reliability(1000.0).unwrap();
    assert!((r_flat - r_lumped).abs() <= 1e-9, "{r_flat} vs {r_lumped}");

    let disaster = model.disaster(facility::DISASTER_LINE2_MIXED).unwrap();
    for t in [5.0, 25.0] {
        let s_flat = flat
            .survivability(disaster, service_levels::LINE2_X1, t)
            .unwrap();
        let s_lumped = lumped
            .survivability(disaster, service_levels::LINE2_X1, t)
            .unwrap();
        assert!(
            (s_flat - s_lumped).abs() <= 1e-9,
            "t={t}: {s_flat} vs {s_lumped}"
        );
    }

    let c_flat = flat
        .accumulated_cost_curve(Some(disaster), &[10.0])
        .unwrap()[0]
        .1;
    let c_lumped = lumped
        .accumulated_cost_curve(Some(disaster), &[10.0])
        .unwrap()[0]
        .1;
    assert!((c_flat - c_lumped).abs() <= 1e-9, "{c_flat} vs {c_lumped}");
}

/// Table 2, dedicated row: availability to the paper's seven digits.
#[test]
fn table2_dedicated_availability_matches_the_paper() {
    let mut availability = [0.0; 2];
    for (i, line) in Line::both().into_iter().enumerate() {
        let model = facility::line_model(line, &strategies::dedicated()).unwrap();
        availability[i] = Analysis::new(&model)
            .unwrap()
            .steady_state_availability()
            .unwrap();
    }
    assert!(
        (availability[0] - 0.7442018).abs() < 5e-6,
        "line 1: {}",
        availability[0]
    );
    assert!(
        (availability[1] - 0.8186317).abs() < 5e-6,
        "line 2: {}",
        availability[1]
    );
    let combined = combined_availability(availability[0], availability[1]);
    assert!((combined - 0.9536063).abs() < 5e-6, "combined: {combined}");
}

/// Table 2, qualitative ordering on Line 2: dedicated repair is best, two crews
/// are close behind, one crew is clearly worse.
#[test]
fn table2_line2_strategy_ordering() {
    let availability = |spec: &watertreatment::StrategySpec| {
        let model = facility::line_model(Line::Line2, spec).unwrap();
        Analysis::new(&model)
            .unwrap()
            .steady_state_availability()
            .unwrap()
    };
    let ded = availability(&strategies::dedicated());
    let frf1 = availability(&strategies::frf(1));
    let frf2 = availability(&strategies::frf(2));
    let fff1 = availability(&strategies::fff(1));
    let fff2 = availability(&strategies::fff(2));

    assert!(
        ded >= frf2 && ded >= fff2,
        "dedicated repair has the highest availability"
    );
    assert!(frf2 > frf1, "the second crew increases availability (FRF)");
    assert!(fff2 > fff1, "the second crew increases availability (FFF)");
    // Two-crew strategies land within 0.1 percentage points of dedicated repair,
    // one-crew strategies lose about one percentage point (paper §5).
    assert!(ded - frf2 < 1e-3);
    assert!(ded - frf1 > 5e-3);
    // Close to the paper's absolute values.
    assert!((frf2 - 0.8186312).abs() < 5e-4, "FRF-2: {frf2}");
    assert!((frf1 - 0.8101931).abs() < 5e-3, "FRF-1: {frf1}");
}

/// Fig. 3: reliability decays with time and Line 2 is more reliable than Line 1
/// even though it has fewer redundant components.
#[test]
fn fig3_line2_is_more_reliable_than_line1() {
    let times = [0.0, 100.0, 250.0, 500.0, 1000.0];
    let figure = experiments::fig3_reliability(&times).unwrap();
    assert_eq!(figure.series.len(), 2);
    let line1 = &figure.series[0].points;
    let line2 = &figure.series[1].points;
    for (a, b) in line1.iter().zip(line1.iter().skip(1)) {
        assert!(b.1 <= a.1 + 1e-12, "line 1 reliability must decay");
    }
    for ((_, r1), (_, r2)) in line1.iter().zip(line2.iter()).skip(1) {
        assert!(r2 > r1, "line 2 must be more reliable than line 1");
    }
    // Both start at certainty and end well below it over 1000 hours.
    assert!((line1[0].1 - 1.0).abs() < 1e-9);
    assert!(line1.last().unwrap().1 < 0.2);
}

/// Figs. 8 and 9: after Disaster 2 on Line 2, FFF-1 recovers basic service (X1)
/// slowest because it repairs the reservoir last, dedicated repair is fastest,
/// and the extra crew always helps.
#[test]
fn fig8_9_qualitative_orderings() {
    let times = [5.0, 20.0, 40.0];
    let (fig8, fig9) = experiments::fig8_9_survivability_line2(&times).unwrap();

    let at = |figure: &experiments::Figure, label: &str, idx: usize| -> f64 {
        figure
            .series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points[idx]
            .1
    };

    // At t = 20 h the one-crew FFF strategy lags every other strategy for X1.
    for label in ["DED", "FRF-1", "FRF-2", "FFF-2"] {
        assert!(
            at(&fig8, label, 1) > at(&fig8, "FFF-1", 1),
            "{label} should recover X1 faster than FFF-1"
        );
    }
    // Dedicated repair dominates everything.
    for label in ["FRF-1", "FRF-2", "FFF-1", "FFF-2"] {
        assert!(at(&fig8, "DED", 1) >= at(&fig8, label, 1));
        assert!(at(&fig9, "DED", 1) >= at(&fig9, label, 1));
    }
    // A second crew never hurts.
    assert!(at(&fig8, "FRF-2", 1) >= at(&fig8, "FRF-1", 1));
    assert!(at(&fig8, "FFF-2", 1) >= at(&fig8, "FFF-1", 1));
    assert!(at(&fig9, "FRF-2", 1) >= at(&fig9, "FRF-1", 1));
    assert!(at(&fig9, "FFF-2", 1) >= at(&fig9, "FFF-1", 1));
    // Recovery to the higher interval X3 is slower than to X1 for every strategy.
    for series in &fig8.series {
        let x3 = fig9
            .series
            .iter()
            .find(|s| s.label == series.label)
            .unwrap();
        for (a, b) in series.points.iter().zip(x3.points.iter()) {
            assert!(
                b.1 <= a.1 + 1e-9,
                "{}: X3 cannot be reached before X1",
                series.label
            );
        }
    }
}

/// Figs. 10 and 11: FFF-1 has the slowest cost convergence and the highest
/// accumulated cost after Disaster 2; FRF-2 has the lowest accumulated cost.
#[test]
fn fig10_11_cost_orderings() {
    let times = [0.0, 10.0, 25.0, 50.0];
    let (fig10, fig11) = experiments::fig10_11_cost_line2(&times).unwrap();

    let series = |figure: &experiments::Figure, label: &str| -> Vec<f64> {
        figure
            .series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .map(|(_, v)| *v)
            .collect()
    };

    // Instantaneous cost right after the disaster: five components failed at 3
    // per hour plus busy/idle crews; all strategies start at the same level and
    // decrease towards the steady-state cost rate.
    for label in ["FFF-1", "FRF-1", "FFF-2", "FRF-2"] {
        let inst = series(&fig10, label);
        assert!(
            inst[0] > 12.0,
            "{label} starts around 15 cost/h, got {}",
            inst[0]
        );
        assert!(
            inst[0] > *inst.last().unwrap(),
            "{label} instantaneous cost must decrease"
        );
    }
    // FFF-1 converges slowest: at t = 25 h it still has the highest cost rate.
    let at_25 = |label: &str| series(&fig10, label)[2];
    for label in ["FRF-1", "FFF-2", "FRF-2"] {
        assert!(
            at_25("FFF-1") > at_25(label),
            "FFF-1 should converge slower than {label}"
        );
    }
    // Accumulated cost at 50 h: FFF-1 highest, FRF-2 lowest, and the curves grow.
    let acc_at_50 = |label: &str| *series(&fig11, label).last().unwrap();
    for label in ["FRF-1", "FFF-2", "FRF-2"] {
        assert!(acc_at_50("FFF-1") > acc_at_50(label));
    }
    for label in ["FFF-1", "FRF-1", "FFF-2"] {
        assert!(acc_at_50("FRF-2") < acc_at_50(label));
    }
    for label in ["FFF-1", "FRF-1", "FFF-2", "FRF-2"] {
        let acc = series(&fig11, label);
        assert!(
            acc.windows(2).all(|w| w[1] >= w[0]),
            "{label} accumulated cost must grow"
        );
    }
}

/// Figs. 4–7 are driven by Disaster 1 on Line 1, whose queueing models are too
/// large for the quick test suite; the same qualitative claims are checked here
/// on Line 2 under Disaster 1 (all pumps failed): only pumps differ, so FRF and
/// FFF coincide, the extra crew speeds recovery up and dedicated repair is the
/// fastest but most expensive.
#[test]
fn fig4_to_7_claims_transfer_to_line2_disaster1() {
    let times = [0.5, 1.0, 2.0, 4.5];
    let survivability = |spec: &watertreatment::StrategySpec, level: f64| -> Vec<f64> {
        let model = facility::line_model(Line::Line2, spec).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        let disaster = model.disaster(facility::DISASTER_ALL_PUMPS).unwrap();
        analysis
            .survivability_curve(disaster, level, &times)
            .unwrap()
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    };

    let frf1 = survivability(&strategies::frf(1), service_levels::LINE2_X1);
    let fff1 = survivability(&strategies::fff(1), service_levels::LINE2_X1);
    let frf2 = survivability(&strategies::frf(2), service_levels::LINE2_X1);
    let ded = survivability(&strategies::dedicated(), service_levels::LINE2_X1);

    // Only pumps failed, so the initial repair order coincides for FRF and FFF;
    // the curves only differ through the (rare) event that further components
    // fail during the short recovery window, so they agree to plotting
    // precision as the paper observes.
    for (a, b) in frf1.iter().zip(fff1.iter()) {
        assert!(
            (a - b).abs() < 1e-3,
            "FRF-1 and FFF-1 coincide under Disaster 1 ({a} vs {b})"
        );
    }
    for i in 0..times.len() {
        assert!(ded[i] >= frf2[i] - 1e-9, "dedicated recovers fastest");
        assert!(
            frf2[i] >= frf1[i] - 1e-9,
            "the extra crew speeds up recovery"
        );
    }

    // Recovery to full service is slower than recovery to partial service.
    let frf2_full = survivability(&strategies::frf(2), service_levels::LINE2_X4);
    for i in 0..times.len() {
        assert!(frf2_full[i] <= frf2[i] + 1e-9);
    }

    // Costs over the recovery window (the first three hours, during which the
    // failed pumps dominate the cost): dedicated repair is the most expensive
    // because of its many idle crews, and the second FRF crew pays for itself
    // by clearing the failed-component cost faster.
    let accumulated = |spec: &watertreatment::StrategySpec, horizon: f64| -> f64 {
        let model = facility::line_model(Line::Line2, spec).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        let disaster = model.disaster(facility::DISASTER_ALL_PUMPS).unwrap();
        analysis
            .accumulated_cost_curve(Some(disaster), &[horizon])
            .unwrap()[0]
            .1
    };
    let ded_cost = accumulated(&strategies::dedicated(), 3.0);
    let frf1_cost = accumulated(&strategies::frf(1), 3.0);
    let frf2_cost = accumulated(&strategies::frf(2), 3.0);
    assert!(
        ded_cost > frf2_cost,
        "dedicated repair costs the most (idle crews)"
    );
    assert!(
        frf2_cost < frf1_cost,
        "the second crew lowers the accumulated cost during the recovery ({frf2_cost} vs {frf1_cost})"
    );
}
