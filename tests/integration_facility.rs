//! End-to-end checks of the two-line facility product pipeline.
//!
//! * pinned joint block counts for **all** strategy pairs (the product of the
//!   pinned per-line quotient sizes, e.g. FRF-1 × FRF-1 = 449 × 257);
//! * `table_facility` validating the paper's `A = A1 + A2 − A1·A2` against
//!   the genuine joint chain to ≤ 1e-9 for several strategy pairs;
//! * the flagship FRF-1 × FRF-1 product solved end to end through the
//!   sharded exec path with bit-identical results at 1/2/4/8 threads;
//! * the joint-exploration fallback when two lines share a repair unit.

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis, FacilityModel};
use watertreatment::experiments::{self, TableFacilityRow};
use watertreatment::{facility, strategies, StrategySpec};

fn exec_options(threads: usize) -> ComposerOptions {
    ComposerOptions {
        exec: ExecOptions::with_threads(threads),
        ..ComposerOptions::default()
    }
}

/// The pinned per-line quotient sizes (canonical compositional counts, which
/// the final exact pass confirms as the coarsest quotients).
fn quotient_blocks(spec: &StrategySpec) -> (usize, usize) {
    match spec.label.as_str() {
        "DED" => (160, 96),
        "FRF-1" | "FFF-1" => (449, 257),
        "FRF-2" | "FFF-2" => (727, 387),
        other => panic!("no pinned counts for {other}"),
    }
}

/// Joint block counts for all 25 strategy pairs equal the product of the
/// per-line quotient sizes — the facility layer composes the quotients, not
/// the flat chains.
#[test]
fn joint_block_counts_are_pinned_for_all_strategy_pairs() {
    // Compile each line once per strategy and read the solver-chain sizes
    // through the facility stats, then check every pairing.
    let specs = strategies::paper_strategies();
    for spec1 in &specs {
        for spec2 in &specs {
            let model = facility::facility_model(spec1, spec2).expect("facility builds");
            let analysis = FacilityAnalysis::new(&model).expect("facility compiles");
            let stats = analysis.stats();
            let (line1_expected, _) = quotient_blocks(spec1);
            let (_, line2_expected) = quotient_blocks(spec2);
            assert_eq!(
                stats.lines[0].stats.lumped_states,
                Some(line1_expected),
                "line 1 quotient for {}×{}",
                spec1.label,
                spec2.label
            );
            assert_eq!(
                stats.lines[1].stats.lumped_states,
                Some(line2_expected),
                "line 2 quotient for {}×{}",
                spec1.label,
                spec2.label
            );
            assert_eq!(
                stats.joint_blocks,
                line1_expected * line2_expected,
                "joint product for {}×{}",
                spec1.label,
                spec2.label
            );
            assert!(stats.lines.iter().all(|l| !l.jointly_explored));
        }
    }
}

/// `table_facility`: the combined-availability formula is validated against
/// the genuine joint chain to ≤ 1e-9 for three cheap strategy pairs (the
/// flagship FRF-1 × FRF-1 pair has its own test below; the full five-pair
/// table runs in the `facility_product` bench and the `wt_experiments
/// facility` command).
#[test]
fn table_facility_validates_the_combined_availability_formula() {
    let pairs = [
        (strategies::dedicated(), strategies::dedicated()),
        (strategies::dedicated(), strategies::frf(1)),
        (strategies::fff(1), strategies::dedicated()),
    ];
    let rows = experiments::table_facility_with(&pairs, ExecOptions::default()).unwrap();
    assert_eq!(rows.len(), 3);
    let expected_blocks = [160 * 96, 160 * 257, 449 * 96];
    for (row, &blocks) in rows.iter().zip(expected_blocks.iter()) {
        assert_eq!(row.joint_blocks, blocks, "{}", row.pair);
        assert!(
            row.difference <= 1e-9,
            "{}: formula vs joint gap {}",
            row.pair,
            row.difference
        );
        assert!(
            row.residual < 1e-9,
            "{}: residual {}",
            row.pair,
            row.residual
        );
        assert!(
            (row.combined - watertreatment::combined_availability(row.line1, row.line2)).abs()
                < 1e-12
        );
    }
    // DED×DED reproduces the paper's Table 2 combined column.
    assert!(
        (rows[0].combined - 0.9536063).abs() < 5e-6,
        "{}",
        rows[0].combined
    );
}

/// The flagship acceptance case: the FRF-1 × FRF-1 facility product
/// (449 × 257 = 115,393 blocks) solves end to end through the sharded exec
/// path with **bit-identical** results at 1, 2, 4 and 8 threads, and the
/// joint-chain availability agrees with `A1 + A2 − A1·A2` to ≤ 1e-9.
#[test]
fn frf1_pair_product_is_bit_identical_across_thread_counts() {
    let mut reference: Option<(TableFacilityRow, Vec<(f64, f64)>)> = None;
    for threads in [1usize, 2, 4, 8] {
        let exec = ExecOptions::with_threads(threads);
        let model = facility::facility_model(&strategies::frf(1), &strategies::frf(1))
            .expect("facility builds");
        let analysis =
            FacilityAnalysis::with_options(&model, exec_options(threads)).expect("compiles");
        let stats = analysis.stats();
        assert_eq!(stats.joint_blocks, 449 * 257, "{threads} threads");

        let rows =
            experiments::table_facility_with(&[(strategies::frf(1), strategies::frf(1))], exec)
                .unwrap();
        let row = rows.into_iter().next().unwrap();
        assert_eq!(row.joint_blocks, 115_393);
        assert!(
            row.difference <= 1e-9,
            "{threads} threads: {}",
            row.difference
        );

        // A short facility recovery curve after the cross-line disaster
        // exercises the materialised product transiently as well.
        let curve = analysis
            .survivability_curve(facility::FACILITY_DISASTER_ALL_PUMPS, 1.0, &[0.5, 1.5])
            .unwrap();

        match &reference {
            None => reference = Some((row, curve)),
            Some((reference_row, reference_curve)) => {
                // Bit-identical: the composition, materialisation and solves
                // must not depend on the thread count at all.
                assert!(
                    reference_row.joint.to_bits() == row.joint.to_bits()
                        && reference_row.combined.to_bits() == row.combined.to_bits()
                        && reference_row.line1.to_bits() == row.line1.to_bits()
                        && reference_row.line2.to_bits() == row.line2.to_bits(),
                    "steady-state results differ at {threads} threads"
                );
                for ((t1, v1), (t2, v2)) in reference_curve.iter().zip(curve.iter()) {
                    assert_eq!(t1, t2);
                    assert!(
                        v1.to_bits() == v2.to_bits(),
                        "recovery curve differs at {threads} threads: {v1} vs {v2}"
                    );
                }
            }
        }
    }
    let (row, _) = reference.unwrap();
    assert!((row.combined - 0.9470773).abs() < 5e-4, "{}", row.combined);
}

/// The matrix-free acceptance pin: for DED × DED and the flagship
/// FRF-1 × FRF-1 pair (449 × 257 = 115,393 blocks), the operator path —
/// which never materialises the joint chain — must match the materialised
/// Gauss–Seidel answer to ≤ 1e-10, carry its balance-residual certificate,
/// and report the solver tier it actually ran.
#[test]
fn operator_path_matches_the_materialised_joint_solve_for_paper_pairs() {
    let pairs = [
        (strategies::dedicated(), strategies::dedicated()),
        (strategies::frf(1), strategies::frf(1)),
    ];
    for (spec1, spec2) in pairs {
        let model = facility::facility_model(&spec1, &spec2).expect("facility builds");
        let analysis = FacilityAnalysis::new(&model).expect("facility compiles");
        // Operator solve first: it must not depend on (or populate) the
        // materialised joint cache.
        let operator = analysis.matrix_free_steady_state_availability().unwrap();
        let materialised = analysis.joint_steady_state_availability().unwrap();
        let label = format!("{}×{}", spec1.label, spec2.label);
        assert_eq!(operator.solver_tier, "krylov-operator", "{label}");
        assert_eq!(materialised.solver_tier, "gs-materialised", "{label}");
        assert!(operator.iterations >= 1, "{label}");
        assert_eq!(operator.joint_states, materialised.joint_states, "{label}");
        assert_eq!(operator.solved_states, operator.joint_states, "{label}");
        assert!(
            (operator.availability - materialised.availability).abs() <= 1e-10,
            "{label}: operator {} vs materialised {}",
            operator.availability,
            materialised.availability
        );
        assert!(
            operator.residual < 1e-9,
            "{label}: residual {}",
            operator.residual
        );
    }
}

/// Sharing one repair unit across the two lines must break the pure product:
/// the composition tree collapses to a single jointly-explored group.
#[test]
fn shared_repair_unit_disables_the_pure_product() {
    // Both lines are Line 2 instances whose repair unit carries the same
    // name, i.e. one physical crew pool for the whole facility.
    let spec = strategies::dedicated();
    let line = facility::line_model(watertreatment::Line::Line2, &spec).unwrap();
    let facility_model = FacilityModel::builder("one-crew-pool")
        .line("north", line.clone())
        .line("south", line)
        .build()
        .unwrap();
    let tree = facility_model.composition_tree();
    assert_eq!(tree.groups.len(), 1);
    assert!(tree.groups[0].is_joint());
    assert_eq!(tree.groups[0].shared_units, vec!["line2-ru".to_string()]);

    let analysis = FacilityAnalysis::new(&facility_model).expect("joint group compiles");
    let stats = analysis.stats();
    assert!(stats.lines.iter().all(|l| l.jointly_explored));
    // The merged group composes both lines' families in one namespace: its
    // canonical exploration is bounded by the product of the per-line
    // sub-chain bounds (96 × 96 under dedicated repair).
    assert_eq!(stats.lines[0].stats.num_states, 96 * 96);
    // Dedicated repair keeps the lines effectively independent even when the
    // unit is shared (one crew per component either way), so the genuine
    // joint availability still matches the independent formula — the point
    // is that the engine *proved* it by joint exploration instead of
    // assuming it.
    let joint = analysis.joint_steady_state_availability().unwrap();
    let a = analysis.line_availability(0).unwrap();
    let b = analysis.line_availability(1).unwrap();
    assert!((joint.availability - (a + b - a * b)).abs() <= 1e-9);
}
