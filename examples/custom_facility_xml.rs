//! Define a facility in the Arcade XML format, load it and analyse it.
//!
//! This mirrors the paper's tool chain entry point: architectural models are
//! exchanged as XML documents so that design tools can produce them.
//!
//! ```text
//! cargo run --release --example custom_facility_xml
//! ```

use arcade_core::Analysis;

const FACILITY_XML: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<arcade-model name="backup-water-plant">
  <components>
    <component name="intake" mttf="3000" mttr="8" failed-cost="3"/>
    <component name="filter-a" mttf="1000" mttr="100" failed-cost="3"/>
    <component name="filter-b" mttf="1000" mttr="100" failed-cost="3"/>
    <component name="pump-main" mttf="500" mttr="1" failed-cost="3"/>
    <component name="pump-backup" mttf="500" mttr="1" failed-cost="3" dormancy="0"/>
  </components>
  <repair-units>
    <repair-unit name="maintenance" strategy="frf" crews="1" idle-cost="1">
      <responsible ref="intake"/>
      <responsible ref="filter-a"/>
      <responsible ref="filter-b"/>
      <responsible ref="pump-main"/>
      <responsible ref="pump-backup"/>
    </repair-unit>
  </repair-units>
  <spare-units>
    <spare-unit name="pump-spares">
      <primary ref="pump-main"/>
      <spare ref="pump-backup"/>
    </spare-unit>
  </spare-units>
  <structure>
    <series>
      <component ref="intake"/>
      <redundant>
        <component ref="filter-a"/>
        <component ref="filter-b"/>
      </redundant>
      <required-of required="1">
        <component ref="pump-main"/>
        <component ref="pump-backup"/>
      </required-of>
    </series>
  </structure>
  <disasters>
    <disaster name="pump-and-filter">
      <failed ref="pump-main"/>
      <failed ref="filter-a"/>
    </disaster>
  </disasters>
</arcade-model>
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse the XML model.
    let model = arcade_xml::from_xml(FACILITY_XML)?;
    println!(
        "loaded model `{}` with {} components",
        model.name(),
        model.components().len()
    );

    // Analyse it.
    let analysis = Analysis::new(&model)?;
    let stats = analysis.state_space_stats();
    println!(
        "state space: {} states, {} transitions",
        stats.num_states, stats.num_transitions
    );
    println!("availability: {:.6}", analysis.steady_state_availability()?);
    println!(
        "reliability over 720 h: {:.6}",
        analysis.reliability(720.0)?
    );

    let disaster = model
        .disaster("pump-and-filter")
        .expect("declared in the XML");
    for deadline in [1.0, 10.0, 100.0] {
        println!(
            "P(full service within {deadline:>5.1} h of the disaster) = {:.4}",
            analysis.survivability(disaster, 1.0, deadline)?
        );
    }

    // Round-trip back to XML (e.g. to archive the evaluated configuration).
    let serialized = arcade_xml::to_xml(&model);
    let reloaded = arcade_xml::from_xml(&serialized)?;
    assert_eq!(reloaded, model);
    println!("\nround-tripped XML ({} bytes):\n", serialized.len());
    println!("{serialized}");
    Ok(())
}
