//! Reproduce the paper's tool chain: Arcade model -> PRISM model + CSL properties.
//!
//! The paper (Fig. 1) translates the architectural model into PRISM reactive
//! modules and a set of CSL/CSRL formulas, then lets PRISM compute the
//! measures. This example emits both artefacts for Line 2 of the
//! water-treatment facility so they can be fed to a real PRISM installation,
//! and cross-checks one measure with the built-in engine.
//!
//! ```text
//! cargo run --release --example prism_export_toolchain
//! ```

use arcade_core::{Analysis, CompiledModel, ComposerOptions, LumpingMode, Measure};
use prism_export::{properties, translate};
use watertreatment::{facility, strategies, Line};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The dedicated-repair model admits the modular (per-component) translation.
    let dedicated = facility::line_model(Line::Line2, &strategies::dedicated())?;
    let modular = translate::modular(&dedicated)?;
    println!("// ---------- modular PRISM model (Line 2, dedicated repair) ----------");
    println!("{}", modular.to_source());

    // Queueing strategies need the exact flat translation of the composed
    // CTMC, so the flat chain is materialised explicitly here — the default
    // compositional pipeline would compose (and export) only the canonical
    // quotient.
    let frf2 = facility::line_model(Line::Line2, &strategies::frf(2))?;
    let compiled = CompiledModel::compile_with(
        &frf2,
        ComposerOptions {
            lumping: LumpingMode::Exact,
            ..Default::default()
        },
    )?;
    let flat = translate::flat(&frf2, &compiled);
    let source = flat.to_source();
    println!(
        "// ---------- flat PRISM model (Line 2, FRF-2): {} lines ----------",
        source.lines().count()
    );
    for line in source.lines().take(12) {
        println!("{line}");
    }
    println!("// ... truncated ...");

    // The paper's measures as a PRISM properties file.
    let measures = vec![
        Measure::SteadyStateAvailability,
        Measure::Reliability { time: 1000.0 },
        Measure::SurvivabilityCurve {
            disaster: facility::DISASTER_LINE2_MIXED.to_string(),
            service_level: 1.0 / 3.0,
            times: vec![0.0, 25.0, 50.0, 75.0, 100.0],
        },
        Measure::InstantaneousCost {
            disaster: Some(facility::DISASTER_LINE2_MIXED.to_string()),
            times: vec![0.0, 10.0, 25.0, 50.0],
        },
        Measure::AccumulatedCost {
            disaster: Some(facility::DISASTER_LINE2_MIXED.to_string()),
            times: vec![50.0],
        },
    ];
    println!("// ---------- CSL/CSRL properties ----------");
    println!("{}", properties::properties_file(&measures));

    // Cross-check: the built-in engine evaluates the same availability the
    // exported PRISM model would produce.
    let analysis = Analysis::from_compiled(&frf2, compiled);
    println!(
        "// built-in stochastic model checker: Line 2 availability under FRF-2 = {:.7}",
        analysis.steady_state_availability()?
    );
    Ok(())
}
