//! Quantitative survivability analysis after a disaster (paper Figs. 8–11).
//!
//! Starting from Disaster 2 of the paper (two pumps, one softener, one sand
//! filter and the reservoir of Line 2 have failed), this example prints the
//! recovery curves towards each service interval and the costs incurred along
//! the way, for two repair strategies.
//!
//! ```text
//! cargo run --release --example survivability_analysis
//! ```

use arcade_core::Analysis;
use watertreatment::experiments::service_levels;
use watertreatment::{facility, strategies, Line};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deadlines = [1.0, 5.0, 10.0, 25.0, 50.0, 100.0];
    let levels = [
        ("X1 (>= 1/3 service)", service_levels::LINE2_X1),
        ("X2 (>= 1/2 service)", service_levels::LINE2_X2),
        ("X3 (>= 2/3 service)", service_levels::LINE2_X3),
        ("X4 (full service)", service_levels::LINE2_X4),
    ];

    for spec in [strategies::fff(1), strategies::frf(2)] {
        let model = facility::line_model(Line::Line2, &spec)?;
        let analysis = Analysis::new(&model)?;
        let disaster = model
            .disaster(facility::DISASTER_LINE2_MIXED)
            .expect("disaster 2 is defined for line 2");

        println!("=== Strategy {} ===", spec.label);
        println!("disaster: {:?}", disaster.failed_components());

        for (label, level) in levels {
            let curve = analysis.survivability_curve(disaster, level, &deadlines)?;
            print!("{label:<22}");
            for (t, p) in curve {
                print!("  P(t<={t:>5.1}h)={p:.3}");
            }
            println!();
        }

        let inst = analysis.instantaneous_cost_curve(Some(disaster), &deadlines)?;
        let acc = analysis.accumulated_cost_curve(Some(disaster), &deadlines)?;
        print!("{:<22}", "instantaneous cost");
        for (t, c) in inst {
            print!("  I(t={t:>5.1}h)={c:<6.2}");
        }
        println!();
        print!("{:<22}", "accumulated cost");
        for (t, c) in acc {
            print!("  C(t={t:>5.1}h)={c:<6.1}");
        }
        println!("\n");
    }

    Ok(())
}
