//! Quickstart: build a small repairable system, evaluate the paper's measures.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use arcade_core::{Analysis, ArcadeModel, BasicComponent, Disaster, RepairStrategy, RepairUnit};
use fault_tree::{StructureNode, SystemStructure};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature pumping station: two redundant pumps feeding one reservoir,
    // maintained by a single repair crew that always repairs the fastest job first.
    let structure = SystemStructure::new(StructureNode::series(vec![
        StructureNode::redundant(vec![
            StructureNode::component("pump-1"),
            StructureNode::component("pump-2"),
        ]),
        StructureNode::component("reservoir"),
    ]));

    let model = ArcadeModel::builder("pumping-station", structure)
        .component(BasicComponent::from_mttf_mttr("pump-1", 500.0, 1.0)?.with_failed_cost(3.0))
        .component(BasicComponent::from_mttf_mttr("pump-2", 500.0, 1.0)?.with_failed_cost(3.0))
        .component(BasicComponent::from_mttf_mttr("reservoir", 6000.0, 12.0)?.with_failed_cost(3.0))
        .repair_unit(
            RepairUnit::new("crew", RepairStrategy::FastestRepairFirst, 1)?
                .responsible_for(["pump-1", "pump-2", "reservoir"])
                .with_idle_cost(1.0),
        )
        .disaster(Disaster::new("both-pumps-down", ["pump-1", "pump-2"])?)
        .build()?;

    let analysis = Analysis::new(&model)?;

    println!("== {} ==", model.name());
    let stats = analysis.state_space_stats();
    // Compositional lumping is on by default: the composer detects the
    // interchangeable components (here: the two identical pumps), lumps each
    // such sub-chain and composes the quotients directly, so the state count
    // below already is the reduced one — the flat product is never built.
    println!(
        "state space: {} canonical states, {} transitions",
        stats.num_states, stats.num_transitions
    );
    for subchain in &stats.subchains {
        if subchain.members.len() > 1 {
            println!(
                "  sub-chain {:?} lumped before composition: {} local states -> {} blocks",
                subchain.members, subchain.local_states, subchain.local_blocks
            );
        }
    }
    if let (Some(states), Some(transitions)) = (stats.lumped_states, stats.lumped_transitions) {
        println!("final quotient: {states} blocks, {transitions} transitions");
    }

    // Availability: long-run probability of being fully operational.
    println!(
        "steady-state availability: {:.6}",
        analysis.steady_state_availability()?
    );

    // Reliability: probability of an uninterrupted first year of full service.
    for hours in [24.0, 24.0 * 30.0, 24.0 * 365.0] {
        println!(
            "reliability over {hours:>7.0} h: {:.6}",
            analysis.reliability(hours)?
        );
    }

    // Survivability: how quickly is half the pumping capacity restored after
    // both pumps fail simultaneously?
    let disaster = model.disaster("both-pumps-down").expect("declared above");
    println!(
        "attainable service levels: {:?}",
        analysis.attainable_service_levels()
    );
    for deadline in [0.5, 1.0, 2.0, 4.0] {
        let p = analysis.survivability(disaster, 0.5, deadline)?;
        println!("P(service >= 50% within {deadline:.1} h after the disaster) = {p:.4}");
    }

    // Costs: what does the recovery cost?
    let accumulated = analysis.accumulated_cost_curve(Some(disaster), &[1.0, 5.0, 10.0])?;
    for (t, cost) in accumulated {
        println!("expected cost accumulated {t:>4.1} h after the disaster: {cost:.2}");
    }

    Ok(())
}
