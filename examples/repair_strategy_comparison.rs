//! Compare repair strategies for Line 2 of the water-treatment facility.
//!
//! This reproduces the decision problem of the paper in miniature: given one
//! process line, is it better to hire more crews or to schedule smarter?
//!
//! ```text
//! cargo run --release --example repair_strategy_comparison
//! ```

use arcade_core::Analysis;
use watertreatment::{combined_availability, facility, strategies, Line};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("strategy   line-2 availability   long-run cost rate   states");
    println!("---------------------------------------------------------------");

    for spec in [
        strategies::dedicated(),
        strategies::fcfs(1),
        strategies::fcfs(2),
        strategies::frf(1),
        strategies::frf(2),
        strategies::fff(1),
        strategies::fff(2),
    ] {
        let model = facility::line_model(Line::Line2, &spec)?;
        let analysis = Analysis::new(&model)?;
        let availability = analysis.steady_state_availability()?;
        let cost_rate = analysis.long_run_cost_rate()?;
        let states = analysis.state_space_stats().num_states;
        println!(
            "{:<10} {availability:<21.7} {cost_rate:<20.4} {states}",
            spec.label
        );
    }

    // The paper's headline conclusion: compare the full facility (both lines)
    // under the one- and two-crew variants of the best scheduling policy.
    println!();
    for spec in [
        strategies::frf(1),
        strategies::frf(2),
        strategies::dedicated(),
    ] {
        let mut line_availability = [0.0; 2];
        for (i, line) in Line::both().into_iter().enumerate() {
            let model = facility::line_model(line, &spec)?;
            line_availability[i] = Analysis::new(&model)?.steady_state_availability()?;
        }
        println!(
            "facility availability under {:<6}: {:.7}",
            spec.label,
            combined_availability(line_availability[0], line_availability[1])
        );
    }

    Ok(())
}
