//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace has no crates.io access, so the real serde derive cannot be
//! built. Nothing in the tree currently serialises at runtime — the derives
//! only have to *compile* — so both macros expand to nothing while still
//! accepting `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
