//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API used by the simulator: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`] and `Rng::gen::<f64>()`. The
//! generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator of the real `StdRng`, but statistically more than adequate for
//! Monte-Carlo smoke tests, and fully deterministic for a given seed.

/// Low-level source of random 64-bit values.
pub trait RngCore {
    /// Next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a uniform value in `[low, high)`.
    fn gen_range(&mut self, low: f64, high: f64) -> f64
    where
        Self: Sized,
    {
        low + self.gen::<f64>() * (high - low)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_and_uniform_ish() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = a.gen();
            assert_eq!(x, b.gen::<f64>());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
