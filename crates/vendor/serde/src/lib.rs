//! Offline stand-in for the `serde` crate.
//!
//! Re-exports no-op `Serialize`/`Deserialize` derive macros (the build
//! environment cannot fetch the real serde from crates.io). The traits exist
//! so that `use serde::{Deserialize, Serialize}` imports both namespaces, as
//! with the real crate; they carry no methods because nothing in the
//! workspace serialises at runtime yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
