//! Smoke tests for the `proptest!` macro machinery itself.

use std::sync::atomic::{AtomicU32, Ordering};

use proptest::prelude::*;

#[test]
fn case_count_is_respected() {
    static CASES_RUN: AtomicU32 = AtomicU32::new(0);
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[allow(unused)]
        fn counting_property(value in 0u32..1000) {
            CASES_RUN.fetch_add(1, Ordering::SeqCst);
            prop_assert!(value < 1000);
        }
    }
    counting_property();
    assert_eq!(CASES_RUN.load(Ordering::SeqCst), 17);
}

#[test]
#[should_panic(expected = "inputs")]
fn failures_report_inputs() {
    proptest! {
        #[allow(unused)]
        fn always_fails(value in 0u32..10) {
            prop_assert!(value > 100, "value {value} is small");
        }
    }
    always_fails();
}

#[test]
fn early_ok_return_is_supported() {
    proptest! {
        #[allow(unused)]
        fn returns_early(value in 0u32..10) {
            if value < 100 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }
    returns_early();
}

#[test]
fn generated_values_vary_across_cases() {
    static DISTINCT: AtomicU32 = AtomicU32::new(0);
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[allow(unused)]
        fn spread(value in 0u32..1_000_000) {
            if value % 2 == 0 {
                DISTINCT.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    spread();
    let evens = DISTINCT.load(Ordering::SeqCst);
    assert!(
        (10..=54).contains(&evens),
        "wildly skewed generation: {evens}/64 even"
    );
}
