//! Deterministic random number generation for property tests.

/// A small, fast, deterministic RNG (SplitMix64).
///
/// Each test case gets its own seed derived from the case index, so a failing
/// case can be re-run bit-identically without recording anything.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the given case index of a property.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xD1B5_4A32_D192_ED03),
        }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below() requires a positive bound");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
