//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors
//! a minimal, dependency-free re-implementation of the subset of the proptest
//! API its test suites use: the [`Strategy`] trait with `prop_map`,
//! `prop_flat_map` and `prop_recursive`, range/tuple/`Just`/`any` strategies,
//! `collection::vec`, a simple character-class string strategy, and the
//! `proptest!`/`prop_assert!`/`prop_oneof!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! deterministic (a fixed seed per case index, so failures are reproducible by
//! construction) and there is no shrinking — a failing case reports its inputs
//! via `Debug` instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};

/// Configuration accepted by the `proptest!` macro.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated test cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error produced by a failing `prop_assert!`-style check.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs =
                        format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> $crate::TestCaseResult {
                            $body
                            Ok(())
                        }),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(error)) => {
                            panic!("case {case} failed: {}\n  inputs: {inputs}", error.0)
                        }
                        Err(payload) => {
                            eprintln!("case {case} panicked; inputs: {inputs}");
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the surrounding property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Fails the surrounding property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Chooses uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
