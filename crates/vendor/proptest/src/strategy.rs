//! The [`Strategy`] trait and the combinators used by this workspace.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of a given type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and derives a second strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive values up to `depth` applications of `recurse`.
    ///
    /// The size-control parameters of upstream proptest are accepted but
    /// unused; each generated value picks a uniform recursion depth in
    /// `0..=depth` instead.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let deeper = recurse(levels.last().expect("at least the base level").clone());
            levels.push(deeper.boxed());
        }
        LevelPick { levels }.boxed()
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`]: picks a uniform level per generated value.
struct LevelPick<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for LevelPick<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let level = rng.below(self.levels.len());
        self.levels[level].generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies, built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy {:?}", self);
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy {:?}", self);
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {:?}", self);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy {:?}", self);
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// String-literal strategies for patterns of the form `[class]{lo,hi}`.
///
/// This covers exactly the character-class-with-repetition regexes used by the
/// workspace's tests; anything else panics with a clear message rather than
/// silently generating wrong data.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` / `[class]{n}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for code in c as u32..=chars[i + 2] as u32 {
                alphabet.push(char::from_u32(code)?);
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parsing_covers_ranges_and_escapes() {
        let (alphabet, lo, hi) = parse_class_pattern("[A-Za-z0-9 .&<>'\"-]{0,12}").unwrap();
        assert_eq!((lo, hi), (0, 12));
        assert!(alphabet.contains(&'Q'));
        assert!(alphabet.contains(&'7'));
        assert!(alphabet.contains(&'\''));
        assert!(alphabet.contains(&'-'));
        assert!(parse_class_pattern("plain text").is_none());
    }

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (1usize..=3).generate(&mut rng);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn recursive_strategies_terminate_within_the_depth_bound() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        fn depth(tree: &Tree) -> usize {
            match tree {
                Tree::Leaf(value) => {
                    assert!(*value < 5);
                    0
                }
                Tree::Node(children) => {
                    1 + children
                        .iter()
                        .map(depth)
                        .max()
                        .expect("nodes are non-empty")
                }
            }
        }
        let strat = (0u32..5)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case(1);
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
