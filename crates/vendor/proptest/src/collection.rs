//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range {range:?}");
        SizeRange {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(
            range.start() <= range.end(),
            "empty vec size range {range:?}"
        );
        SizeRange {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_the_size_range() {
        let strat = vec(0u32..10, 2..5);
        let mut rng = TestRng::for_case(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }
}
