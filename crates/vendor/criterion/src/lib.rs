//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the small API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`] and the `criterion_group!`/`criterion_main!` macros —
//! with a simple wall-clock timer instead of criterion's statistical engine.
//! Each benchmark reports min/mean per-iteration times on stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_budget: self.measurement_budget,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, self.measurement_budget, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.measurement_budget, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, sample_size: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        budget,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{id}: {} samples, min {:.3?}, mean {:.3?}",
        bencher.samples.len(),
        min,
        mean
    );
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times repeated runs of `f` (one warm-up, then up to `sample_size`
    /// samples or until the measurement budget is exhausted).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            black_box(f());
            self.samples.push(sample_start.elapsed());
            if started.elapsed() > self.budget && !self.samples.is_empty() {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group
            .sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
