//! Offline stand-in for the `bytes` crate: the growable [`BytesMut`] buffer
//! API the XML writer uses, backed by a plain `Vec<u8>`.

/// A growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends the given bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buffer: BytesMut) -> Vec<u8> {
        buffer.data
    }
}

#[cfg(test)]
mod tests {
    use super::BytesMut;

    #[test]
    fn buffer_accumulates_bytes() {
        let mut buffer = BytesMut::new();
        assert!(buffer.is_empty());
        buffer.extend_from_slice(b"<a>");
        buffer.extend_from_slice(b"</a>");
        assert_eq!(buffer.len(), 7);
        assert_eq!(String::from_utf8(buffer.to_vec()).unwrap(), "<a></a>");
    }
}
