//! CSL model checking over k-line product states (k > 2).
//!
//! The `lineK/…` label namespace is not special-cased anywhere: the product
//! carries every factor's labels under `{factor}/{label}` for however many
//! factors there are, so three-line formulas check exactly like two-line
//! ones. Identical lines additionally expose a fold symmetry the checker's
//! lumping path may exploit — per-line verdicts must still project back
//! identically for every line.

use arcade_lumping::QuotientProduct;
use csl::ast::{PathFormula, Query, StateFormula};
use csl::CslChecker;
use ctmc::{Ctmc, CtmcBuilder, ExecOptions};

/// A repairable two-state line: up (0) ⇄ down (1), labelled `operational`.
fn line(lambda: f64, mu: f64) -> Ctmc {
    let mut b = CtmcBuilder::new(2);
    b.add_transition(0, 1, lambda).unwrap();
    b.add_transition(1, 0, mu).unwrap();
    b.set_initial_state(0).unwrap();
    b.add_label_mask("operational", vec![true, false]).unwrap();
    b.build().unwrap()
}

/// A k-line bank of identical lines labelled `line1` … `lineK`.
fn bank_chain(k: usize, lambda: f64, mu: f64) -> Ctmc {
    QuotientProduct::from_chains(
        (1..=k)
            .map(|i| (format!("line{i}"), line(lambda, mu)))
            .collect(),
    )
    .unwrap()
    .materialize(&ExecOptions::serial())
    .unwrap()
}

fn up(i: usize) -> StateFormula {
    StateFormula::label(format!("line{i}/operational"))
}

#[test]
fn three_line_steady_state_queries_match_closed_forms() {
    let (lambda, mu) = (0.1, 1.0);
    let chain = bank_chain(3, lambda, mu);
    let checker = CslChecker::new(&chain);
    let a = mu / (lambda + mu);

    // Per-line marginals: identical lines must project back identical
    // verdicts — line3 answers exactly like line1 and line2.
    let marginals: Vec<f64> = (1..=3)
        .map(|i| checker.check(&Query::SteadyState(up(i))).unwrap())
        .collect();
    for (i, marginal) in marginals.iter().enumerate() {
        assert!(
            (marginal - a).abs() < 1e-9,
            "line{}: {marginal} vs {a}",
            i + 1
        );
        assert!(
            (marginal - marginals[0]).abs() < 1e-12,
            "identical lines must agree: {marginals:?}"
        );
    }

    // S=? [ any line up ] — 1 − (1 − a)^3 over the 8-state product.
    let any_up = checker
        .check(&Query::SteadyState(up(1).or(up(2)).or(up(3))))
        .unwrap();
    let expected = 1.0 - (1.0 - a).powi(3);
    assert!((any_up - expected).abs() < 1e-9, "{any_up} vs {expected}");

    // Mixed formula: exactly line 2 delivering.
    let only_line2 = checker
        .check(&Query::SteadyState(up(2).and(up(1).not()).and(up(3).not())))
        .unwrap();
    let expected = a * (1.0 - a) * (1.0 - a);
    assert!((only_line2 - expected).abs() < 1e-9);

    // The symmetric union query folds beyond the flat 8-state product —
    // the quotient cannot drop below the 4 line-count blocks.
    if let Some(blocks) = checker.quotient_blocks() {
        assert!((4..8).contains(&blocks), "blocks {blocks}");
    }
}

#[test]
fn three_line_path_queries_agree_between_lumped_and_flat() {
    let chain = bank_chain(3, 0.2, 1.0);
    let checker = CslChecker::new(&chain);
    let flat = CslChecker::flat(&chain);
    // P=? [ F<=t all three lines down ].
    let all_down = |t: f64, checker: &CslChecker| {
        checker
            .check(&Query::Probability(PathFormula::BoundedEventually {
                goal: up(1).not().and(up(2).not()).and(up(3).not()),
                bound: t,
            }))
            .unwrap()
    };
    let early = all_down(1.0, &checker);
    let late = all_down(10.0, &checker);
    assert!(early > 0.0 && late <= 1.0);
    assert!(late > early, "{late} vs {early}");
    for t in [0.5, 2.0, 8.0] {
        let lumped_value = all_down(t, &checker);
        let flat_value = all_down(t, &flat);
        assert!(
            (lumped_value - flat_value).abs() < 1e-9,
            "t={t}: {lumped_value} vs {flat_value}"
        );
    }
}
