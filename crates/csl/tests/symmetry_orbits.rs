//! CSL verdicts over subtree-orbit state spaces.
//!
//! The composer's isomorphic-subtree reduction explores orbit
//! representatives instead of the flat chain; because the orbit partition is
//! ordinarily lumpable and every model label (operational / down /
//! no_service) is symmetric in the folded subtrees, every CSL query must
//! return the same verdict on the orbit chain as on the flat chain — the
//! symmetry-level counterpart of the checker's own flat-vs-lumped guarantee.

use arcade_core::{
    ArcadeModel, BasicComponent, CompiledModel, ComposerOptions, LumpingMode, RepairStrategy,
    RepairUnit,
};
use csl::ast::{PathFormula, Query, StateFormula};
use csl::CslChecker;
use fault_tree::{StructureNode, SystemStructure};

/// series( redundant(a, b), redundant(c, d) ) with all four components
/// identical behind one FCFS crew: both the leaf swaps and the whole-group
/// swap are chain automorphisms, so the orbit chain is strictly smaller.
fn twin_group_model() -> ArcadeModel {
    let structure = SystemStructure::new(StructureNode::series(vec![
        StructureNode::redundant(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]),
        StructureNode::redundant(vec![
            StructureNode::component("c"),
            StructureNode::component("d"),
        ]),
    ]));
    ArcadeModel::builder("twin-groups", structure)
        .components(["a", "b", "c", "d"].map(|n| {
            BasicComponent::from_mttf_mttr(n, 200.0, 2.0)
                .unwrap()
                .with_failed_cost(3.0)
        }))
        .repair_unit(
            RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                .unwrap()
                .responsible_for(["a", "b", "c", "d"])
                .with_idle_cost(1.0),
        )
        .build()
        .unwrap()
}

#[test]
fn verdicts_match_between_orbit_and_flat_chains() {
    let model = twin_group_model();
    let flat = CompiledModel::compile_with(
        &model,
        ComposerOptions {
            lumping: LumpingMode::Disabled,
            ..ComposerOptions::default()
        },
    )
    .unwrap();
    let orbit = CompiledModel::compile(&model).unwrap();
    assert!(
        orbit.stats().num_states < flat.stats().num_states,
        "the subtree orbits must fold the chain: {} vs {}",
        orbit.stats().num_states,
        flat.stats().num_states
    );

    let queries = [
        Query::SteadyState(StateFormula::label("operational")),
        Query::SteadyState(StateFormula::label("no_service")),
        Query::Probability(PathFormula::BoundedUntil {
            safe: StateFormula::True,
            goal: StateFormula::label("down"),
            bound: 25.0,
        }),
        Query::Probability(PathFormula::BoundedUntil {
            safe: StateFormula::label("operational"),
            goal: StateFormula::label("no_service"),
            bound: 100.0,
        }),
    ];
    let flat_checker = CslChecker::new(flat.chain());
    let orbit_checker = CslChecker::new(orbit.chain());
    for query in &queries {
        let on_flat = flat_checker.check(query).unwrap();
        let on_orbit = orbit_checker.check(query).unwrap();
        assert!(
            (on_flat - on_orbit).abs() <= 1e-9,
            "{query:?}: {on_flat} vs {on_orbit}"
        );
    }
}
