//! CSL model checking over facility product states.
//!
//! The materialised quotient product carries every factor label as a
//! cylinder extension under `{factor}/{label}`, so CSL formulas can mix
//! per-line atomic propositions freely. The checker's own lumping path must
//! agree with the flat path on the product chain (the product of quotients
//! may itself lump further — e.g. symmetric factors).

use arcade_lumping::QuotientProduct;
use csl::ast::{PathFormula, Query, StateFormula};
use csl::CslChecker;
use ctmc::{Ctmc, CtmcBuilder, ExecOptions};

/// A repairable two-state line: up (0) ⇄ down (1), labelled `operational`.
fn line(lambda: f64, mu: f64) -> Ctmc {
    let mut b = CtmcBuilder::new(2);
    b.add_transition(0, 1, lambda).unwrap();
    b.add_transition(1, 0, mu).unwrap();
    b.set_initial_state(0).unwrap();
    b.add_label_mask("operational", vec![true, false]).unwrap();
    b.build().unwrap()
}

fn facility_chain(l1: (f64, f64), l2: (f64, f64)) -> Ctmc {
    QuotientProduct::from_chains(vec![
        ("line1".to_string(), line(l1.0, l1.1)),
        ("line2".to_string(), line(l2.0, l2.1)),
    ])
    .unwrap()
    .materialize(&ExecOptions::serial())
    .unwrap()
}

#[test]
fn steady_state_queries_over_product_labels_match_closed_forms() {
    let (la, ma) = (0.1, 1.0);
    let (lb, mb) = (0.5, 2.0);
    let chain = facility_chain((la, ma), (lb, mb));
    let checker = CslChecker::new(&chain);

    let a_up = ma / (la + ma);
    let b_up = mb / (lb + mb);

    // S=? [ "line1/operational" ] — the marginal is undisturbed by the product.
    let line1 = checker
        .check(&Query::SteadyState(StateFormula::label(
            "line1/operational",
        )))
        .unwrap();
    assert!((line1 - a_up).abs() < 1e-9, "{line1} vs {a_up}");

    // S=? [ "line1/operational" | "line2/operational" ] — the paper's
    // combined availability A1 + A2 − A1·A2 as a CSL query over product states.
    let combined = checker
        .check(&Query::SteadyState(
            StateFormula::label("line1/operational").or(StateFormula::label("line2/operational")),
        ))
        .unwrap();
    let expected = a_up + b_up - a_up * b_up;
    assert!(
        (combined - expected).abs() < 1e-9,
        "{combined} vs {expected}"
    );

    // Mixed formula: exactly line 1 delivering.
    let only_line1 = checker
        .check(&Query::SteadyState(
            StateFormula::label("line1/operational")
                .and(StateFormula::label("line2/operational").not()),
        ))
        .unwrap();
    assert!((only_line1 - a_up * (1.0 - b_up)).abs() < 1e-9);
}

#[test]
fn path_queries_over_product_labels_match_independence() {
    let chain = facility_chain((0.2, 1.0), (0.4, 2.0));
    let checker = CslChecker::new(&chain);
    // P=? [ F<=t !"line1/operational" & !"line2/operational" ]: both lines
    // down within t. With no repairs having happened yet this is dominated
    // by both first failures arriving; just pin monotonicity and the
    // flat/lumped agreement here.
    let both_down = |t: f64, checker: &CslChecker| {
        checker
            .check(&Query::Probability(PathFormula::BoundedEventually {
                goal: StateFormula::label("line1/operational")
                    .not()
                    .and(StateFormula::label("line2/operational").not()),
                bound: t,
            }))
            .unwrap()
    };
    let early = both_down(1.0, &checker);
    let late = both_down(10.0, &checker);
    assert!(early > 0.0 && late <= 1.0);
    assert!(late > early, "{late} vs {early}");

    // The lumped and the flat checker agree on product states.
    let flat = CslChecker::flat(&chain);
    for t in [0.5, 2.0, 8.0] {
        let lumped_value = both_down(t, &checker);
        let flat_value = both_down(t, &flat);
        assert!(
            (lumped_value - flat_value).abs() < 1e-9,
            "t={t}: {lumped_value} vs {flat_value}"
        );
    }
}

#[test]
fn symmetric_factors_lump_further_on_the_product() {
    // Two identical lines: the product chain has a swap symmetry the
    // checker's exact lumping can exploit — (up,down) ≡ (down,up) once the
    // per-line labels are ignored. With per-line labels in play the blocks
    // must keep the lines apart; the quotient the checker reports can
    // therefore not drop below 3 blocks for a symmetric union query.
    let chain = facility_chain((0.1, 1.0), (0.1, 1.0));
    let checker = CslChecker::new(&chain);
    let combined = checker
        .check(&Query::SteadyState(
            StateFormula::label("line1/operational").or(StateFormula::label("line2/operational")),
        ))
        .unwrap();
    let a = 1.0 / 1.1;
    let expected = a + a - a * a;
    assert!((combined - expected).abs() < 1e-9);
    if let Some(blocks) = checker.quotient_blocks() {
        assert!((3..=4).contains(&blocks), "blocks {blocks}");
    }
}
