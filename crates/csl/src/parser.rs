//! A recursive-descent parser for a PRISM-like CSL/CSRL query syntax.
//!
//! Supported grammar (whitespace-insensitive):
//!
//! ```text
//! query      := 'P=?' '[' path ']'
//!             | 'S=?' '[' state ']'
//!             | 'R=?' '[' 'I=' number ']'
//!             | 'R=?' '[' 'C<=' number ']'
//!             | 'R=?' '[' 'S' ']'
//! path       := state 'U<=' number state
//!             | 'F<=' number state
//! state      := or
//! or         := and ( '|' and )*
//! and        := unary ( '&' unary )*
//! unary      := '!' unary | '(' state ')' | 'true' | 'false' | '"' label '"'
//! ```

use crate::ast::{PathFormula, Query, StateFormula};
use crate::error::CslError;

/// Parses a textual CSL/CSRL query.
///
/// # Errors
///
/// Returns [`CslError::Parse`] describing the first offending position.
///
/// # Example
///
/// ```
/// # use csl::parse_query;
/// let q = parse_query("P=? [ \"operational\" U<=4.5 \"full_service\" ]").unwrap();
/// assert!(matches!(q, csl::Query::Probability(_)));
/// ```
pub fn parse_query(input: &str) -> Result<Query, CslError> {
    let mut parser = Parser { input, position: 0 };
    let query = parser.parse_query()?;
    parser.skip_whitespace();
    if parser.position != parser.input.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(query)
}

struct Parser<'a> {
    input: &'a str,
    position: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> CslError {
        CslError::Parse {
            position: self.position,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.position..]
    }

    fn skip_whitespace(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.position += self.rest().chars().next().map(char::len_utf8).unwrap_or(0);
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_whitespace();
        if self.rest().starts_with(token) {
            self.position += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), CslError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn parse_query(&mut self) -> Result<Query, CslError> {
        self.skip_whitespace();
        if self.eat("P=?") {
            self.expect("[")?;
            let path = self.parse_path()?;
            self.expect("]")?;
            Ok(Query::Probability(path))
        } else if self.eat("S=?") {
            self.expect("[")?;
            let state = self.parse_state()?;
            self.expect("]")?;
            Ok(Query::SteadyState(state))
        } else if self.eat("R=?") {
            self.expect("[")?;
            self.skip_whitespace();
            let query = if self.eat("I=") {
                Query::InstantaneousReward {
                    time: self.parse_number()?,
                }
            } else if self.eat("C<=") {
                Query::CumulativeReward {
                    time: self.parse_number()?,
                }
            } else if self.eat("S") {
                Query::SteadyStateReward
            } else {
                return Err(self.error("expected `I=`, `C<=` or `S` inside R=? [...]"));
            };
            self.expect("]")?;
            Ok(query)
        } else {
            Err(self.error("expected `P=?`, `S=?` or `R=?`"))
        }
    }

    fn parse_path(&mut self) -> Result<PathFormula, CslError> {
        self.skip_whitespace();
        if self.eat("F<=") {
            let bound = self.parse_number()?;
            let goal = self.parse_state()?;
            return Ok(PathFormula::BoundedEventually { goal, bound });
        }
        let safe = self.parse_state()?;
        self.expect("U<=")?;
        let bound = self.parse_number()?;
        let goal = self.parse_state()?;
        Ok(PathFormula::BoundedUntil { safe, goal, bound })
    }

    fn parse_state(&mut self) -> Result<StateFormula, CslError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<StateFormula, CslError> {
        let mut left = self.parse_and()?;
        while self.eat("|") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<StateFormula, CslError> {
        let mut left = self.parse_unary()?;
        while self.eat("&") {
            let right = self.parse_unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<StateFormula, CslError> {
        self.skip_whitespace();
        if self.eat("!") {
            return Ok(self.parse_unary()?.not());
        }
        if self.eat("(") {
            let inner = self.parse_state()?;
            self.expect(")")?;
            return Ok(inner);
        }
        if self.eat("true") {
            return Ok(StateFormula::True);
        }
        if self.eat("false") {
            return Ok(StateFormula::False);
        }
        if self.eat("\"") {
            let rest = self.rest();
            match rest.find('"') {
                Some(end) => {
                    let label = &rest[..end];
                    if label.is_empty() {
                        return Err(self.error("empty label"));
                    }
                    self.position += end + 1;
                    Ok(StateFormula::Label(label.to_string()))
                }
                None => Err(self.error("unterminated label")),
            }
        } else {
            Err(self.error("expected a state formula"))
        }
    }

    fn parse_number(&mut self) -> Result<f64, CslError> {
        self.skip_whitespace();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .take_while(|(_, c)| {
                c.is_ascii_digit() || *c == '.' || *c == 'e' || *c == 'E' || *c == '-' || *c == '+'
            })
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        let text = &rest[..end];
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number `{text}`")))?;
        if value < 0.0 || !value.is_finite() {
            return Err(CslError::InvalidBound {
                message: format!("time bounds must be non-negative and finite, got {value}"),
            });
        }
        self.position += end;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_steady_state_queries() {
        let q = parse_query("S=? [ \"operational\" ]").unwrap();
        assert_eq!(q, Query::SteadyState(StateFormula::label("operational")));
        let q = parse_query("S=?[!\"down\"]").unwrap();
        assert_eq!(q, Query::SteadyState(StateFormula::label("down").not()));
    }

    #[test]
    fn parses_bounded_until_and_eventually() {
        let q = parse_query("P=? [ true U<=1000 \"down\" ]").unwrap();
        match q {
            Query::Probability(PathFormula::BoundedUntil { safe, goal, bound }) => {
                assert_eq!(safe, StateFormula::True);
                assert_eq!(goal, StateFormula::label("down"));
                assert_eq!(bound, 1000.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = parse_query("P=? [ F<=4.5 \"service\" ]").unwrap();
        assert!(
            matches!(q, Query::Probability(PathFormula::BoundedEventually { bound, .. }) if bound == 4.5)
        );
    }

    #[test]
    fn parses_reward_queries() {
        assert_eq!(
            parse_query("R=? [ I=2.5 ]").unwrap(),
            Query::InstantaneousReward { time: 2.5 }
        );
        assert_eq!(
            parse_query("R=? [ C<=10 ]").unwrap(),
            Query::CumulativeReward { time: 10.0 }
        );
        assert_eq!(parse_query("R=? [ S ]").unwrap(), Query::SteadyStateReward);
    }

    #[test]
    fn parses_boolean_combinations_with_precedence() {
        let q = parse_query("S=? [ \"a\" & \"b\" | !\"c\" ]").unwrap();
        // `&` binds tighter than `|`.
        match q {
            Query::SteadyState(StateFormula::Or(left, right)) => {
                assert!(matches!(*left, StateFormula::And(_, _)));
                assert!(matches!(*right, StateFormula::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = parse_query("S=? [ (\"a\" | \"b\") & false ]").unwrap();
        match q {
            Query::SteadyState(StateFormula::And(left, right)) => {
                assert!(matches!(*left, StateFormula::Or(_, _)));
                assert!(matches!(*right, StateFormula::False));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scientific_notation_bounds() {
        let q = parse_query("P=? [ true U<=1e3 \"down\" ]").unwrap();
        assert!(
            matches!(q, Query::Probability(PathFormula::BoundedUntil { bound, .. }) if bound == 1000.0)
        );
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("").is_err());
        assert!(parse_query("Q=? [ true ]").is_err());
        assert!(parse_query("P=? [ true U<=10 ").is_err());
        assert!(parse_query("P=? [ true U<= \"down\" ]").is_err());
        assert!(parse_query("S=? [ \"unterminated ]").is_err());
        assert!(parse_query("S=? [ \"\" ]").is_err());
        assert!(parse_query("R=? [ X=1 ]").is_err());
        assert!(parse_query("S=? [ \"a\" ] garbage").is_err());
        assert!(parse_query("P=? [ true U<=-5 \"down\" ]").is_err());
    }

    #[test]
    fn whitespace_is_irrelevant() {
        let a = parse_query("P=?[true U<=10 \"down\"]").unwrap();
        let b = parse_query("  P=?   [  true   U<=10    \"down\"  ]  ").unwrap();
        assert_eq!(a, b);
    }
}
