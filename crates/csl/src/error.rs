//! Error type for CSL parsing and model checking.

use std::fmt;

use ctmc::CtmcError;

/// Errors produced while parsing or checking CSL/CSRL queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CslError {
    /// The query text could not be parsed.
    Parse {
        /// Position (byte offset) where parsing failed.
        position: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The query references a label that the chain does not carry.
    UnknownLabel {
        /// The missing label.
        label: String,
    },
    /// A reward query was checked without providing a reward structure.
    MissingRewards,
    /// A numeric bound in the query is invalid (negative, NaN, ...).
    InvalidBound {
        /// Explanation of the problem.
        message: String,
    },
    /// An error bubbled up from the CTMC engine.
    Numerics(CtmcError),
}

impl fmt::Display for CslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CslError::Parse { position, message } => {
                write!(f, "parse error at offset {position}: {message}")
            }
            CslError::UnknownLabel { label } => write!(f, "unknown label `{label}`"),
            CslError::MissingRewards => {
                write!(
                    f,
                    "reward query requires a reward structure; none was provided"
                )
            }
            CslError::InvalidBound { message } => write!(f, "invalid bound: {message}"),
            CslError::Numerics(err) => write!(f, "numerical engine error: {err}"),
        }
    }
}

impl std::error::Error for CslError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CslError::Numerics(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CtmcError> for CslError {
    fn from(err: CtmcError) -> Self {
        CslError::Numerics(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CslError::Parse {
            position: 3,
            message: "expected ']'".into(),
        };
        assert!(e.to_string().contains('3'));
        assert!(CslError::UnknownLabel {
            label: "down".into()
        }
        .to_string()
        .contains("down"));
        assert!(CslError::MissingRewards.to_string().contains("reward"));
        let e: CslError = CtmcError::EmptyChain.into();
        assert!(matches!(e, CslError::Numerics(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
