//! # csl — Continuous Stochastic (Reward) Logic over labelled CTMCs
//!
//! A small CSL/CSRL layer in the spirit of PRISM's property language, covering
//! exactly the operators the DSN 2010 water-treatment paper uses:
//!
//! * state formulas: atomic propositions (CTMC labels), `true`/`false`,
//!   negation, conjunction, disjunction;
//! * the probabilistic operator `P=? [ phi U<=t psi ]` and `P=? [ F<=t psi ]`
//!   (time-bounded until / eventually);
//! * the steady-state operator `S=? [ phi ]`;
//! * the reward operators `R=? [ I=t ]` (instantaneous) and `R=? [ C<=t ]`
//!   (accumulated).
//!
//! Formulas can be built programmatically ([`StateFormula`], [`Query`]) or
//! parsed from a PRISM-like textual syntax ([`parse_query`]), and are checked
//! against a [`ctmc::Ctmc`] with an optional reward structure by
//! [`CslChecker`].
//!
//! ```
//! use ctmc::CtmcBuilder;
//! use csl::{parse_query, CslChecker};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CtmcBuilder::new(2);
//! b.add_transition(0, 1, 0.01)?;
//! b.add_transition(1, 0, 1.0)?;
//! b.add_label("down", &[1])?;
//! let chain = b.build()?;
//!
//! let checker = CslChecker::new(&chain);
//! let unavailability = checker.check(&parse_query("S=? [ \"down\" ]")?)?;
//! assert!(unavailability < 0.011);
//! let unreliability = checker.check(&parse_query("P=? [ true U<=100 \"down\" ]")?)?;
//! assert!(unreliability > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod checker;
pub mod error;
pub mod parser;

pub use ast::{PathFormula, Query, StateFormula};
pub use checker::CslChecker;
pub use error::CslError;
pub use parser::parse_query;
