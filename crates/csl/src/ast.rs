//! Abstract syntax of CSL/CSRL queries.

use serde::{Deserialize, Serialize};

/// A state formula: a boolean predicate over CTMC states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateFormula {
    /// Satisfied by every state.
    True,
    /// Satisfied by no state.
    False,
    /// Satisfied by states carrying the given label.
    Label(String),
    /// Negation.
    Not(Box<StateFormula>),
    /// Conjunction.
    And(Box<StateFormula>, Box<StateFormula>),
    /// Disjunction.
    Or(Box<StateFormula>, Box<StateFormula>),
}

impl StateFormula {
    /// Atomic proposition referring to a CTMC label.
    pub fn label(name: impl Into<String>) -> StateFormula {
        StateFormula::Label(name.into())
    }

    /// Negation of this formula.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> StateFormula {
        StateFormula::Not(Box::new(self))
    }

    /// Conjunction with another formula.
    pub fn and(self, other: StateFormula) -> StateFormula {
        StateFormula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another formula.
    pub fn or(self, other: StateFormula) -> StateFormula {
        StateFormula::Or(Box::new(self), Box::new(other))
    }
}

/// A path formula inside the probabilistic operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathFormula {
    /// `phi U<=t psi`: `psi` is reached within `t` while only `phi`-states are visited.
    BoundedUntil {
        /// The safety condition that must hold along the way.
        safe: StateFormula,
        /// The goal condition.
        goal: StateFormula,
        /// The time bound in model time units (hours in the paper).
        bound: f64,
    },
    /// `F<=t psi`, shorthand for `true U<=t psi`.
    BoundedEventually {
        /// The goal condition.
        goal: StateFormula,
        /// The time bound.
        bound: f64,
    },
}

impl PathFormula {
    /// The safety/goal/bound decomposition used by the checker.
    pub fn as_until(&self) -> (StateFormula, StateFormula, f64) {
        match self {
            PathFormula::BoundedUntil { safe, goal, bound } => (safe.clone(), goal.clone(), *bound),
            PathFormula::BoundedEventually { goal, bound } => {
                (StateFormula::True, goal.clone(), *bound)
            }
        }
    }
}

/// A top-level query returning a number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// `P=? [ path ]`: probability of the path formula from the initial distribution.
    Probability(PathFormula),
    /// `S=? [ phi ]`: long-run probability of residing in `phi`-states.
    SteadyState(StateFormula),
    /// `R=? [ I=t ]`: expected instantaneous reward rate at time `t`.
    InstantaneousReward {
        /// The time instant.
        time: f64,
    },
    /// `R=? [ C<=t ]`: expected reward accumulated up to time `t`.
    CumulativeReward {
        /// The time bound.
        time: f64,
    },
    /// `R=? [ S ]`: long-run expected reward rate.
    SteadyStateReward,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let f = StateFormula::label("a")
            .and(StateFormula::label("b").not())
            .or(StateFormula::True);
        match f {
            StateFormula::Or(left, right) => {
                assert!(matches!(*right, StateFormula::True));
                assert!(matches!(*left, StateFormula::And(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eventually_desugars_to_until() {
        let path = PathFormula::BoundedEventually {
            goal: StateFormula::label("goal"),
            bound: 2.0,
        };
        let (safe, goal, bound) = path.as_until();
        assert_eq!(safe, StateFormula::True);
        assert_eq!(goal, StateFormula::label("goal"));
        assert_eq!(bound, 2.0);
        let path = PathFormula::BoundedUntil {
            safe: StateFormula::label("ok"),
            goal: StateFormula::label("goal"),
            bound: 1.0,
        };
        let (safe, _, _) = path.as_until();
        assert_eq!(safe, StateFormula::label("ok"));
    }
}
