//! The CSL/CSRL model checker.

use ctmc::{Ctmc, RewardSolver, RewardStructure, SteadyStateSolver, TransientSolver};

use crate::ast::{Query, StateFormula};
use crate::error::CslError;

/// Checks CSL/CSRL queries against a labelled CTMC.
///
/// Reward queries additionally need a [`RewardStructure`]; attach one with
/// [`CslChecker::with_rewards`].
#[derive(Debug, Clone)]
pub struct CslChecker<'a> {
    chain: &'a Ctmc,
    rewards: Option<&'a RewardStructure>,
}

impl<'a> CslChecker<'a> {
    /// Creates a checker without rewards.
    pub fn new(chain: &'a Ctmc) -> Self {
        CslChecker {
            chain,
            rewards: None,
        }
    }

    /// Attaches a reward structure for `R=?` queries.
    pub fn with_rewards(mut self, rewards: &'a RewardStructure) -> Self {
        self.rewards = Some(rewards);
        self
    }

    /// The chain being checked.
    pub fn chain(&self) -> &Ctmc {
        self.chain
    }

    /// Evaluates a state formula to its satisfying-state mask.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::UnknownLabel`] if the formula references a label the
    /// chain does not carry.
    pub fn satisfying_states(&self, formula: &StateFormula) -> Result<Vec<bool>, CslError> {
        let n = self.chain.num_states();
        match formula {
            StateFormula::True => Ok(vec![true; n]),
            StateFormula::False => Ok(vec![false; n]),
            StateFormula::Label(name) => {
                self.chain
                    .label(name)
                    .map(<[bool]>::to_vec)
                    .ok_or_else(|| CslError::UnknownLabel {
                        label: name.clone(),
                    })
            }
            StateFormula::Not(inner) => Ok(self
                .satisfying_states(inner)?
                .into_iter()
                .map(|b| !b)
                .collect()),
            StateFormula::And(left, right) => {
                let l = self.satisfying_states(left)?;
                let r = self.satisfying_states(right)?;
                Ok(l.into_iter().zip(r).map(|(a, b)| a && b).collect())
            }
            StateFormula::Or(left, right) => {
                let l = self.satisfying_states(left)?;
                let r = self.satisfying_states(right)?;
                Ok(l.into_iter().zip(r).map(|(a, b)| a || b).collect())
            }
        }
    }

    /// Evaluates a query to a single number (probability, expectation or rate),
    /// weighted by the chain's initial distribution where applicable.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::MissingRewards`] for reward queries without a reward
    /// structure, [`CslError::UnknownLabel`] for unknown labels and propagates
    /// numerics errors.
    pub fn check(&self, query: &Query) -> Result<f64, CslError> {
        match query {
            Query::Probability(path) => {
                let (safe, goal, bound) = path.as_until();
                let safe_mask = self.satisfying_states(&safe)?;
                let goal_mask = self.satisfying_states(&goal)?;
                Ok(
                    TransientSolver::new(self.chain)
                        .bounded_until(&safe_mask, &goal_mask, bound)?,
                )
            }
            Query::SteadyState(formula) => {
                let mask = self.satisfying_states(formula)?;
                let pi = SteadyStateSolver::new(self.chain).solve()?;
                Ok(pi
                    .iter()
                    .zip(mask.iter())
                    .filter(|(_, &m)| m)
                    .map(|(p, _)| p)
                    .sum())
            }
            Query::InstantaneousReward { time } => {
                let rewards = self.rewards.ok_or(CslError::MissingRewards)?;
                Ok(RewardSolver::new(self.chain, rewards)?.instantaneous_at(*time)?)
            }
            Query::CumulativeReward { time } => {
                let rewards = self.rewards.ok_or(CslError::MissingRewards)?;
                Ok(RewardSolver::new(self.chain, rewards)?.accumulated_until(*time)?)
            }
            Query::SteadyStateReward => {
                let rewards = self.rewards.ok_or(CslError::MissingRewards)?;
                Ok(RewardSolver::new(self.chain, rewards)?.long_run_rate()?)
            }
        }
    }

    /// Evaluates the probability of a path formula for every state as the
    /// starting state (rather than from the initial distribution).
    ///
    /// # Errors
    ///
    /// See [`CslChecker::check`].
    pub fn check_probability_per_state(
        &self,
        path: &crate::ast::PathFormula,
    ) -> Result<Vec<f64>, CslError> {
        let (safe, goal, bound) = path.as_until();
        let safe_mask = self.satisfying_states(&safe)?;
        let goal_mask = self.satisfying_states(&goal)?;
        Ok(TransientSolver::new(self.chain)
            .bounded_until_per_state(&safe_mask, &goal_mask, bound)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PathFormula;
    use crate::parser::parse_query;
    use ctmc::CtmcBuilder;

    /// Repairable component: up (0), down (1).
    fn repairable(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, lambda).unwrap();
        b.add_transition(1, 0, mu).unwrap();
        b.add_label("up", &[0]).unwrap();
        b.add_label("down", &[1]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn state_formula_evaluation() {
        let chain = repairable(1.0, 2.0);
        let checker = CslChecker::new(&chain);
        assert_eq!(
            checker.satisfying_states(&StateFormula::True).unwrap(),
            vec![true, true]
        );
        assert_eq!(
            checker.satisfying_states(&StateFormula::False).unwrap(),
            vec![false, false]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("down"))
                .unwrap(),
            vec![false, true]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("down").not())
                .unwrap(),
            vec![true, false]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("up").and(StateFormula::label("down")))
                .unwrap(),
            vec![false, false]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("up").or(StateFormula::label("down")))
                .unwrap(),
            vec![true, true]
        );
        assert!(matches!(
            checker.satisfying_states(&StateFormula::label("ghost")),
            Err(CslError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn steady_state_query_matches_closed_form() {
        let chain = repairable(0.002, 0.2);
        let checker = CslChecker::new(&chain);
        let q = parse_query("S=? [ \"down\" ]").unwrap();
        let expected = 0.002 / 0.202;
        assert!((checker.check(&q).unwrap() - expected).abs() < 1e-9);
        let q = parse_query("S=? [ !\"down\" ]").unwrap();
        assert!((checker.check(&q).unwrap() - (1.0 - expected)).abs() < 1e-9);
    }

    #[test]
    fn bounded_until_matches_closed_form() {
        let chain = repairable(0.01, 1.0);
        let checker = CslChecker::new(&chain);
        let q = parse_query("P=? [ true U<=100 \"down\" ]").unwrap();
        // First passage to down from up is exponential with rate lambda.
        let expected = 1.0 - (-0.01f64 * 100.0).exp();
        assert!((checker.check(&q).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn reward_queries_require_rewards() {
        let chain = repairable(1.0, 1.0);
        let checker = CslChecker::new(&chain);
        assert!(matches!(
            checker.check(&parse_query("R=? [ I=1 ]").unwrap()),
            Err(CslError::MissingRewards)
        ));
        let rewards = RewardStructure::new("cost", vec![0.0, 3.0]).unwrap();
        let checker = checker.with_rewards(&rewards);
        let inst = checker
            .check(&parse_query("R=? [ I=1000 ]").unwrap())
            .unwrap();
        assert!((inst - 1.5).abs() < 1e-6);
        let rate = checker.check(&parse_query("R=? [ S ]").unwrap()).unwrap();
        assert!((rate - 1.5).abs() < 1e-8);
        let cumulative = checker
            .check(&parse_query("R=? [ C<=2 ]").unwrap())
            .unwrap();
        assert!(cumulative > 0.0 && cumulative < 6.0);
    }

    #[test]
    fn per_state_probabilities() {
        let chain = repairable(0.5, 2.0);
        let checker = CslChecker::new(&chain);
        let path = PathFormula::BoundedEventually {
            goal: StateFormula::label("down"),
            bound: 1.0,
        };
        let per_state = checker.check_probability_per_state(&path).unwrap();
        assert_eq!(per_state.len(), 2);
        assert_eq!(per_state[1], 1.0);
        assert!(per_state[0] < 1.0 && per_state[0] > 0.0);
    }

    #[test]
    fn paper_style_queries_parse_and_check() {
        // The measures of Section 3 of the paper, expressed as CSL text.
        let chain = repairable(0.002, 1.0);
        let checker = CslChecker::new(&chain);
        let unreliability = checker
            .check(&parse_query("P=? [ true U<=1000 \"down\" ]").unwrap())
            .unwrap();
        let reliability = 1.0 - unreliability;
        assert!(reliability > 0.0 && reliability < 1.0);
        let availability = checker
            .check(&parse_query("S=? [ !\"down\" ]").unwrap())
            .unwrap();
        assert!(availability > 0.99);
    }
}
