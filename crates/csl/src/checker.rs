//! The CSL/CSRL model checker.
//!
//! Since the compositional-lumping refactor the checker solves every query on
//! the exactly lumped *quotient* of the chain by default: the initial
//! partition groups states by their label sets (and reward rates, when a
//! reward structure is attached), so every state set a formula can denote is
//! a union of blocks and every verdict computed on the quotient equals its
//! flat counterpart. Per-state results are projected back to the original
//! states with [`LumpedCtmc::expand_values`] / [`LumpedCtmc::expand_mask`].
//! [`CslChecker::flat`] opts out for comparison and debugging.

use std::cell::OnceCell;

use arcade_lumping::{lump, InitialPartition, LumpedCtmc};
use ctmc::{
    Ctmc, ExecOptions, RewardSolver, RewardStructure, SteadyStateSolver, TransientOptions,
    TransientSolver,
};

use crate::ast::{Query, StateFormula};
use crate::error::CslError;

/// The lazily computed quotient path of a checker.
#[derive(Debug, Clone)]
struct Quotient {
    lumping: LumpedCtmc,
    /// The reward structure lumped onto the quotient, when one is attached.
    rewards: Option<RewardStructure>,
}

/// Checks CSL/CSRL queries against a labelled CTMC.
///
/// Reward queries additionally need a [`RewardStructure`]; attach one with
/// [`CslChecker::with_rewards`].
#[derive(Debug, Clone)]
pub struct CslChecker<'a> {
    chain: &'a Ctmc,
    rewards: Option<&'a RewardStructure>,
    use_lumping: bool,
    exec: ExecOptions,
    /// `None` inside the cell means "lumping attempted but not profitable"
    /// (or disabled); computed on first use so construction stays free.
    quotient: OnceCell<Option<Quotient>>,
}

impl<'a> CslChecker<'a> {
    /// Creates a checker that solves queries on the exactly lumped quotient.
    pub fn new(chain: &'a Ctmc) -> Self {
        CslChecker {
            chain,
            rewards: None,
            use_lumping: true,
            exec: ExecOptions::default(),
            quotient: OnceCell::new(),
        }
    }

    /// Creates a checker that solves every query on the flat chain. Verdicts
    /// are identical to [`CslChecker::new`] (the quotient is exact); this
    /// escape hatch exists for comparison and debugging.
    pub fn flat(chain: &'a Ctmc) -> Self {
        CslChecker {
            chain,
            rewards: None,
            use_lumping: false,
            exec: ExecOptions::default(),
            quotient: OnceCell::new(),
        }
    }

    /// Attaches a reward structure for `R=?` queries.
    pub fn with_rewards(mut self, rewards: &'a RewardStructure) -> Self {
        self.rewards = Some(rewards);
        // The quotient must additionally respect the reward rates; drop any
        // partition computed without them.
        self.quotient = OnceCell::new();
        self
    }

    /// Selects the worker pool the solvers draw from (quotient and flat path
    /// alike). The sharded kernels are bit-identical to serial, so verdicts
    /// never depend on this knob.
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// The chain being checked.
    pub fn chain(&self) -> &Ctmc {
        self.chain
    }

    /// The lumped quotient queries run on, when lumping is active and
    /// actually reduces the chain.
    fn quotient(&self) -> Option<&Quotient> {
        self.quotient
            .get_or_init(|| {
                if !self.use_lumping {
                    return None;
                }
                let mut initial = InitialPartition::from_labels(self.chain);
                if let Some(rewards) = self.rewards {
                    initial.refine_by_f64(rewards.state_rewards()).ok()?;
                }
                let lumping = lump(self.chain, &initial).ok()?;
                if lumping.num_blocks() >= self.chain.num_states() {
                    return None; // nothing to gain, avoid copying the chain
                }
                let rewards = match self.rewards {
                    Some(rewards) => Some(lumping.lump_rewards(rewards).ok()?),
                    None => None,
                };
                Some(Quotient { lumping, rewards })
            })
            .as_ref()
    }

    /// Number of quotient blocks the solvers run on, when the lumped path is
    /// active (`None` when the chain is solved flat).
    pub fn quotient_blocks(&self) -> Option<usize> {
        self.quotient().map(|q| q.lumping.num_blocks())
    }

    /// Evaluates a state formula to its satisfying-state mask over the
    /// original states.
    ///
    /// On the lumped path the mask is evaluated on the quotient and projected
    /// back with [`LumpedCtmc::expand_mask`]; the result is identical because
    /// the partition respects every label.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::UnknownLabel`] if the formula references a label the
    /// chain does not carry.
    pub fn satisfying_states(&self, formula: &StateFormula) -> Result<Vec<bool>, CslError> {
        match self.quotient() {
            Some(q) => {
                let block_mask = satisfying_on(q.lumping.quotient(), formula)?;
                Ok(q.lumping.expand_mask(&block_mask))
            }
            None => satisfying_on(self.chain, formula),
        }
    }

    /// Evaluates a query to a single number (probability, expectation or rate),
    /// weighted by the chain's initial distribution where applicable.
    ///
    /// The solvers run on the lumped quotient whenever it is smaller than the
    /// chain; verdicts coincide with the flat evaluation because ordinary
    /// lumpability preserves every measure the queries can express.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::MissingRewards`] for reward queries without a reward
    /// structure, [`CslError::UnknownLabel`] for unknown labels and propagates
    /// numerics errors.
    pub fn check(&self, query: &Query) -> Result<f64, CslError> {
        match self.quotient() {
            Some(q) => check_on(q.lumping.quotient(), q.rewards.as_ref(), query, self.exec),
            None => check_on(self.chain, self.rewards, query, self.exec),
        }
    }

    /// Evaluates the probability of a path formula for every state as the
    /// starting state (rather than from the initial distribution).
    ///
    /// On the lumped path the per-block probabilities are computed on the
    /// quotient and projected back with [`LumpedCtmc::expand_values`]: states
    /// of a block start the same aggregated process, so their verdicts agree.
    ///
    /// # Errors
    ///
    /// See [`CslChecker::check`].
    pub fn check_probability_per_state(
        &self,
        path: &crate::ast::PathFormula,
    ) -> Result<Vec<f64>, CslError> {
        match self.quotient() {
            Some(q) => {
                let per_block = probability_per_state_on(q.lumping.quotient(), path, self.exec)?;
                Ok(q.lumping.expand_values(&per_block))
            }
            None => probability_per_state_on(self.chain, path, self.exec),
        }
    }
}

/// Evaluates a state formula against an arbitrary chain (flat or quotient).
fn satisfying_on(chain: &Ctmc, formula: &StateFormula) -> Result<Vec<bool>, CslError> {
    let n = chain.num_states();
    match formula {
        StateFormula::True => Ok(vec![true; n]),
        StateFormula::False => Ok(vec![false; n]),
        StateFormula::Label(name) => {
            chain
                .label(name)
                .map(<[bool]>::to_vec)
                .ok_or_else(|| CslError::UnknownLabel {
                    label: name.clone(),
                })
        }
        StateFormula::Not(inner) => Ok(satisfying_on(chain, inner)?
            .into_iter()
            .map(|b| !b)
            .collect()),
        StateFormula::And(left, right) => {
            let l = satisfying_on(chain, left)?;
            let r = satisfying_on(chain, right)?;
            Ok(l.into_iter().zip(r).map(|(a, b)| a && b).collect())
        }
        StateFormula::Or(left, right) => {
            let l = satisfying_on(chain, left)?;
            let r = satisfying_on(chain, right)?;
            Ok(l.into_iter().zip(r).map(|(a, b)| a || b).collect())
        }
    }
}

/// Transient options carrying the checker's worker pool.
fn transient_options(exec: ExecOptions) -> TransientOptions {
    TransientOptions {
        exec,
        ..TransientOptions::default()
    }
}

/// Evaluates a query against an arbitrary chain (flat or quotient).
fn check_on(
    chain: &Ctmc,
    rewards: Option<&RewardStructure>,
    query: &Query,
    exec: ExecOptions,
) -> Result<f64, CslError> {
    match query {
        Query::Probability(path) => {
            let (safe, goal, bound) = path.as_until();
            let safe_mask = satisfying_on(chain, &safe)?;
            let goal_mask = satisfying_on(chain, &goal)?;
            Ok(
                TransientSolver::with_options(chain, transient_options(exec))
                    .bounded_until(&safe_mask, &goal_mask, bound)?,
            )
        }
        Query::SteadyState(formula) => {
            let mask = satisfying_on(chain, formula)?;
            let pi = SteadyStateSolver::new(chain).exec(exec).solve()?;
            Ok(pi
                .iter()
                .zip(mask.iter())
                .filter(|(_, &m)| m)
                .map(|(p, _)| p)
                .sum())
        }
        Query::InstantaneousReward { time } => {
            let rewards = rewards.ok_or(CslError::MissingRewards)?;
            Ok(RewardSolver::new(chain, rewards)?
                .with_options(transient_options(exec))
                .instantaneous_at(*time)?)
        }
        Query::CumulativeReward { time } => {
            let rewards = rewards.ok_or(CslError::MissingRewards)?;
            Ok(RewardSolver::new(chain, rewards)?
                .with_options(transient_options(exec))
                .accumulated_until(*time)?)
        }
        Query::SteadyStateReward => {
            let rewards = rewards.ok_or(CslError::MissingRewards)?;
            Ok(RewardSolver::new(chain, rewards)?
                .with_options(transient_options(exec))
                .long_run_rate()?)
        }
    }
}

/// Per-start-state probability of a path formula on an arbitrary chain.
fn probability_per_state_on(
    chain: &Ctmc,
    path: &crate::ast::PathFormula,
    exec: ExecOptions,
) -> Result<Vec<f64>, CslError> {
    let (safe, goal, bound) = path.as_until();
    let safe_mask = satisfying_on(chain, &safe)?;
    let goal_mask = satisfying_on(chain, &goal)?;
    Ok(
        TransientSolver::with_options(chain, transient_options(exec))
            .bounded_until_per_state(&safe_mask, &goal_mask, bound)?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PathFormula;
    use crate::parser::parse_query;
    use ctmc::CtmcBuilder;

    /// Repairable component: up (0), down (1).
    fn repairable(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, lambda).unwrap();
        b.add_transition(1, 0, mu).unwrap();
        b.add_label("up", &[0]).unwrap();
        b.add_label("down", &[1]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn state_formula_evaluation() {
        let chain = repairable(1.0, 2.0);
        let checker = CslChecker::new(&chain);
        assert_eq!(
            checker.satisfying_states(&StateFormula::True).unwrap(),
            vec![true, true]
        );
        assert_eq!(
            checker.satisfying_states(&StateFormula::False).unwrap(),
            vec![false, false]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("down"))
                .unwrap(),
            vec![false, true]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("down").not())
                .unwrap(),
            vec![true, false]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("up").and(StateFormula::label("down")))
                .unwrap(),
            vec![false, false]
        );
        assert_eq!(
            checker
                .satisfying_states(&StateFormula::label("up").or(StateFormula::label("down")))
                .unwrap(),
            vec![true, true]
        );
        assert!(matches!(
            checker.satisfying_states(&StateFormula::label("ghost")),
            Err(CslError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn steady_state_query_matches_closed_form() {
        let chain = repairable(0.002, 0.2);
        let checker = CslChecker::new(&chain);
        let q = parse_query("S=? [ \"down\" ]").unwrap();
        let expected = 0.002 / 0.202;
        assert!((checker.check(&q).unwrap() - expected).abs() < 1e-9);
        let q = parse_query("S=? [ !\"down\" ]").unwrap();
        assert!((checker.check(&q).unwrap() - (1.0 - expected)).abs() < 1e-9);
    }

    #[test]
    fn bounded_until_matches_closed_form() {
        let chain = repairable(0.01, 1.0);
        let checker = CslChecker::new(&chain);
        let q = parse_query("P=? [ true U<=100 \"down\" ]").unwrap();
        // First passage to down from up is exponential with rate lambda.
        let expected = 1.0 - (-0.01f64 * 100.0).exp();
        assert!((checker.check(&q).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn reward_queries_require_rewards() {
        let chain = repairable(1.0, 1.0);
        let checker = CslChecker::new(&chain);
        assert!(matches!(
            checker.check(&parse_query("R=? [ I=1 ]").unwrap()),
            Err(CslError::MissingRewards)
        ));
        let rewards = RewardStructure::new("cost", vec![0.0, 3.0]).unwrap();
        let checker = checker.with_rewards(&rewards);
        let inst = checker
            .check(&parse_query("R=? [ I=1000 ]").unwrap())
            .unwrap();
        assert!((inst - 1.5).abs() < 1e-6);
        let rate = checker.check(&parse_query("R=? [ S ]").unwrap()).unwrap();
        assert!((rate - 1.5).abs() < 1e-8);
        let cumulative = checker
            .check(&parse_query("R=? [ C<=2 ]").unwrap())
            .unwrap();
        assert!(cumulative > 0.0 && cumulative < 6.0);
    }

    #[test]
    fn per_state_probabilities() {
        let chain = repairable(0.5, 2.0);
        let checker = CslChecker::new(&chain);
        let path = PathFormula::BoundedEventually {
            goal: StateFormula::label("down"),
            bound: 1.0,
        };
        let per_state = checker.check_probability_per_state(&path).unwrap();
        assert_eq!(per_state.len(), 2);
        assert_eq!(per_state[1], 1.0);
        assert!(per_state[0] < 1.0 && per_state[0] > 0.0);
    }

    /// Two identical, independently repaired components: bit i of the state
    /// index = component i failed. The two single-failure states are
    /// behaviourally equivalent, so the checker lumps 4 states into 3 blocks.
    fn two_identical_components(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(4);
        for (state, bit) in [(0b00, 0b01), (0b00, 0b10), (0b01, 0b10), (0b10, 0b01)] {
            b.add_transition(state, state | bit, lambda).unwrap();
            b.add_transition(state | bit, state, mu).unwrap();
        }
        b.set_initial_state(0).unwrap();
        b.add_label_mask("all_up", vec![true, false, false, false])
            .unwrap();
        b.add_label_mask("all_down", vec![false, false, false, true])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn quotient_and_flat_verdicts_are_identical() {
        let chain = two_identical_components(0.01, 0.5);
        let rewards = RewardStructure::new("cost", vec![0.0, 3.0, 3.0, 6.0]).unwrap();
        let lumped = CslChecker::new(&chain).with_rewards(&rewards);
        let flat = CslChecker::flat(&chain).with_rewards(&rewards);

        // The lumped path is actually active (3 blocks for 4 states); the flat
        // path never lumps.
        assert_eq!(lumped.quotient_blocks(), Some(3));
        assert_eq!(flat.quotient_blocks(), None);

        for query in [
            "P=? [ true U<=100 \"all_down\" ]",
            "P=? [ !\"all_down\" U<=50 \"all_up\" ]",
            "S=? [ \"all_up\" ]",
            "S=? [ !\"all_up\" ]",
            "R=? [ I=10 ]",
            "R=? [ C<=10 ]",
            "R=? [ S ]",
        ] {
            let q = parse_query(query).unwrap();
            let a = lumped.check(&q).unwrap();
            let b = flat.check(&q).unwrap();
            assert!((a - b).abs() <= 1e-9, "{query}: quotient {a} vs flat {b}");
        }

        // Per-state verdicts expand back to the original states: symmetric
        // states receive identical probabilities matching the flat solution.
        let path = PathFormula::BoundedEventually {
            goal: StateFormula::label("all_down"),
            bound: 5.0,
        };
        let per_state_lumped = lumped.check_probability_per_state(&path).unwrap();
        let per_state_flat = flat.check_probability_per_state(&path).unwrap();
        assert_eq!(per_state_lumped.len(), 4);
        assert_eq!(per_state_lumped[0b01], per_state_lumped[0b10]);
        for (s, (a, b)) in per_state_lumped
            .iter()
            .zip(per_state_flat.iter())
            .enumerate()
        {
            assert!((a - b).abs() <= 1e-9, "state {s}: {a} vs {b}");
        }

        // Satisfying-state masks project back through the quotient unchanged.
        let formula = StateFormula::label("all_up").or(StateFormula::label("all_down"));
        assert_eq!(
            lumped.satisfying_states(&formula).unwrap(),
            flat.satisfying_states(&formula).unwrap()
        );
    }

    #[test]
    fn unknown_labels_error_on_the_quotient_path_too() {
        let chain = two_identical_components(0.01, 0.5);
        let checker = CslChecker::new(&chain);
        assert!(checker.quotient_blocks().is_some());
        assert!(matches!(
            checker.satisfying_states(&StateFormula::label("ghost")),
            Err(CslError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn paper_style_queries_parse_and_check() {
        // The measures of Section 3 of the paper, expressed as CSL text.
        let chain = repairable(0.002, 1.0);
        let checker = CslChecker::new(&chain);
        let unreliability = checker
            .check(&parse_query("P=? [ true U<=1000 \"down\" ]").unwrap())
            .unwrap();
        let reliability = 1.0 - unreliability;
        assert!(reliability > 0.0 && reliability < 1.0);
        let availability = checker
            .check(&parse_query("S=? [ !\"down\" ]").unwrap())
            .unwrap();
        assert!(availability > 0.99);
    }
}
