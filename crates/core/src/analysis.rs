//! High-level analysis driver: evaluates the paper's measures on a compiled model.

use ctmc::{ExecOptions, RewardSolver, SteadyStateSolver, TransientOptions, TransientSolver};
use serde::{Deserialize, Serialize};

use crate::composer::{CompiledModel, ComposerOptions, StateSpaceStats};
use crate::disaster::Disaster;
use crate::error::ArcadeError;
use crate::measures::{Measure, MeasureResult};
use crate::model::ArcadeModel;

/// Evaluates dependability and performability measures of an Arcade model.
///
/// The analysis compiles the model once and reuses the compiled state space for
/// every measure.
///
/// # Example
///
/// ```no_run
/// # use arcade_core::{Analysis, ArcadeModel, BasicComponent, RepairStrategy, RepairUnit};
/// # use fault_tree::{StructureNode, SystemStructure};
/// # fn main() -> Result<(), arcade_core::ArcadeError> {
/// # let structure = SystemStructure::new(StructureNode::component("pump"));
/// # let model = ArcadeModel::builder("demo", structure)
/// #     .component(BasicComponent::from_mttf_mttr("pump", 500.0, 1.0)?)
/// #     .repair_unit(RepairUnit::new("ru", RepairStrategy::Dedicated, 1)?.responsible_for(["pump"]))
/// #     .build()?;
/// let analysis = Analysis::new(&model)?;
/// let availability = analysis.steady_state_availability()?;
/// let reliability = analysis.reliability(1000.0)?;
/// println!("A = {availability:.6}, R(1000h) = {reliability:.6}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Analysis<'a> {
    model: &'a ArcadeModel,
    compiled: CompiledModel,
}

/// A single named series of `(time, value)` points, e.g. one curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Label of the series (typically the repair strategy name).
    pub label: String,
    /// The `(time, value)` points.
    pub points: Vec<(f64, f64)>,
}

impl<'a> Analysis<'a> {
    /// Compiles the model with default composition options.
    ///
    /// # Errors
    ///
    /// Propagates composition errors.
    pub fn new(model: &'a ArcadeModel) -> Result<Self, ArcadeError> {
        Ok(Analysis {
            model,
            compiled: CompiledModel::compile(model)?,
        })
    }

    /// Compiles the model with explicit composition options.
    ///
    /// # Errors
    ///
    /// Propagates composition errors.
    pub fn with_options(
        model: &'a ArcadeModel,
        options: ComposerOptions,
    ) -> Result<Self, ArcadeError> {
        Ok(Analysis {
            model,
            compiled: CompiledModel::compile_with(model, options)?,
        })
    }

    /// Wraps an already compiled model.
    pub fn from_compiled(model: &'a ArcadeModel, compiled: CompiledModel) -> Self {
        Analysis { model, compiled }
    }

    /// The model under analysis.
    pub fn model(&self) -> &ArcadeModel {
        self.model
    }

    /// The compiled state space.
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    /// Extracts the immutable solver-ready quotient artifact of this
    /// analysis' compiled model — the compile/solve split of
    /// [`crate::CompiledQuotient`]: every measure answered on the artifact
    /// is bit-identical to the corresponding method here, but the artifact
    /// carries no state-space metadata and can outlive both the model and
    /// this analysis.
    ///
    /// # Errors
    ///
    /// Propagates disaster-resolution errors.
    pub fn compiled_quotient(&self) -> Result<crate::CompiledQuotient, ArcadeError> {
        crate::CompiledQuotient::of_compiled(self.model, &self.compiled)
    }

    /// State-space size statistics (Table 1 of the paper).
    pub fn state_space_stats(&self) -> StateSpaceStats {
        self.compiled.stats()
    }

    /// The chain the solvers run on: the exactly lumped quotient when lumping
    /// is enabled (the default), the flat chain otherwise. Either way the
    /// measures agree — lumping is exact — but the quotient is smaller.
    fn solver_chain(&self) -> &ctmc::Ctmc {
        match self.compiled.lumped() {
            Some(lumped) => lumped.quotient(),
            None => self.compiled.chain(),
        }
    }

    /// The worker pool every solver draws from (the composition knob).
    fn exec(&self) -> ExecOptions {
        self.compiled.options().exec
    }

    /// Transient options carrying the analysis' worker pool.
    fn transient_options(&self) -> TransientOptions {
        TransientOptions {
            exec: self.exec(),
            ..TransientOptions::default()
        }
    }

    /// A transient solver on the given chain, with this analysis' worker pool.
    fn transient_solver<'c>(&self, chain: &'c ctmc::Ctmc) -> TransientSolver<'c> {
        TransientSolver::with_options(chain, self.transient_options())
    }

    /// The operational mask matching [`Analysis::solver_chain`].
    fn solver_operational_mask(&self) -> &[bool] {
        match self.compiled.lumped() {
            Some(lumped) => lumped.operational_mask(),
            None => self.compiled.operational_mask(),
        }
    }

    /// The down mask matching [`Analysis::solver_chain`].
    fn solver_down_mask(&self) -> Vec<bool> {
        match self.compiled.lumped() {
            Some(lumped) => lumped.down_mask(),
            None => self.compiled.down_mask(),
        }
    }

    /// The service-level mask matching [`Analysis::solver_chain`].
    fn solver_service_at_least_mask(&self, threshold: f64) -> Vec<bool> {
        match self.compiled.lumped() {
            Some(lumped) => lumped.service_at_least_mask(threshold),
            None => self.compiled.service_at_least_mask(threshold),
        }
    }

    /// The cost rewards matching [`Analysis::solver_chain`].
    fn solver_cost_rewards(&self) -> &ctmc::RewardStructure {
        match self.compiled.lumped() {
            Some(lumped) => lumped.cost_rewards(),
            None => self.compiled.cost_rewards(),
        }
    }

    /// Long-run probability that the system is fully operational
    /// (Table 2 of the paper).
    ///
    /// # Errors
    ///
    /// Propagates steady-state solver errors.
    pub fn steady_state_availability(&self) -> Result<f64, ArcadeError> {
        let pi = SteadyStateSolver::new(self.solver_chain())
            .exec(self.exec())
            .solve()?;
        Ok(pi
            .iter()
            .zip(self.solver_operational_mask().iter())
            .filter(|(_, &op)| op)
            .map(|(p, _)| p)
            .sum())
    }

    /// Probability that the system is fully operational at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates transient solver errors.
    pub fn point_availability(&self, t: f64) -> Result<f64, ArcadeError> {
        let pi = self
            .transient_solver(self.solver_chain())
            .probabilities_at(t)?;
        Ok(pi
            .iter()
            .zip(self.solver_operational_mask().iter())
            .filter(|(_, &op)| op)
            .map(|(p, _)| p)
            .sum())
    }

    /// Reliability: probability that the system has *never* left the fully
    /// operational states within the mission time `t`.
    ///
    /// Because only the first entry into a down state matters, repairs do not
    /// influence this measure and all repair strategies give the same value, as
    /// noted in the paper.
    ///
    /// # Errors
    ///
    /// Propagates transient solver errors.
    pub fn reliability(&self, t: f64) -> Result<f64, ArcadeError> {
        let down = self.solver_down_mask();
        let safe = vec![true; down.len()];
        let unreliability = self
            .transient_solver(self.solver_chain())
            .bounded_until(&safe, &down, t)?;
        Ok(1.0 - unreliability)
    }

    /// Reliability at several mission times, batched over a single
    /// uniformisation pass (the values equal per-point [`Analysis::reliability`]
    /// calls exactly).
    ///
    /// # Errors
    ///
    /// Propagates transient solver errors.
    pub fn reliability_curve(&self, times: &[f64]) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let down = self.solver_down_mask();
        let safe = vec![true; down.len()];
        let unreliabilities = self
            .transient_solver(self.solver_chain())
            .bounded_until_many(&safe, &down, times)?;
        Ok(times
            .iter()
            .zip(unreliabilities)
            .map(|(&t, u)| (t, 1.0 - u))
            .collect())
    }

    /// Survivability: probability of reaching a state with service level at
    /// least `service_level` within `t` hours after `disaster` (GOOD model).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown disasters or numerics failures.
    pub fn survivability(
        &self,
        disaster: &Disaster,
        service_level: f64,
        t: f64,
    ) -> Result<f64, ArcadeError> {
        if !(0.0..=1.0).contains(&service_level) {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("service level must be in [0, 1], got {service_level}"),
            });
        }
        let chain = self.solver_chain_after_disaster(disaster)?;
        let goal = self.solver_service_at_least_mask(service_level);
        let safe = vec![true; goal.len()];
        Ok(self
            .transient_solver(&chain)
            .bounded_until(&safe, &goal, t)?)
    }

    /// Survivability at several recovery deadlines (one curve of Figs. 4, 5,
    /// 8, 9), batched over a single uniformisation pass: the whole curve
    /// costs one Fox–Glynn window at the largest deadline instead of one per
    /// point, with values equal to per-point [`Analysis::survivability`]
    /// calls exactly.
    ///
    /// # Errors
    ///
    /// See [`Analysis::survivability`].
    pub fn survivability_curve(
        &self,
        disaster: &Disaster,
        service_level: f64,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        if !(0.0..=1.0).contains(&service_level) {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("service level must be in [0, 1], got {service_level}"),
            });
        }
        let chain = self.solver_chain_after_disaster(disaster)?;
        let goal = self.solver_service_at_least_mask(service_level);
        let safe = vec![true; goal.len()];
        let values = self
            .transient_solver(&chain)
            .bounded_until_many(&safe, &goal, times)?;
        Ok(times.iter().copied().zip(values).collect())
    }

    /// Expected instantaneous cost rate at the given times (Figs. 6 and 10),
    /// optionally starting right after a disaster.
    ///
    /// # Errors
    ///
    /// Propagates numerics errors and unknown-disaster errors.
    pub fn instantaneous_cost_curve(
        &self,
        disaster: Option<&Disaster>,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let chain = self.chain_for(disaster)?;
        let solver = RewardSolver::new(&chain, self.solver_cost_rewards())?
            .with_options(self.transient_options());
        let values = solver.instantaneous_series(times)?;
        Ok(times.iter().copied().zip(values).collect())
    }

    /// Expected accumulated cost up to the given time bounds (Figs. 7 and 11),
    /// optionally starting right after a disaster.
    ///
    /// # Errors
    ///
    /// Propagates numerics errors and unknown-disaster errors.
    pub fn accumulated_cost_curve(
        &self,
        disaster: Option<&Disaster>,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let chain = self.chain_for(disaster)?;
        let solver = RewardSolver::new(&chain, self.solver_cost_rewards())?
            .with_options(self.transient_options());
        let values = solver.accumulated_series(times)?;
        Ok(times.iter().copied().zip(values).collect())
    }

    /// Long-run expected cost rate.
    ///
    /// # Errors
    ///
    /// Propagates numerics errors.
    pub fn long_run_cost_rate(&self) -> Result<f64, ArcadeError> {
        let solver = RewardSolver::new(self.solver_chain(), self.solver_cost_rewards())?
            .with_options(self.transient_options());
        Ok(solver.long_run_rate()?)
    }

    /// The attainable service levels of the model's service tree (boundaries of
    /// the paper's service intervals).
    pub fn attainable_service_levels(&self) -> Vec<f64> {
        self.model.service_tree().attainable_levels()
    }

    /// Evaluates a declarative [`Measure`].
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::UnsupportedMeasure`] for measures referencing
    /// unknown disasters and propagates numerics errors otherwise.
    pub fn evaluate(&self, measure: &Measure) -> Result<MeasureResult, ArcadeError> {
        match measure {
            Measure::SteadyStateAvailability => {
                self.steady_state_availability().map(MeasureResult::Scalar)
            }
            Measure::PointAvailability { time } => {
                self.point_availability(*time).map(MeasureResult::Scalar)
            }
            Measure::Reliability { time } => self.reliability(*time).map(MeasureResult::Scalar),
            Measure::ReliabilityCurve { times } => {
                self.reliability_curve(times).map(MeasureResult::Curve)
            }
            Measure::Survivability {
                disaster,
                service_level,
                time,
            } => {
                let disaster = self.lookup_disaster(disaster)?;
                self.survivability(disaster, *service_level, *time)
                    .map(MeasureResult::Scalar)
            }
            Measure::SurvivabilityCurve {
                disaster,
                service_level,
                times,
            } => {
                let disaster = self.lookup_disaster(disaster)?;
                self.survivability_curve(disaster, *service_level, times)
                    .map(MeasureResult::Curve)
            }
            Measure::InstantaneousCost { disaster, times } => {
                let disaster = self.lookup_optional_disaster(disaster.as_deref())?;
                self.instantaneous_cost_curve(disaster, times)
                    .map(MeasureResult::Curve)
            }
            Measure::AccumulatedCost { disaster, times } => {
                let disaster = self.lookup_optional_disaster(disaster.as_deref())?;
                self.accumulated_cost_curve(disaster, times)
                    .map(MeasureResult::Curve)
            }
            Measure::LongRunCostRate => self.long_run_cost_rate().map(MeasureResult::Scalar),
        }
    }

    fn chain_for(&self, disaster: Option<&Disaster>) -> Result<ctmc::Ctmc, ArcadeError> {
        match disaster {
            Some(d) => self.solver_chain_after_disaster(d),
            None => Ok(self.solver_chain().clone()),
        }
    }

    /// The solver chain restarted in the state (or block) reached right after
    /// `disaster` — the GOOD construction, on the quotient when available.
    ///
    /// Ordinary lumpability guarantees the aggregated process started from
    /// any single state of a block is Markov with the quotient rates, so
    /// starting the quotient in the disaster state's block is exact.
    fn solver_chain_after_disaster(&self, disaster: &Disaster) -> Result<ctmc::Ctmc, ArcadeError> {
        match self.compiled.lumped() {
            Some(lumped) => {
                let index = self.compiled.disaster_state_index(disaster)?;
                let block = lumped.lumping().block_of(index);
                Ok(lumped.quotient().with_initial_state(block)?)
            }
            None => self.compiled.chain_after_disaster(disaster),
        }
    }

    fn lookup_disaster(&self, name: &str) -> Result<&Disaster, ArcadeError> {
        self.model
            .disaster(name)
            .ok_or_else(|| ArcadeError::UnsupportedMeasure {
                reason: format!("unknown disaster `{name}`"),
            })
    }

    fn lookup_optional_disaster(
        &self,
        name: Option<&str>,
    ) -> Result<Option<&Disaster>, ArcadeError> {
        match name {
            None => Ok(None),
            Some(n) => self.lookup_disaster(n).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::BasicComponent;
    use crate::repair::{RepairStrategy, RepairUnit};
    use fault_tree::{StructureNode, SystemStructure};

    /// A single repairable pump: closed forms exist for every measure.
    fn single_pump_model() -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::component("pump"));
        ArcadeModel::builder("pump", structure)
            .component(
                BasicComponent::from_mttf_mttr("pump", 500.0, 1.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::Dedicated, 1)
                    .unwrap()
                    .responsible_for(["pump"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("pump-down", ["pump"]).unwrap())
            .build()
            .unwrap()
    }

    /// Two redundant components sharing one FCFS crew.
    fn redundant_pair_model(strategy: RepairStrategy, crews: usize) -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::redundant(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]));
        ArcadeModel::builder("pair", structure)
            .component(
                BasicComponent::from_mttf_mttr("a", 100.0, 1.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .component(
                BasicComponent::from_mttf_mttr("b", 50.0, 2.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", strategy, crews)
                    .unwrap()
                    .responsible_for(["a", "b"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("both", ["a", "b"]).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn single_pump_availability_matches_closed_form() {
        let model = single_pump_model();
        let analysis = Analysis::new(&model).unwrap();
        let expected = 500.0 / 501.0;
        assert!((analysis.steady_state_availability().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn single_pump_reliability_is_exponential() {
        let model = single_pump_model();
        let analysis = Analysis::new(&model).unwrap();
        for &t in &[10.0, 100.0, 500.0] {
            let expected = (-t / 500.0f64).exp();
            assert!(
                (analysis.reliability(t).unwrap() - expected).abs() < 1e-9,
                "t={t}"
            );
        }
        let curve = analysis.reliability_curve(&[0.0, 100.0]).unwrap();
        assert!((curve[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_pump_point_availability_has_closed_form() {
        let model = single_pump_model();
        let analysis = Analysis::new(&model).unwrap();
        let lambda = 1.0 / 500.0;
        let mu = 1.0f64;
        for &t in &[0.5, 2.0, 20.0] {
            let expected = mu / (lambda + mu) + lambda / (lambda + mu) * (-(lambda + mu) * t).exp();
            assert!((analysis.point_availability(t).unwrap() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn single_pump_survivability_is_repair_cdf() {
        let model = single_pump_model();
        let analysis = Analysis::new(&model).unwrap();
        let disaster = model.disaster("pump-down").unwrap();
        for &t in &[0.5, 1.0, 3.0] {
            // Recovery to full service requires completing one repair (rate 1).
            let expected = 1.0 - f64::exp(-t);
            let got = analysis.survivability(disaster, 1.0, t).unwrap();
            assert!((got - expected).abs() < 1e-6, "t={t}: {got} vs {expected}");
        }
        // Service level 0 is satisfied immediately.
        assert!((analysis.survivability(disaster, 0.0, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!(analysis.survivability(disaster, 2.0, 1.0).is_err());
    }

    #[test]
    fn single_pump_costs_after_disaster() {
        let model = single_pump_model();
        let analysis = Analysis::new(&model).unwrap();
        let disaster = model.disaster("pump-down").unwrap();
        // At t=0 the pump is failed and the crew busy: cost rate = 3.
        let inst = analysis
            .instantaneous_cost_curve(Some(disaster), &[0.0, 10.0])
            .unwrap();
        assert!((inst[0].1 - 3.0).abs() < 1e-9);
        // Long after the disaster the cost rate approaches the steady state:
        // idle crew (1) most of the time plus occasional failures.
        let steady = analysis.long_run_cost_rate().unwrap();
        assert!((inst[1].1 - steady).abs() < 1e-3);
        // Accumulated cost is increasing and starts at zero.
        let acc = analysis
            .accumulated_cost_curve(Some(disaster), &[0.0, 1.0, 5.0])
            .unwrap();
        assert_eq!(acc[0].1, 0.0);
        assert!(acc[1].1 < acc[2].1);
    }

    #[test]
    fn redundant_pair_availability_improves_with_more_crews() {
        let one_crew = redundant_pair_model(RepairStrategy::FirstComeFirstServe, 1);
        let two_crews = redundant_pair_model(RepairStrategy::FirstComeFirstServe, 2);
        let a1 = Analysis::new(&one_crew)
            .unwrap()
            .steady_state_availability()
            .unwrap();
        let a2 = Analysis::new(&two_crews)
            .unwrap()
            .steady_state_availability()
            .unwrap();
        assert!(a2 > a1, "two crews {a2} should beat one crew {a1}");
    }

    #[test]
    fn dedicated_availability_matches_independent_product() {
        let model = redundant_pair_model(RepairStrategy::Dedicated, 1);
        let analysis = Analysis::new(&model).unwrap();
        let a = 100.0 / 101.0;
        let b = 50.0 / 52.0;
        assert!((analysis.steady_state_availability().unwrap() - a * b).abs() < 1e-9);
    }

    #[test]
    fn survivability_curve_is_monotone_in_time() {
        let model = redundant_pair_model(RepairStrategy::FastestRepairFirst, 1);
        let analysis = Analysis::new(&model).unwrap();
        let disaster = model.disaster("both").unwrap();
        let times: Vec<f64> = (0..=10).map(|i| i as f64 * 0.5).collect();
        let curve = analysis.survivability_curve(disaster, 1.0, &times).unwrap();
        for window in curve.windows(2) {
            assert!(window[1].1 >= window[0].1 - 1e-9);
        }
        assert!(analysis
            .survivability_curve(disaster, -0.5, &times)
            .is_err());
    }

    #[test]
    fn declarative_measures_match_direct_calls() {
        let model = single_pump_model();
        let analysis = Analysis::new(&model).unwrap();

        let availability = analysis
            .evaluate(&Measure::SteadyStateAvailability)
            .unwrap();
        assert_eq!(
            availability.as_scalar(),
            Some(analysis.steady_state_availability().unwrap())
        );

        let reliability = analysis
            .evaluate(&Measure::Reliability { time: 100.0 })
            .unwrap();
        assert_eq!(
            reliability.as_scalar(),
            Some(analysis.reliability(100.0).unwrap())
        );

        let curve = analysis
            .evaluate(&Measure::ReliabilityCurve {
                times: vec![1.0, 2.0],
            })
            .unwrap();
        assert_eq!(curve.as_curve().unwrap().len(), 2);

        let surv = analysis
            .evaluate(&Measure::Survivability {
                disaster: "pump-down".into(),
                service_level: 1.0,
                time: 2.0,
            })
            .unwrap();
        assert!(surv.as_scalar().unwrap() > 0.5);

        let surv_curve = analysis
            .evaluate(&Measure::SurvivabilityCurve {
                disaster: "pump-down".into(),
                service_level: 1.0,
                times: vec![1.0, 2.0],
            })
            .unwrap();
        assert_eq!(surv_curve.as_curve().unwrap().len(), 2);

        let inst = analysis
            .evaluate(&Measure::InstantaneousCost {
                disaster: Some("pump-down".into()),
                times: vec![0.0],
            })
            .unwrap();
        assert!((inst.as_curve().unwrap()[0].1 - 3.0).abs() < 1e-9);

        let acc = analysis
            .evaluate(&Measure::AccumulatedCost {
                disaster: None,
                times: vec![1.0],
            })
            .unwrap();
        assert!(acc.as_curve().unwrap()[0].1 > 0.0);

        let point = analysis
            .evaluate(&Measure::PointAvailability { time: 1.0 })
            .unwrap();
        assert!(point.as_scalar().unwrap() > 0.9);

        let rate = analysis.evaluate(&Measure::LongRunCostRate).unwrap();
        assert!(rate.as_scalar().unwrap() > 0.0);

        // Unknown disasters are reported as unsupported measures.
        let unknown = analysis.evaluate(&Measure::Survivability {
            disaster: "nope".into(),
            service_level: 1.0,
            time: 1.0,
        });
        assert!(matches!(
            unknown,
            Err(ArcadeError::UnsupportedMeasure { .. })
        ));
    }

    #[test]
    fn attainable_levels_come_from_the_service_tree() {
        let model = redundant_pair_model(RepairStrategy::Dedicated, 1);
        let analysis = Analysis::new(&model).unwrap();
        let levels = analysis.attainable_service_levels();
        assert_eq!(levels.len(), 3); // 0, 1/2, 1
    }

    #[test]
    fn strategies_do_not_change_reliability() {
        let fcfs = redundant_pair_model(RepairStrategy::FirstComeFirstServe, 1);
        let ded = redundant_pair_model(RepairStrategy::Dedicated, 1);
        let r1 = Analysis::new(&fcfs).unwrap().reliability(25.0).unwrap();
        let r2 = Analysis::new(&ded).unwrap().reliability(25.0).unwrap();
        assert!((r1 - r2).abs() < 1e-9);
    }
}
