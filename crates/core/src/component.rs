//! Basic components: the failure/repair building blocks of an Arcade model.

use serde::{Deserialize, Serialize};

use crate::error::ArcadeError;

/// A basic component of an Arcade architectural model.
///
/// A basic component alternates between an operational and a failed mode with
/// exponentially distributed times to failure and to repair. Costs accrue at a
/// constant rate in each mode; the water-treatment paper charges 3 per hour
/// while a component is failed and nothing while it is operational.
///
/// # Example
///
/// ```
/// # use arcade_core::BasicComponent;
/// # fn main() -> Result<(), arcade_core::ArcadeError> {
/// let pump = BasicComponent::from_mttf_mttr("pump-1", 500.0, 1.0)?
///     .with_failed_cost(3.0);
/// assert!((pump.failure_rate() - 1.0 / 500.0).abs() < 1e-12);
/// assert!((pump.steady_state_availability() - 500.0 / 501.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicComponent {
    name: String,
    failure_rate: f64,
    repair_rate: f64,
    operational_cost_per_hour: f64,
    failed_cost_per_hour: f64,
    /// Dormancy factor in `[0, 1]`: a dormant (spare) component fails at
    /// `dormancy_factor * failure_rate`. Zero models a cold spare, one a hot spare.
    dormancy_factor: f64,
    initially_failed: bool,
}

impl BasicComponent {
    /// Creates a component from failure and repair *rates* (per hour).
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidParameter`] if either rate is not strictly
    /// positive and finite, or if the name is empty.
    pub fn from_rates(
        name: impl Into<String>,
        failure_rate: f64,
        repair_rate: f64,
    ) -> Result<Self, ArcadeError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ArcadeError::InvalidParameter {
                reason: "component name must not be empty".to_string(),
            });
        }
        for (label, value) in [("failure rate", failure_rate), ("repair rate", repair_rate)] {
            if value <= 0.0 || !value.is_finite() {
                return Err(ArcadeError::InvalidParameter {
                    reason: format!("{label} of component `{name}` must be positive, got {value}"),
                });
            }
        }
        Ok(BasicComponent {
            name,
            failure_rate,
            repair_rate,
            operational_cost_per_hour: 0.0,
            failed_cost_per_hour: 0.0,
            dormancy_factor: 1.0,
            initially_failed: false,
        })
    }

    /// Creates a component from its mean time to failure and mean time to
    /// repair (in hours), as given in the paper's Fig. 2.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidParameter`] if either mean time is not
    /// strictly positive and finite.
    pub fn from_mttf_mttr(
        name: impl Into<String>,
        mttf: f64,
        mttr: f64,
    ) -> Result<Self, ArcadeError> {
        if mttf <= 0.0 || !mttf.is_finite() || mttr <= 0.0 || !mttr.is_finite() {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("MTTF/MTTR must be positive, got {mttf}/{mttr}"),
            });
        }
        Self::from_rates(name, 1.0 / mttf, 1.0 / mttr)
    }

    /// Sets the cost per hour accrued while the component is failed.
    pub fn with_failed_cost(mut self, cost_per_hour: f64) -> Self {
        self.failed_cost_per_hour = cost_per_hour;
        self
    }

    /// Sets the cost per hour accrued while the component is operational.
    pub fn with_operational_cost(mut self, cost_per_hour: f64) -> Self {
        self.operational_cost_per_hour = cost_per_hour;
        self
    }

    /// Sets the dormancy factor applied to the failure rate while the component
    /// is a deactivated spare (0 = cold spare, 1 = hot spare).
    pub fn with_dormancy_factor(mut self, factor: f64) -> Self {
        self.dormancy_factor = factor.clamp(0.0, 1.0);
        self
    }

    /// Marks the component as failed in the initial state of the model.
    pub fn initially_failed(mut self) -> Self {
        self.initially_failed = true;
        self
    }

    /// The component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Failure rate (per hour) while active.
    pub fn failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// Repair rate (per hour) while under repair.
    pub fn repair_rate(&self) -> f64 {
        self.repair_rate
    }

    /// Mean time to failure in hours.
    pub fn mttf(&self) -> f64 {
        1.0 / self.failure_rate
    }

    /// Mean time to repair in hours.
    pub fn mttr(&self) -> f64 {
        1.0 / self.repair_rate
    }

    /// Cost per hour while operational.
    pub fn operational_cost_per_hour(&self) -> f64 {
        self.operational_cost_per_hour
    }

    /// Cost per hour while failed.
    pub fn failed_cost_per_hour(&self) -> f64 {
        self.failed_cost_per_hour
    }

    /// Dormancy factor applied to the failure rate of a deactivated spare.
    pub fn dormancy_factor(&self) -> f64 {
        self.dormancy_factor
    }

    /// Whether the component starts in the failed mode.
    pub fn is_initially_failed(&self) -> bool {
        self.initially_failed
    }

    /// Steady-state availability of the component in isolation under dedicated
    /// repair: `MTTF / (MTTF + MTTR)`.
    pub fn steady_state_availability(&self) -> f64 {
        self.repair_rate / (self.failure_rate + self.repair_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rates_validates_input() {
        assert!(BasicComponent::from_rates("", 1.0, 1.0).is_err());
        assert!(BasicComponent::from_rates("c", 0.0, 1.0).is_err());
        assert!(BasicComponent::from_rates("c", 1.0, -1.0).is_err());
        assert!(BasicComponent::from_rates("c", f64::NAN, 1.0).is_err());
        assert!(BasicComponent::from_rates("c", 1.0, f64::INFINITY).is_err());
        assert!(BasicComponent::from_rates("c", 1.0, 1.0).is_ok());
    }

    #[test]
    fn from_mttf_mttr_converts_to_rates() {
        let c = BasicComponent::from_mttf_mttr("pump", 500.0, 1.0).unwrap();
        assert!((c.failure_rate() - 0.002).abs() < 1e-15);
        assert!((c.repair_rate() - 1.0).abs() < 1e-15);
        assert!((c.mttf() - 500.0).abs() < 1e-9);
        assert!((c.mttr() - 1.0).abs() < 1e-9);
        assert!(BasicComponent::from_mttf_mttr("pump", 0.0, 1.0).is_err());
        assert!(BasicComponent::from_mttf_mttr("pump", 1.0, f64::NAN).is_err());
    }

    #[test]
    fn builder_style_setters() {
        let c = BasicComponent::from_mttf_mttr("sf", 1000.0, 100.0)
            .unwrap()
            .with_failed_cost(3.0)
            .with_operational_cost(0.5)
            .with_dormancy_factor(0.25);
        assert_eq!(c.failed_cost_per_hour(), 3.0);
        assert_eq!(c.operational_cost_per_hour(), 0.5);
        assert_eq!(c.dormancy_factor(), 0.25);
        assert!(!c.is_initially_failed());
        let c = c.initially_failed();
        assert!(c.is_initially_failed());
    }

    #[test]
    fn dormancy_factor_is_clamped() {
        let c = BasicComponent::from_rates("c", 1.0, 1.0)
            .unwrap()
            .with_dormancy_factor(7.0);
        assert_eq!(c.dormancy_factor(), 1.0);
        let c = BasicComponent::from_rates("c", 1.0, 1.0)
            .unwrap()
            .with_dormancy_factor(-1.0);
        assert_eq!(c.dormancy_factor(), 0.0);
    }

    #[test]
    fn availability_formula() {
        let c = BasicComponent::from_mttf_mttr("sf", 1000.0, 100.0).unwrap();
        assert!((c.steady_state_availability() - 1000.0 / 1100.0).abs() < 1e-12);
    }
}
