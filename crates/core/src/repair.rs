//! Repair units and repair strategies.
//!
//! A repair unit is responsible for a set of components and owns one or more
//! repair crews. When a component under its responsibility fails it enters the
//! unit's queue; whenever a crew is free the unit dispatches the waiting
//! component selected by its [`RepairStrategy`]. Dispatching is
//! *non-preemptive*: a repair in progress is never interrupted, matching the
//! strategies evaluated in the DSN 2010 paper.

use serde::{Deserialize, Serialize};

use crate::component::BasicComponent;
use crate::error::ArcadeError;

/// The scheduling policy of a repair unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// One crew per component: every failed component is repaired immediately.
    /// The paper's `DED` strategy.
    Dedicated,
    /// First come, first served: the component that failed earliest is repaired
    /// first. This is also the tie-breaking rule of every other strategy.
    FirstComeFirstServe,
    /// Fastest repair first (`FRF`): the waiting component with the highest
    /// repair rate (shortest MTTR) is dispatched first; ties broken FCFS.
    FastestRepairFirst,
    /// Fastest failure first (`FFF`): the waiting component with the highest
    /// failure rate (shortest MTTF) is dispatched first; ties broken FCFS.
    FastestFailureFirst,
    /// Static priority list: components earlier in the list are dispatched
    /// first; unlisted components have the lowest priority; ties broken FCFS.
    Priority(Vec<String>),
}

impl RepairStrategy {
    /// A short identifier matching the paper's naming (`DED`, `FCFS`, `FRF`,
    /// `FFF`, `PRIO`).
    pub fn short_name(&self) -> &'static str {
        match self {
            RepairStrategy::Dedicated => "DED",
            RepairStrategy::FirstComeFirstServe => "FCFS",
            RepairStrategy::FastestRepairFirst => "FRF",
            RepairStrategy::FastestFailureFirst => "FFF",
            RepairStrategy::Priority(_) => "PRIO",
        }
    }

    /// Returns the dispatch priority of a component under this strategy; larger
    /// values are served first. FCFS gives every component the same priority so
    /// that only arrival order decides.
    pub fn priority_of(&self, component: &BasicComponent) -> f64 {
        match self {
            RepairStrategy::Dedicated => 0.0,
            RepairStrategy::FirstComeFirstServe => 0.0,
            RepairStrategy::FastestRepairFirst => component.repair_rate(),
            RepairStrategy::FastestFailureFirst => component.failure_rate(),
            RepairStrategy::Priority(order) => {
                match order.iter().position(|n| n == component.name()) {
                    Some(pos) => (order.len() - pos) as f64,
                    None => 0.0,
                }
            }
        }
    }

    /// Whether two components have equal dispatch priority (then FCFS applies).
    pub fn same_priority(&self, a: &BasicComponent, b: &BasicComponent) -> bool {
        (self.priority_of(a) - self.priority_of(b)).abs() < 1e-12
    }
}

/// A repair unit: a named set of crews responsible for a set of components.
///
/// # Example
///
/// ```
/// # use arcade_core::{RepairUnit, RepairStrategy};
/// # fn main() -> Result<(), arcade_core::ArcadeError> {
/// let unit = RepairUnit::new("line-1-ru", RepairStrategy::FastestRepairFirst, 2)?
///     .responsible_for(["pump-1", "pump-2", "reservoir"])
///     .with_idle_cost(1.0);
/// assert_eq!(unit.crews(), 2);
/// assert_eq!(unit.components().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairUnit {
    name: String,
    strategy: RepairStrategy,
    crews: usize,
    components: Vec<String>,
    idle_cost_per_hour: f64,
    busy_cost_per_hour: f64,
    #[serde(default)]
    preemptive: bool,
}

impl RepairUnit {
    /// Creates a repair unit with the given strategy and number of crews.
    ///
    /// For [`RepairStrategy::Dedicated`] the crew count is ignored during
    /// composition (every component always has a crew available), but it is
    /// still validated.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidParameter`] if the name is empty or the
    /// crew count is zero.
    pub fn new(
        name: impl Into<String>,
        strategy: RepairStrategy,
        crews: usize,
    ) -> Result<Self, ArcadeError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ArcadeError::InvalidParameter {
                reason: "repair unit name must not be empty".to_string(),
            });
        }
        if crews == 0 {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("repair unit `{name}` must have at least one crew"),
            });
        }
        Ok(RepairUnit {
            name,
            strategy,
            crews,
            components: Vec::new(),
            idle_cost_per_hour: 0.0,
            busy_cost_per_hour: 0.0,
            preemptive: false,
        })
    }

    /// Declares the components this unit is responsible for (appends).
    pub fn responsible_for<I, S>(mut self, components: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.components
            .extend(components.into_iter().map(Into::into));
        self
    }

    /// Sets the cost per hour of an idle crew (1 in the paper's cost model).
    pub fn with_idle_cost(mut self, cost_per_hour: f64) -> Self {
        self.idle_cost_per_hour = cost_per_hour;
        self
    }

    /// Sets the cost per hour of a busy crew (0 in the paper's cost model).
    pub fn with_busy_cost(mut self, cost_per_hour: f64) -> Self {
        self.busy_cost_per_hour = cost_per_hour;
        self
    }

    /// Makes the unit preemptive: the crews always work on the
    /// highest-priority failed components, interrupting lower-priority repairs
    /// when necessary (ties are broken by component definition order).
    ///
    /// The paper's strategies are non-preemptive; preemption is provided as an
    /// extension for ablation studies. Because repair times are exponential,
    /// preempt-resume and preempt-restart coincide, so the composed model is
    /// still a CTMC. A preemptive unit needs no repair queue in the state, so
    /// its state-space size is independent of the crew count.
    pub fn with_preemption(mut self) -> Self {
        self.preemptive = true;
        self
    }

    /// Whether the unit preempts running repairs for higher-priority arrivals.
    pub fn is_preemptive(&self) -> bool {
        self.preemptive
    }

    /// The unit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The repair strategy.
    pub fn strategy(&self) -> &RepairStrategy {
        &self.strategy
    }

    /// Number of repair crews.
    pub fn crews(&self) -> usize {
        self.crews
    }

    /// Effective number of crews given the number of components covered; the
    /// dedicated strategy behaves as if it had one crew per component.
    pub fn effective_crews(&self) -> usize {
        match self.strategy {
            RepairStrategy::Dedicated => self.components.len().max(1),
            _ => self.crews,
        }
    }

    /// The component names under this unit's responsibility.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Cost per hour of an idle crew.
    pub fn idle_cost_per_hour(&self) -> f64 {
        self.idle_cost_per_hour
    }

    /// Cost per hour of a busy crew.
    pub fn busy_cost_per_hour(&self) -> f64 {
        self.busy_cost_per_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn component(name: &str, mttf: f64, mttr: f64) -> BasicComponent {
        BasicComponent::from_mttf_mttr(name, mttf, mttr).unwrap()
    }

    #[test]
    fn construction_validates_input() {
        assert!(RepairUnit::new("", RepairStrategy::Dedicated, 1).is_err());
        assert!(RepairUnit::new("ru", RepairStrategy::Dedicated, 0).is_err());
        assert!(RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1).is_ok());
    }

    #[test]
    fn short_names_match_the_paper() {
        assert_eq!(RepairStrategy::Dedicated.short_name(), "DED");
        assert_eq!(RepairStrategy::FirstComeFirstServe.short_name(), "FCFS");
        assert_eq!(RepairStrategy::FastestRepairFirst.short_name(), "FRF");
        assert_eq!(RepairStrategy::FastestFailureFirst.short_name(), "FFF");
        assert_eq!(RepairStrategy::Priority(vec![]).short_name(), "PRIO");
    }

    #[test]
    fn frf_prefers_short_repairs() {
        let pump = component("pump", 500.0, 1.0);
        let sand_filter = component("sf", 1000.0, 100.0);
        let strategy = RepairStrategy::FastestRepairFirst;
        assert!(strategy.priority_of(&pump) > strategy.priority_of(&sand_filter));
    }

    #[test]
    fn fff_prefers_short_lifetimes() {
        let pump = component("pump", 500.0, 1.0);
        let reservoir = component("res", 6000.0, 12.0);
        let strategy = RepairStrategy::FastestFailureFirst;
        assert!(strategy.priority_of(&pump) > strategy.priority_of(&reservoir));
    }

    #[test]
    fn fcfs_gives_equal_priorities() {
        let a = component("a", 10.0, 1.0);
        let b = component("b", 20.0, 2.0);
        let strategy = RepairStrategy::FirstComeFirstServe;
        assert!(strategy.same_priority(&a, &b));
    }

    #[test]
    fn priority_list_orders_components() {
        let a = component("a", 10.0, 1.0);
        let b = component("b", 10.0, 1.0);
        let c = component("c", 10.0, 1.0);
        let strategy = RepairStrategy::Priority(vec!["b".into(), "a".into()]);
        assert!(strategy.priority_of(&b) > strategy.priority_of(&a));
        assert!(strategy.priority_of(&a) > strategy.priority_of(&c));
        assert_eq!(strategy.priority_of(&c), 0.0);
    }

    #[test]
    fn same_priority_for_identical_rates() {
        let p1 = component("p1", 500.0, 1.0);
        let p2 = component("p2", 500.0, 1.0);
        for strategy in [
            RepairStrategy::FastestRepairFirst,
            RepairStrategy::FastestFailureFirst,
            RepairStrategy::FirstComeFirstServe,
        ] {
            assert!(strategy.same_priority(&p1, &p2), "{strategy:?}");
        }
    }

    #[test]
    fn effective_crews_for_dedicated_matches_component_count() {
        let unit = RepairUnit::new("ru", RepairStrategy::Dedicated, 1)
            .unwrap()
            .responsible_for(["a", "b", "c"]);
        assert_eq!(unit.effective_crews(), 3);
        let unit = RepairUnit::new("ru", RepairStrategy::FastestRepairFirst, 2)
            .unwrap()
            .responsible_for(["a", "b", "c"]);
        assert_eq!(unit.effective_crews(), 2);
    }

    #[test]
    fn cost_setters() {
        let unit = RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
            .unwrap()
            .with_idle_cost(1.0)
            .with_busy_cost(0.5);
        assert_eq!(unit.idle_cost_per_hour(), 1.0);
        assert_eq!(unit.busy_cost_per_hour(), 0.5);
    }

    #[test]
    fn preemption_flag() {
        let unit = RepairUnit::new("ru", RepairStrategy::FastestRepairFirst, 2).unwrap();
        assert!(!unit.is_preemptive());
        let unit = unit.with_preemption();
        assert!(unit.is_preemptive());
    }
}
