//! The Arcade architectural model and its builder.

use std::collections::{BTreeMap, BTreeSet};

use fault_tree::{FaultTree, ServiceTree, SystemStructure};
use serde::{Deserialize, Serialize};

use crate::component::BasicComponent;
use crate::disaster::Disaster;
use crate::error::ArcadeError;
use crate::repair::{RepairStrategy, RepairUnit};
use crate::spare::SpareManagementUnit;

/// A complete Arcade architectural dependability model.
///
/// The model bundles the basic components, the repair units responsible for
/// them, optional spare management units, the reliability block structure from
/// which fault and service trees are derived, and named disasters used by
/// survivability measures.
///
/// Models are constructed through [`ArcadeModelBuilder`], which validates all
/// cross-references when [`ArcadeModelBuilder::build`] is called.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArcadeModel {
    name: String,
    components: Vec<BasicComponent>,
    repair_units: Vec<RepairUnit>,
    spare_units: Vec<SpareManagementUnit>,
    structure: SystemStructure,
    disasters: Vec<Disaster>,
    #[serde(default)]
    symmetry_guards: Vec<Vec<String>>,
}

impl ArcadeModel {
    /// Starts building a model with the given name and system structure.
    pub fn builder(name: impl Into<String>, structure: SystemStructure) -> ArcadeModelBuilder {
        ArcadeModelBuilder {
            name: name.into(),
            components: Vec::new(),
            repair_units: Vec::new(),
            spare_units: Vec::new(),
            structure,
            disasters: Vec::new(),
            symmetry_guards: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basic components, in definition order.
    pub fn components(&self) -> &[BasicComponent] {
        &self.components
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&BasicComponent> {
        self.components.iter().find(|c| c.name() == name)
    }

    /// Index of a component in definition order.
    pub fn component_index(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name() == name)
    }

    /// The repair units.
    pub fn repair_units(&self) -> &[RepairUnit] {
        &self.repair_units
    }

    /// The spare management units.
    pub fn spare_units(&self) -> &[SpareManagementUnit] {
        &self.spare_units
    }

    /// The reliability block structure of the system.
    pub fn structure(&self) -> &SystemStructure {
        &self.structure
    }

    /// Fault tree for "the system is not fully operational" (used by the
    /// availability and reliability measures).
    pub fn degraded_fault_tree(&self) -> FaultTree {
        self.structure.degraded_fault_tree()
    }

    /// Fault tree for "the system delivers no service at all".
    pub fn total_failure_fault_tree(&self) -> FaultTree {
        self.structure.total_failure_fault_tree()
    }

    /// Quantitative service tree (used by survivability measures).
    pub fn service_tree(&self) -> ServiceTree {
        self.structure.service_tree()
    }

    /// The named disasters available for survivability analysis.
    pub fn disasters(&self) -> &[Disaster] {
        &self.disasters
    }

    /// Looks up a disaster by name.
    pub fn disaster(&self, name: &str) -> Option<&Disaster> {
        self.disasters.iter().find(|d| d.name() == name)
    }

    /// The repair unit responsible for a component, if any.
    pub fn repair_unit_of(&self, component: &str) -> Option<&RepairUnit> {
        self.repair_units
            .iter()
            .find(|ru| ru.components().iter().any(|c| c == component))
    }

    /// The spare management unit governing a component, if any.
    pub fn spare_unit_of(&self, component: &str) -> Option<&SpareManagementUnit> {
        self.spare_units
            .iter()
            .find(|smu| smu.all_components().any(|c| c == component))
    }

    /// The symmetry guards: component sets that every admissible symmetry
    /// permutation must map onto themselves. Guards protect observations
    /// that live *outside* the model — e.g. the per-line masks a facility
    /// evaluates on a merged group chain — from being folded away by the
    /// isomorphic-subtree reduction (see [`crate::families`]).
    pub fn symmetry_guards(&self) -> &[Vec<String>] {
        &self.symmetry_guards
    }

    /// The maximal groups of mutually interchangeable components — the
    /// per-line "sub-chains" that compositional lumping aggregates before the
    /// cross product. Every component appears in exactly one group; groups
    /// are ordered by their first member's definition order.
    pub fn component_families(&self) -> Vec<Vec<String>> {
        crate::families::detect_families(self)
            .into_iter()
            .map(|family| {
                family
                    .members
                    .iter()
                    .map(|&i| self.components[i].name().to_string())
                    .collect()
            })
            .collect()
    }

    /// Returns a copy of this model in which every repair unit uses `strategy`
    /// with `crews` crews. This is the knob turned throughout the paper's
    /// evaluation (DED, FRF-1, FRF-2, FFF-1, FFF-2).
    pub fn with_repair_strategy(
        &self,
        strategy: RepairStrategy,
        crews: usize,
    ) -> Result<ArcadeModel, ArcadeError> {
        let mut out = self.clone();
        out.repair_units = self
            .repair_units
            .iter()
            .map(|ru| {
                RepairUnit::new(ru.name(), strategy.clone(), crews).map(|new_ru| {
                    let new_ru = new_ru
                        .responsible_for(ru.components().iter().cloned())
                        .with_idle_cost(ru.idle_cost_per_hour())
                        .with_busy_cost(ru.busy_cost_per_hour());
                    if ru.is_preemptive() {
                        new_ru.with_preemption()
                    } else {
                        new_ru
                    }
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(out)
    }
}

/// Builder for [`ArcadeModel`]; validates the model when built.
#[derive(Debug, Clone)]
pub struct ArcadeModelBuilder {
    name: String,
    components: Vec<BasicComponent>,
    repair_units: Vec<RepairUnit>,
    spare_units: Vec<SpareManagementUnit>,
    structure: SystemStructure,
    disasters: Vec<Disaster>,
    symmetry_guards: Vec<Vec<String>>,
}

impl ArcadeModelBuilder {
    /// Adds a basic component.
    pub fn component(mut self, component: BasicComponent) -> Self {
        self.components.push(component);
        self
    }

    /// Adds several basic components.
    pub fn components<I>(mut self, components: I) -> Self
    where
        I: IntoIterator<Item = BasicComponent>,
    {
        self.components.extend(components);
        self
    }

    /// Adds a repair unit.
    pub fn repair_unit(mut self, unit: RepairUnit) -> Self {
        self.repair_units.push(unit);
        self
    }

    /// Adds a spare management unit.
    pub fn spare_unit(mut self, unit: SpareManagementUnit) -> Self {
        self.spare_units.push(unit);
        self
    }

    /// Adds a named disaster.
    pub fn disaster(mut self, disaster: Disaster) -> Self {
        self.disasters.push(disaster);
        self
    }

    /// Declares a symmetry guard: the given components form a set that every
    /// symmetry permutation must preserve (no member may be exchanged with a
    /// non-member). Use this when measures outside the model distinguish the
    /// guarded components — the facility layer guards each line's components
    /// of a merged group so per-line masks survive the subtree reduction.
    pub fn symmetry_guard<I, S>(mut self, components: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.symmetry_guards
            .push(components.into_iter().map(Into::into).collect());
        self
    }

    /// Validates cross-references and finalises the model.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found: duplicate component or repair-unit
    /// names, references to unknown components from repair units, spare units,
    /// disasters or the system structure, components repaired by two units, or
    /// a model without components.
    pub fn build(self) -> Result<ArcadeModel, ArcadeError> {
        if self.components.is_empty() {
            return Err(ArcadeError::InvalidParameter {
                reason: "a model needs at least one component".to_string(),
            });
        }

        // Unique component names.
        let mut names = BTreeSet::new();
        for c in &self.components {
            if !names.insert(c.name().to_string()) {
                return Err(ArcadeError::DuplicateComponent {
                    name: c.name().to_string(),
                });
            }
        }

        // Unique repair unit names and valid references; each component at most one unit.
        let mut unit_names = BTreeSet::new();
        let mut repaired_by: BTreeMap<&str, &str> = BTreeMap::new();
        for ru in &self.repair_units {
            if !unit_names.insert(ru.name().to_string()) {
                return Err(ArcadeError::DuplicateRepairUnit {
                    name: ru.name().to_string(),
                });
            }
            for c in ru.components() {
                if !names.contains(c.as_str()) {
                    return Err(ArcadeError::UnknownComponent {
                        name: c.clone(),
                        referenced_by: format!("repair unit `{}`", ru.name()),
                    });
                }
                if repaired_by.insert(c.as_str(), ru.name()).is_some() {
                    return Err(ArcadeError::ComponentRepairedTwice { name: c.clone() });
                }
            }
        }

        // Spare units reference known components and do not overlap in spares.
        let mut spare_owned: BTreeSet<&str> = BTreeSet::new();
        for smu in &self.spare_units {
            for c in smu.all_components() {
                if !names.contains(c) {
                    return Err(ArcadeError::UnknownComponent {
                        name: c.to_string(),
                        referenced_by: format!("spare unit `{}`", smu.name()),
                    });
                }
            }
            for spare in smu.spares() {
                if !spare_owned.insert(spare.as_str()) {
                    return Err(ArcadeError::InvalidSpareUnit {
                        reason: format!("spare `{spare}` is governed by more than one unit"),
                    });
                }
            }
        }

        // Disasters reference known components.
        for d in &self.disasters {
            for c in d.failed_components() {
                if !names.contains(c.as_str()) {
                    return Err(ArcadeError::UnknownComponent {
                        name: c.clone(),
                        referenced_by: format!("disaster `{}`", d.name()),
                    });
                }
            }
        }

        // The structure references known components.
        for c in self.structure.degraded_fault_tree().basic_events() {
            if !names.contains(c.as_str()) {
                return Err(ArcadeError::UnknownComponent {
                    name: c,
                    referenced_by: "system structure".to_string(),
                });
            }
        }

        // Symmetry guards reference known components.
        for guard in &self.symmetry_guards {
            for c in guard {
                if !names.contains(c.as_str()) {
                    return Err(ArcadeError::UnknownComponent {
                        name: c.clone(),
                        referenced_by: "symmetry guard".to_string(),
                    });
                }
            }
        }

        Ok(ArcadeModel {
            name: self.name,
            components: self.components,
            repair_units: self.repair_units,
            spare_units: self.spare_units,
            structure: self.structure,
            disasters: self.disasters,
            symmetry_guards: self.symmetry_guards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::StructureNode;

    fn simple_structure() -> SystemStructure {
        SystemStructure::new(StructureNode::series(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]))
    }

    fn component(name: &str) -> BasicComponent {
        BasicComponent::from_mttf_mttr(name, 100.0, 1.0).unwrap()
    }

    fn valid_builder() -> ArcadeModelBuilder {
        ArcadeModel::builder("test", simple_structure())
            .component(component("a"))
            .component(component("b"))
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a", "b"]),
            )
    }

    #[test]
    fn valid_model_builds() {
        let model = valid_builder().build().unwrap();
        assert_eq!(model.name(), "test");
        assert_eq!(model.components().len(), 2);
        assert_eq!(model.repair_units().len(), 1);
        assert!(model.component("a").is_some());
        assert_eq!(model.component_index("b"), Some(1));
        assert!(model.repair_unit_of("a").is_some());
        assert!(model.spare_unit_of("a").is_none());
        assert!(model.disaster("x").is_none());
    }

    #[test]
    fn empty_model_is_rejected() {
        let result = ArcadeModel::builder("m", simple_structure()).build();
        assert!(matches!(result, Err(ArcadeError::InvalidParameter { .. })));
    }

    #[test]
    fn duplicate_components_are_rejected() {
        let result = valid_builder().component(component("a")).build();
        assert!(matches!(
            result,
            Err(ArcadeError::DuplicateComponent { .. })
        ));
    }

    #[test]
    fn unknown_component_in_repair_unit_is_rejected() {
        let result = ArcadeModel::builder("m", simple_structure())
            .component(component("a"))
            .component(component("b"))
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::Dedicated, 1)
                    .unwrap()
                    .responsible_for(["missing"]),
            )
            .build();
        assert!(matches!(result, Err(ArcadeError::UnknownComponent { .. })));
    }

    #[test]
    fn component_in_two_repair_units_is_rejected() {
        let result = valid_builder()
            .repair_unit(
                RepairUnit::new("ru2", RepairStrategy::Dedicated, 1)
                    .unwrap()
                    .responsible_for(["a"]),
            )
            .build();
        assert!(matches!(
            result,
            Err(ArcadeError::ComponentRepairedTwice { .. })
        ));
    }

    #[test]
    fn duplicate_repair_unit_names_are_rejected() {
        let result = ArcadeModel::builder("m", simple_structure())
            .component(component("a"))
            .component(component("b"))
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::Dedicated, 1)
                    .unwrap()
                    .responsible_for(["a"]),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::Dedicated, 1)
                    .unwrap()
                    .responsible_for(["b"]),
            )
            .build();
        assert!(matches!(
            result,
            Err(ArcadeError::DuplicateRepairUnit { .. })
        ));
    }

    #[test]
    fn unknown_component_in_structure_is_rejected() {
        let structure = SystemStructure::new(StructureNode::component("ghost"));
        let result = ArcadeModel::builder("m", structure)
            .component(component("a"))
            .build();
        assert!(matches!(result, Err(ArcadeError::UnknownComponent { .. })));
    }

    #[test]
    fn unknown_component_in_disaster_is_rejected() {
        let result = valid_builder()
            .disaster(Disaster::new("d", ["ghost"]).unwrap())
            .build();
        assert!(matches!(result, Err(ArcadeError::UnknownComponent { .. })));
    }

    #[test]
    fn unknown_component_in_spare_unit_is_rejected() {
        let result = valid_builder()
            .spare_unit(SpareManagementUnit::new("smu", ["a"], ["ghost"]).unwrap())
            .build();
        assert!(matches!(result, Err(ArcadeError::UnknownComponent { .. })));
    }

    #[test]
    fn spare_owned_by_two_units_is_rejected() {
        let result = ArcadeModel::builder("m", simple_structure())
            .component(component("a"))
            .component(component("b"))
            .component(component("s"))
            .spare_unit(SpareManagementUnit::new("smu1", ["a"], ["s"]).unwrap())
            .spare_unit(SpareManagementUnit::new("smu2", ["b"], ["s"]).unwrap())
            .build();
        assert!(matches!(result, Err(ArcadeError::InvalidSpareUnit { .. })));
    }

    #[test]
    fn strategy_swap_preserves_everything_else() {
        let model = valid_builder().build().unwrap();
        let swapped = model
            .with_repair_strategy(RepairStrategy::FastestRepairFirst, 2)
            .unwrap();
        assert_eq!(swapped.repair_units()[0].crews(), 2);
        assert_eq!(swapped.repair_units()[0].strategy().short_name(), "FRF");
        assert_eq!(
            swapped.repair_units()[0].components(),
            model.repair_units()[0].components()
        );
        assert_eq!(swapped.components(), model.components());
    }

    #[test]
    fn trees_are_derived_from_the_structure() {
        let model = valid_builder().build().unwrap();
        assert_eq!(model.degraded_fault_tree().basic_events().len(), 2);
        assert_eq!(model.total_failure_fault_tree().basic_events().len(), 2);
        assert_eq!(model.service_tree().components().len(), 2);
    }
}
