//! Declarative measure specifications and results.
//!
//! Arcade takes, besides the architectural model, a specification of the
//! dependability measures to evaluate. [`Measure`] mirrors the measures used in
//! the paper (reliability, steady-state availability, quantitative
//! survivability and repair cost) in a form that can be stored in the XML
//! format, translated to CSL/CSRL property strings and evaluated by
//! [`crate::Analysis`].

use serde::{Deserialize, Serialize};

/// A dependability or performability measure to evaluate on a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Measure {
    /// Long-run probability that the system is fully operational
    /// (CSL `S=? [ "operational" ]`).
    SteadyStateAvailability,
    /// Probability that the system is fully operational at time `t`.
    PointAvailability {
        /// The time instant in hours.
        time: f64,
    },
    /// Probability of no service degradation within the mission time
    /// (CSL `1 - P=? [ true U<=t "down" ]`).
    Reliability {
        /// Mission time in hours.
        time: f64,
    },
    /// Reliability evaluated at several mission times (one curve).
    ReliabilityCurve {
        /// Mission times in hours.
        times: Vec<f64>,
    },
    /// Probability of recovering a service level of at least `service_level`
    /// within `time` hours after the named disaster
    /// (CSL `P=? [ true U<=t "service >= x" ]` on the GOOD model).
    Survivability {
        /// Name of the disaster to start from.
        disaster: String,
        /// Required service level in `[0, 1]`.
        service_level: f64,
        /// Recovery deadline in hours.
        time: f64,
    },
    /// Survivability evaluated at several deadlines (one recovery curve).
    SurvivabilityCurve {
        /// Name of the disaster to start from.
        disaster: String,
        /// Required service level in `[0, 1]`.
        service_level: f64,
        /// Recovery deadlines in hours.
        times: Vec<f64>,
    },
    /// Expected instantaneous cost rate at the given times
    /// (CSRL `R=? [ I=t ]`), optionally after a disaster.
    InstantaneousCost {
        /// Disaster to start from; `None` starts from the regular initial state.
        disaster: Option<String>,
        /// Time instants in hours.
        times: Vec<f64>,
    },
    /// Expected accumulated cost up to the given time bounds
    /// (CSRL `R=? [ C<=t ]`), optionally after a disaster.
    AccumulatedCost {
        /// Disaster to start from; `None` starts from the regular initial state.
        disaster: Option<String>,
        /// Time bounds in hours.
        times: Vec<f64>,
    },
    /// Long-run expected cost rate.
    LongRunCostRate,
}

impl Measure {
    /// A short human-readable identifier for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Measure::SteadyStateAvailability => "steady-state availability",
            Measure::PointAvailability { .. } => "point availability",
            Measure::Reliability { .. } => "reliability",
            Measure::ReliabilityCurve { .. } => "reliability curve",
            Measure::Survivability { .. } => "survivability",
            Measure::SurvivabilityCurve { .. } => "survivability curve",
            Measure::InstantaneousCost { .. } => "instantaneous cost",
            Measure::AccumulatedCost { .. } => "accumulated cost",
            Measure::LongRunCostRate => "long-run cost rate",
        }
    }

    /// The CSL/CSRL formula this measure corresponds to, in PRISM-like syntax.
    pub fn csl_formula(&self) -> String {
        match self {
            Measure::SteadyStateAvailability => "S=? [ \"operational\" ]".to_string(),
            Measure::PointAvailability { time } => {
                format!("P=? [ true U[{time},{time}] \"operational\" ]")
            }
            Measure::Reliability { time } => {
                format!("1 - P=? [ true U<={time} \"down\" ]")
            }
            Measure::ReliabilityCurve { times } => {
                let upper = times.iter().copied().fold(0.0, f64::max);
                format!("1 - P=? [ true U<=t \"down\" ] for t in [0, {upper}]")
            }
            Measure::Survivability {
                disaster,
                service_level,
                time,
            } => format!(
                "P=? [ true U<={time} \"service>={service_level}\" ] given disaster {disaster}"
            ),
            Measure::SurvivabilityCurve {
                disaster,
                service_level,
                times,
            } => {
                let upper = times.iter().copied().fold(0.0, f64::max);
                format!(
                    "P=? [ true U<=t \"service>={service_level}\" ] for t in [0, {upper}] given disaster {disaster}"
                )
            }
            Measure::InstantaneousCost { times, .. } => {
                let upper = times.iter().copied().fold(0.0, f64::max);
                format!("R=? [ I=t ] for t in [0, {upper}]")
            }
            Measure::AccumulatedCost { times, .. } => {
                let upper = times.iter().copied().fold(0.0, f64::max);
                format!("R=? [ C<={upper} ]")
            }
            Measure::LongRunCostRate => "R=? [ S ]".to_string(),
        }
    }
}

/// A facility-level measure, evaluated over the product of the per-line
/// chains by [`crate::FacilityAnalysis::evaluate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FacilityMeasure {
    /// Long-run probability that at least one line is fully operational,
    /// via the product form (`A = A1 + A2 − A1·A2` for two independent
    /// lines).
    SteadyStateAvailability,
    /// The same probability solved on the genuine materialised joint chain
    /// (the validation counterpart of the product form).
    JointSteadyStateAvailability,
    /// Long-run probability that the named line is fully operational.
    LineAvailability {
        /// The line name.
        line: String,
    },
    /// Probability of the facility again delivering a service level of at
    /// least `service_level` on some line within each deadline after the
    /// named facility disaster.
    SurvivabilityCurve {
        /// Name of the facility disaster to start from.
        disaster: String,
        /// Required service level in `[0, 1]`.
        service_level: f64,
        /// Recovery deadlines in hours.
        times: Vec<f64>,
    },
    /// Expected accumulated facility repair cost up to the given bounds,
    /// optionally after a facility disaster.
    AccumulatedCost {
        /// Disaster to start from; `None` starts all lines operational.
        disaster: Option<String>,
        /// Time bounds in hours.
        times: Vec<f64>,
    },
}

impl FacilityMeasure {
    /// A short human-readable identifier for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            FacilityMeasure::SteadyStateAvailability => "facility availability (product form)",
            FacilityMeasure::JointSteadyStateAvailability => "facility availability (joint chain)",
            FacilityMeasure::LineAvailability { .. } => "line availability",
            FacilityMeasure::SurvivabilityCurve { .. } => "facility survivability curve",
            FacilityMeasure::AccumulatedCost { .. } => "facility accumulated cost",
        }
    }
}

/// The result of evaluating a [`Measure`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MeasureResult {
    /// A single number (availability, reliability at one time point, ...).
    Scalar(f64),
    /// A time-indexed curve of `(time, value)` points.
    Curve(Vec<(f64, f64)>),
}

impl MeasureResult {
    /// The scalar value, if this result is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            MeasureResult::Scalar(v) => Some(*v),
            MeasureResult::Curve(_) => None,
        }
    }

    /// The curve, if this result is a curve.
    pub fn as_curve(&self) -> Option<&[(f64, f64)]> {
        match self {
            MeasureResult::Scalar(_) => None,
            MeasureResult::Curve(points) => Some(points),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        assert_eq!(
            Measure::SteadyStateAvailability.kind(),
            "steady-state availability"
        );
        assert_eq!(Measure::Reliability { time: 10.0 }.kind(), "reliability");
        assert_eq!(Measure::LongRunCostRate.kind(), "long-run cost rate");
    }

    #[test]
    fn csl_formulas_mention_the_right_operators() {
        assert!(Measure::SteadyStateAvailability
            .csl_formula()
            .starts_with("S=?"));
        assert!(Measure::Reliability { time: 100.0 }
            .csl_formula()
            .contains("U<=100"));
        let surv = Measure::Survivability {
            disaster: "d1".into(),
            service_level: 0.5,
            time: 4.5,
        };
        assert!(surv.csl_formula().contains("d1"));
        assert!(surv.csl_formula().contains("0.5"));
        assert!(Measure::InstantaneousCost {
            disaster: None,
            times: vec![1.0]
        }
        .csl_formula()
        .contains("I=t"));
        assert!(Measure::AccumulatedCost {
            disaster: None,
            times: vec![5.0]
        }
        .csl_formula()
        .contains("C<="));
        assert!(Measure::PointAvailability { time: 2.0 }
            .csl_formula()
            .contains("U[2,2]"));
        assert!(Measure::ReliabilityCurve {
            times: vec![1.0, 2.0]
        }
        .csl_formula()
        .contains("[0, 2]"));
        assert!(Measure::SurvivabilityCurve {
            disaster: "d".into(),
            service_level: 1.0,
            times: vec![3.0]
        }
        .csl_formula()
        .contains("given disaster d"));
        assert!(Measure::LongRunCostRate.csl_formula().contains("R=?"));
    }

    #[test]
    fn result_accessors() {
        let scalar = MeasureResult::Scalar(0.5);
        assert_eq!(scalar.as_scalar(), Some(0.5));
        assert!(scalar.as_curve().is_none());
        let curve = MeasureResult::Curve(vec![(0.0, 1.0), (1.0, 0.9)]);
        assert!(curve.as_scalar().is_none());
        assert_eq!(curve.as_curve().unwrap().len(), 2);
    }
}
