//! Spare management units.
//!
//! A spare management unit watches a set of *primary* components and a pool of
//! *spare* components. Spares start dormant: they fail at their dormancy-scaled
//! rate (zero for cold spares) and do not contribute to service. Whenever a
//! primary (or an already-activated spare) fails, the unit activates a dormant
//! spare to take its place; when the failed component is repaired, the spare is
//! deactivated again. Activation and deactivation are modelled as immediate,
//! deterministic side effects of the failure/repair events, so the composed
//! model remains a CTMC without nondeterminism — the restriction the paper
//! relies on for its PRISM translation.

use serde::{Deserialize, Serialize};

use crate::error::ArcadeError;

/// A spare management unit.
///
/// # Example
///
/// ```
/// # use arcade_core::SpareManagementUnit;
/// # fn main() -> Result<(), arcade_core::ArcadeError> {
/// let smu = SpareManagementUnit::new("pump-spares", ["pump-1", "pump-2", "pump-3"], ["pump-4"])?;
/// assert_eq!(smu.primaries().len(), 3);
/// assert_eq!(smu.spares().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpareManagementUnit {
    name: String,
    primaries: Vec<String>,
    spares: Vec<String>,
}

impl SpareManagementUnit {
    /// Creates a spare management unit with the given primaries and spares.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidSpareUnit`] if the name is empty, either
    /// list is empty, or a component appears in both lists.
    pub fn new<I, J, S, T>(
        name: impl Into<String>,
        primaries: I,
        spares: J,
    ) -> Result<Self, ArcadeError>
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = T>,
        S: Into<String>,
        T: Into<String>,
    {
        let name = name.into();
        if name.is_empty() {
            return Err(ArcadeError::InvalidSpareUnit {
                reason: "spare management unit name must not be empty".to_string(),
            });
        }
        let primaries: Vec<String> = primaries.into_iter().map(Into::into).collect();
        let spares: Vec<String> = spares.into_iter().map(Into::into).collect();
        if primaries.is_empty() {
            return Err(ArcadeError::InvalidSpareUnit {
                reason: format!("spare unit `{name}` has no primary components"),
            });
        }
        if spares.is_empty() {
            return Err(ArcadeError::InvalidSpareUnit {
                reason: format!("spare unit `{name}` has no spare components"),
            });
        }
        if let Some(dup) = primaries.iter().find(|p| spares.contains(p)) {
            return Err(ArcadeError::InvalidSpareUnit {
                reason: format!("component `{dup}` of unit `{name}` is both primary and spare"),
            });
        }
        Ok(SpareManagementUnit {
            name,
            primaries,
            spares,
        })
    }

    /// The unit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary components.
    pub fn primaries(&self) -> &[String] {
        &self.primaries
    }

    /// The spare components (initially dormant).
    pub fn spares(&self) -> &[String] {
        &self.spares
    }

    /// All components governed by this unit.
    pub fn all_components(&self) -> impl Iterator<Item = &str> {
        self.primaries
            .iter()
            .chain(self.spares.iter())
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_input() {
        assert!(SpareManagementUnit::new("", ["a"], ["b"]).is_err());
        assert!(
            SpareManagementUnit::new("s", Vec::<String>::new(), vec!["b".to_string()]).is_err()
        );
        assert!(
            SpareManagementUnit::new("s", vec!["a".to_string()], Vec::<String>::new()).is_err()
        );
        assert!(SpareManagementUnit::new("s", ["a"], ["a"]).is_err());
        assert!(SpareManagementUnit::new("s", ["a", "b"], ["c"]).is_ok());
    }

    #[test]
    fn accessors() {
        let smu = SpareManagementUnit::new("pumps", ["p1", "p2"], ["p3"]).unwrap();
        assert_eq!(smu.name(), "pumps");
        assert_eq!(smu.primaries(), &["p1".to_string(), "p2".to_string()]);
        assert_eq!(smu.spares(), &["p3".to_string()]);
        assert_eq!(
            smu.all_components().collect::<Vec<_>>(),
            vec!["p1", "p2", "p3"]
        );
    }
}
