//! Error types for the Arcade framework.

use std::fmt;

use arcade_lumping::LumpError;
use ctmc::CtmcError;

/// Errors produced while building, validating, composing or analysing an
/// Arcade model.
#[derive(Debug, Clone, PartialEq)]
pub enum ArcadeError {
    /// A component name is used more than once.
    DuplicateComponent {
        /// The duplicated name.
        name: String,
    },
    /// A repair unit or measure references a component that does not exist.
    UnknownComponent {
        /// The missing component name.
        name: String,
        /// Where it was referenced from.
        referenced_by: String,
    },
    /// A component is covered by more than one repair unit.
    ComponentRepairedTwice {
        /// The component name.
        name: String,
    },
    /// A component has no responsible repair unit but the model requires one.
    ComponentNotRepaired {
        /// The component name.
        name: String,
    },
    /// A numeric parameter (rate, cost, crew count) is invalid.
    InvalidParameter {
        /// Explanation of the problem.
        reason: String,
    },
    /// A repair unit name is used more than once.
    DuplicateRepairUnit {
        /// The duplicated name.
        name: String,
    },
    /// A spare management unit is inconsistent (unknown components, overlaps).
    InvalidSpareUnit {
        /// Explanation of the problem.
        reason: String,
    },
    /// A disaster specification is invalid.
    InvalidDisaster {
        /// Explanation of the problem.
        reason: String,
    },
    /// The state-space exploration exceeded the configured state limit.
    StateSpaceTooLarge {
        /// The configured limit.
        limit: usize,
    },
    /// An error bubbled up from the underlying CTMC engine.
    Numerics(CtmcError),
    /// An error bubbled up from the lumping engine.
    Lumping(LumpError),
    /// A measure was requested that the compiled model cannot evaluate.
    UnsupportedMeasure {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for ArcadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcadeError::DuplicateComponent { name } => {
                write!(f, "component `{name}` is defined more than once")
            }
            ArcadeError::UnknownComponent {
                name,
                referenced_by,
            } => {
                write!(
                    f,
                    "unknown component `{name}` referenced by {referenced_by}"
                )
            }
            ArcadeError::ComponentRepairedTwice { name } => {
                write!(
                    f,
                    "component `{name}` is assigned to more than one repair unit"
                )
            }
            ArcadeError::ComponentNotRepaired { name } => {
                write!(f, "component `{name}` has no responsible repair unit")
            }
            ArcadeError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            ArcadeError::DuplicateRepairUnit { name } => {
                write!(f, "repair unit `{name}` is defined more than once")
            }
            ArcadeError::InvalidSpareUnit { reason } => {
                write!(f, "invalid spare management unit: {reason}")
            }
            ArcadeError::InvalidDisaster { reason } => write!(f, "invalid disaster: {reason}"),
            ArcadeError::StateSpaceTooLarge { limit } => {
                write!(
                    f,
                    "state-space exploration exceeded the limit of {limit} states"
                )
            }
            ArcadeError::Numerics(err) => write!(f, "numerical engine error: {err}"),
            ArcadeError::Lumping(err) => write!(f, "lumping engine error: {err}"),
            ArcadeError::UnsupportedMeasure { reason } => {
                write!(f, "unsupported measure: {reason}")
            }
        }
    }
}

impl std::error::Error for ArcadeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArcadeError::Numerics(err) => Some(err),
            ArcadeError::Lumping(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CtmcError> for ArcadeError {
    fn from(err: CtmcError) -> Self {
        ArcadeError::Numerics(err)
    }
}

impl From<LumpError> for ArcadeError {
    fn from(err: LumpError) -> Self {
        ArcadeError::Lumping(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ArcadeError::DuplicateComponent {
            name: "pump".into(),
        };
        assert!(e.to_string().contains("pump"));
        let e = ArcadeError::UnknownComponent {
            name: "x".into(),
            referenced_by: "ru".into(),
        };
        assert!(e.to_string().contains('x') && e.to_string().contains("ru"));
        let e = ArcadeError::StateSpaceTooLarge { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn ctmc_errors_convert_and_expose_source() {
        let err: ArcadeError = CtmcError::EmptyChain.into();
        assert!(matches!(err, ArcadeError::Numerics(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
