//! Explicit state-space composition of an Arcade model into a labelled CTMC.
//!
//! The composer explores the reachable global states of a model (component
//! modes plus repair-queue contents), producing a [`ctmc::Ctmc`] together with
//! per-state metadata: the quantitative service level, the "fully operational"
//! and "no service" classifications and the repair-cost reward structure. All
//! dependability and performability measures of the paper are then CSL/CSRL
//! queries against this compiled model.
//!
//! Failures never occur simultaneously (each transition changes exactly one
//! component), spare activation and crew dispatch are deterministic side
//! effects of failure/repair events, and repair is non-preemptive — exactly the
//! deterministic Arcade subclass that the paper maps to PRISM.
//!
//! Under the default [`LumpingMode::Compositional`] the composer implements
//! the paper's compositional aggregation: the model's interchangeable
//! component families (per-line sub-chains, see [`crate::families`]) are
//! quotiented *before* the cross product by exploring canonical orbit
//! representatives, so the flat product chain is never materialised and the
//! number of explored states is bounded by the product of the per-family
//! quotient sizes.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use arcade_lumping::{lump, subchain, InitialPartition, LumpedCtmc};
use arcade_telemetry::Recorder;
use ctmc::exec::{self, ExecOptions};
use ctmc::{Ctmc, CtmcBuilder, RewardStructure};
use serde::{Deserialize, Serialize};

use crate::disaster::Disaster;
use crate::error::ArcadeError;
use crate::families::{detect_families, detect_subtree_families, ComponentFamily, SubtreeFamily};
use crate::model::ArcadeModel;
use crate::repair::RepairStrategy;
use crate::state::{ComponentIndex, ComponentStatus, GlobalState, QueueEncoding};

/// How the composed CTMC is reduced before the solvers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LumpingMode {
    /// Keep the flat chain; every measure is solved on the full state space.
    Disabled,
    /// Exact (ordinary) lumping of the *flat* chain: the full product state
    /// space is materialised first, then the coarsest lumpable partition
    /// respecting service levels, the operational predicate and the cost
    /// rewards is computed, and all measures are solved on the quotient. The
    /// measures are unchanged (up to solver tolerance); only the matrices
    /// shrink. Use this mode when the flat counts themselves are of interest
    /// (the paper's Table 1 reports them).
    Exact,
    /// Compositional aggregation (the paper's actual pipeline, and the
    /// default): each interchangeable-component family — a per-line
    /// sub-chain — is lumped *before* the cross product. The composer
    /// explores canonical orbit representatives directly, so the number of
    /// explored states is bounded by the product of the per-family quotient
    /// sizes and the flat chain is never materialised. A final exact-lumping
    /// pass on the (already small) canonical chain then yields the same
    /// coarsest quotient as [`LumpingMode::Exact`], so all measures agree
    /// with the flat pipeline up to solver tolerance.
    #[default]
    Compositional,
}

/// Options controlling the state-space composition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComposerOptions {
    /// Abort exploration when more than this many states have been generated.
    pub max_states: usize,
    /// How repair queues are encoded in the state (see [`QueueEncoding`]).
    pub queue_encoding: QueueEncoding,
    /// Whether the composed chain is lumped for analysis (see [`LumpingMode`]).
    pub lumping: LumpingMode,
    /// Worker pool for the sharded frontier exploration and for the solvers
    /// downstream ([`crate::Analysis`] forwards it). Exploration order, state
    /// numbering and every rate are identical for every thread count, so this
    /// knob changes wall-clock time only, never results.
    pub exec: ExecOptions,
}

impl Default for ComposerOptions {
    fn default() -> Self {
        ComposerOptions {
            max_states: 2_000_000,
            queue_encoding: QueueEncoding::default(),
            lumping: LumpingMode::default(),
            exec: ExecOptions::default(),
        }
    }
}

/// Size statistics of a composed state space (the paper's Table 1), before
/// and — when lumping is enabled — after the exact lumping reduction.
///
/// Under [`LumpingMode::Compositional`] the composed chain already is the
/// canonical product of the per-family sub-chain quotients, so `num_states`
/// counts the states actually explored, the `subchains` breakdown reports the
/// per-family reductions, and `subchain_state_bound` is the product of the
/// per-family quotient sizes that bounds the exploration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSpaceStats {
    /// Number of reachable states of the composed chain (canonical orbit
    /// representatives under compositional lumping, flat states otherwise).
    pub num_states: usize,
    /// Number of transitions (distinct source/target pairs with positive rate).
    pub num_transitions: usize,
    /// Number of blocks of the final lumped quotient, when lumping is enabled.
    pub lumped_states: Option<usize>,
    /// Number of quotient transitions, when lumping is enabled.
    pub lumped_transitions: Option<usize>,
    /// Per-family ("per-line sub-chain") reduction breakdown; populated under
    /// [`LumpingMode::Compositional`], empty otherwise.
    pub subchains: Vec<SubchainStats>,
    /// Product of the per-family quotient sizes: an upper bound on the states
    /// explored by the compositional frontier (`None` unless compositional).
    /// Queue interleavings between families with *equal* dispatch priorities
    /// (FCFS) can exceed this status-multiset bound; for strategies with
    /// distinct priorities (DED, FRF, FFF on the paper's models) it holds.
    /// Isomorphic-subtree orbits only shrink the exploration further, so the
    /// bound stays valid in their presence.
    pub subchain_state_bound: Option<usize>,
    /// Isomorphic-subtree orbit families exploited by the canonical frontier
    /// (groups of ≥ 2 isomorphic sibling subtrees beyond single leaves);
    /// empty unless compositional. Each entry lists the aligned member names
    /// of every subtree in the group.
    #[serde(default)]
    pub subtree_orbits: Vec<SubtreeOrbitStats>,
}

/// One isomorphic-subtree orbit group of [`StateSpaceStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubtreeOrbitStats {
    /// The leaf names of each isomorphic subtree, aligned canonical order.
    pub blocks: Vec<Vec<String>>,
}

/// The local reduction of one interchangeable-component family's sub-chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubchainStats {
    /// Names of the family's members, in definition order.
    pub members: Vec<String>,
    /// Local states before lumping: one per status assignment of the members.
    pub local_states: usize,
    /// Local quotient blocks: one per status *multiset* of the members.
    pub local_blocks: usize,
}

/// Label attached to states in which the system is fully operational.
pub const LABEL_OPERATIONAL: &str = "operational";
/// Label attached to states in which the system is not fully operational.
pub const LABEL_DOWN: &str = "down";
/// Label attached to states in which no service at all is delivered.
pub const LABEL_NO_SERVICE: &str = "no_service";

/// An Arcade model compiled to a labelled CTMC with service levels and rewards.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    chain: Ctmc,
    states: Vec<GlobalState>,
    component_names: Vec<String>,
    service_levels: Vec<f64>,
    operational: Vec<bool>,
    cost_rewards: RewardStructure,
    initial_index: usize,
    options: ComposerOptions,
    // Pre-computed structural data needed to build disaster (GOOD) states.
    ru_components: Vec<Vec<ComponentIndex>>,
    ru_effective_crews: Vec<usize>,
    ru_priorities: Vec<Vec<f64>>,
    ru_preemptive: Vec<bool>,
    component_ru: Vec<Option<usize>>,
    smu_primaries: Vec<Vec<ComponentIndex>>,
    smu_spares: Vec<Vec<ComponentIndex>>,
    index_of_state: HashMap<GlobalState, usize>,
    families: Vec<ComponentFamily>,
    subtree_families: Vec<SubtreeFamily>,
    lumped: Option<LumpedModel>,
}

/// The exactly lumped companion of a [`CompiledModel`]: the quotient chain
/// plus the per-block metadata every measure needs.
///
/// The initial partition separates states by service level, by the
/// operational predicate and by cost-reward rate, so every mask the analysis
/// layer builds is a union of blocks and every measure evaluated on the
/// quotient equals its flat counterpart (up to solver tolerance).
#[derive(Debug, Clone)]
pub struct LumpedModel {
    lumping: LumpedCtmc,
    cost_rewards: RewardStructure,
    service_levels: Vec<f64>,
    operational: Vec<bool>,
}

impl LumpedModel {
    fn build(
        chain: &Ctmc,
        service_levels: &[f64],
        operational: &[bool],
        cost_rewards: &RewardStructure,
    ) -> Result<Self, ArcadeError> {
        // The chain's labels already include the operational/down masks, so
        // `from_labels` separates those states; only the full service levels
        // and the reward rates add further distinctions.
        let mut initial = InitialPartition::from_labels(chain);
        initial.refine_by_f64(service_levels)?;
        initial.refine_by_f64(cost_rewards.state_rewards())?;
        let lumping = lump(chain, &initial)?;
        let quotient_rewards = lumping.lump_rewards(cost_rewards)?;
        let quotient_levels = lumping.project_values(service_levels)?;
        let quotient_operational = lumping.project_mask(operational)?;
        Ok(LumpedModel {
            lumping,
            cost_rewards: quotient_rewards,
            service_levels: quotient_levels,
            operational: quotient_operational,
        })
    }

    /// The block ↔ state maps and the quotient chain.
    pub fn lumping(&self) -> &LumpedCtmc {
        &self.lumping
    }

    /// The quotient CTMC all measures are solved on.
    pub fn quotient(&self) -> &Ctmc {
        self.lumping.quotient()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.lumping.num_blocks()
    }

    /// The repair-cost reward structure lumped onto the quotient.
    pub fn cost_rewards(&self) -> &RewardStructure {
        &self.cost_rewards
    }

    /// The quantitative service level of every block.
    pub fn service_levels(&self) -> &[f64] {
        &self.service_levels
    }

    /// Mask of blocks in which the system is fully operational.
    pub fn operational_mask(&self) -> &[bool] {
        &self.operational
    }

    /// Mask of blocks in which the system is *not* fully operational.
    pub fn down_mask(&self) -> Vec<bool> {
        self.operational.iter().map(|&b| !b).collect()
    }

    /// Mask of blocks whose service level is at least `threshold`.
    pub fn service_at_least_mask(&self, threshold: f64) -> Vec<bool> {
        service_at_least(&self.service_levels, threshold)
    }
}

/// Mask of entries whose service level is at least `threshold`, with the
/// shared boundary tolerance — kept in one place so the flat and the lumped
/// goal sets can never diverge on a service-level boundary.
pub(crate) fn service_at_least(levels: &[f64], threshold: f64) -> Vec<bool> {
    levels.iter().map(|&l| l >= threshold - 1e-12).collect()
}

impl CompiledModel {
    /// Compiles a model with default options.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::StateSpaceTooLarge`] if exploration exceeds the
    /// state limit, or a numerics error if the chain cannot be built.
    pub fn compile(model: &ArcadeModel) -> Result<Self, ArcadeError> {
        Self::compile_with(model, ComposerOptions::default())
    }

    /// Compiles a model with explicit options.
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::compile`].
    pub fn compile_with(
        model: &ArcadeModel,
        options: ComposerOptions,
    ) -> Result<Self, ArcadeError> {
        let recorder = Recorder::current();
        let mut compiled = {
            let mut span = recorder.span("compose");
            let compiled = Composer::new(model, options)?.explore()?;
            span.count("components", model.components().len() as u64);
            span.count("states", compiled.chain.num_states() as u64);
            span.count("transitions", compiled.chain.num_transitions() as u64);
            compiled
        };
        if options.lumping != LumpingMode::Disabled {
            // Exact mode lumps the flat chain; compositional mode runs the
            // same final pass on the (already small) canonical chain, which
            // yields the same coarsest quotient as flat-then-lump.
            let mut span = recorder.span("lump");
            span.count("states", compiled.chain.num_states() as u64);
            let lumped = LumpedModel::build(
                &compiled.chain,
                &compiled.service_levels,
                &compiled.operational,
                &compiled.cost_rewards,
            )?;
            span.count("blocks", lumped.num_blocks() as u64);
            compiled.lumped = Some(lumped);
        }
        Ok(compiled)
    }

    /// The exactly lumped companion model, present when the composition ran
    /// with [`LumpingMode::Exact`] (the default).
    pub fn lumped(&self) -> Option<&LumpedModel> {
        self.lumped.as_ref()
    }

    /// Lumps this model on demand, regardless of the compile-time option.
    ///
    /// # Errors
    ///
    /// Propagates lumping-engine errors (which would indicate a bug: the
    /// initial partition is built from this model's own metadata).
    pub fn lump(&self) -> Result<LumpedModel, ArcadeError> {
        LumpedModel::build(
            &self.chain,
            &self.service_levels,
            &self.operational,
            &self.cost_rewards,
        )
    }

    /// The underlying labelled CTMC.
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// The explored global states, indexed like the CTMC states.
    pub fn states(&self) -> &[GlobalState] {
        &self.states
    }

    /// Names of the components, in the index order used by [`GlobalState`].
    pub fn component_names(&self) -> &[String] {
        &self.component_names
    }

    /// State-space size statistics (the paper's Table 1). The composed-chain
    /// counts are always present; the lumped counts are filled in whenever
    /// lumping is enabled, and the per-family sub-chain breakdown whenever the
    /// model was compiled with [`LumpingMode::Compositional`].
    pub fn stats(&self) -> StateSpaceStats {
        let compositional = self.options.lumping == LumpingMode::Compositional;
        let subchains: Vec<SubchainStats> = if compositional {
            self.families
                .iter()
                .map(|family| {
                    let quotient = subchain::SubchainQuotient::new(
                        family.members.len(),
                        self.status_alphabet(family.members[0]),
                    );
                    SubchainStats {
                        members: family
                            .members
                            .iter()
                            .map(|&c| self.component_names[c].clone())
                            .collect(),
                        local_states: quotient.flat_states(),
                        local_blocks: quotient.blocks(),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let subchain_state_bound = compositional.then(|| {
            subchains
                .iter()
                .fold(1usize, |acc, s| acc.saturating_mul(s.local_blocks))
        });
        let subtree_orbits = if compositional {
            self.subtree_families
                .iter()
                .map(|family| SubtreeOrbitStats {
                    blocks: family
                        .blocks
                        .iter()
                        .map(|block| {
                            block
                                .iter()
                                .map(|&c| self.component_names[c].clone())
                                .collect()
                        })
                        .collect(),
                })
                .collect()
        } else {
            Vec::new()
        };
        StateSpaceStats {
            num_states: self.chain.num_states(),
            num_transitions: self.chain.num_transitions(),
            lumped_states: self.lumped.as_ref().map(|l| l.quotient().num_states()),
            lumped_transitions: self.lumped.as_ref().map(|l| l.quotient().num_transitions()),
            subchains,
            subchain_state_bound,
            subtree_orbits,
        }
    }

    /// Size of the status alphabet of a component: spare-managed components
    /// additionally take the dormant status, components without a repair unit
    /// never leave the waiting status once failed, and components whose unit
    /// has a crew for every member (the dedicated strategy) never wait.
    fn status_alphabet(&self, component: ComponentIndex) -> usize {
        let spare_managed = self
            .smu_primaries
            .iter()
            .chain(self.smu_spares.iter())
            .any(|members| members.contains(&component));
        let dormant = usize::from(spare_managed);
        // Failed statuses: waiting and/or under repair, depending on crews.
        let failed = match self.component_ru[component] {
            None => 1, // fails into waiting, is never repaired
            Some(ru) if self.ru_effective_crews[ru] >= self.ru_components[ru].len() => 1,
            Some(_) => 2,
        };
        1 + dormant + failed
    }

    /// The interchangeable-component families ("sub-chains") of the model, in
    /// definition order of their smallest member; singleton families included.
    pub fn families(&self) -> &[ComponentFamily] {
        &self.families
    }

    /// The isomorphic-subtree orbit families of the model (deepest first),
    /// exploited by the canonical frontier beyond the sibling-leaf families.
    pub fn subtree_families(&self) -> &[SubtreeFamily] {
        &self.subtree_families
    }

    /// The quantitative service level of every state.
    pub fn service_levels(&self) -> &[f64] {
        &self.service_levels
    }

    /// Mask of states in which the system is fully operational.
    pub fn operational_mask(&self) -> &[bool] {
        &self.operational
    }

    /// Mask of states in which the system is *not* fully operational.
    pub fn down_mask(&self) -> Vec<bool> {
        self.operational.iter().map(|&b| !b).collect()
    }

    /// Mask of states whose service level is at least `threshold`.
    pub fn service_at_least_mask(&self, threshold: f64) -> Vec<bool> {
        service_at_least(&self.service_levels, threshold)
    }

    /// The repair-cost reward structure (idle/busy crews plus failed components).
    pub fn cost_rewards(&self) -> &RewardStructure {
        &self.cost_rewards
    }

    /// Index of the model's regular initial state.
    pub fn initial_index(&self) -> usize {
        self.initial_index
    }

    /// The composition options used.
    pub fn options(&self) -> ComposerOptions {
        self.options
    }

    /// Index of the state reached immediately after the given disaster, with
    /// repair queues ordered by dispatch priority as the paper prescribes for
    /// GOOD models.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidDisaster`] if a component is unknown or the
    /// disaster state is not part of the reachable state space.
    pub fn disaster_state_index(&self, disaster: &Disaster) -> Result<usize, ArcadeError> {
        let state = self.build_disaster_state(disaster)?;
        self.index_of_state
            .get(&state)
            .copied()
            .ok_or_else(|| ArcadeError::InvalidDisaster {
                reason: format!(
                    "the state after disaster `{}` is not reachable in the composed model",
                    disaster.name()
                ),
            })
    }

    /// Returns a copy of the chain whose initial distribution is the point mass
    /// on the state reached right after `disaster` (the GOOD model).
    ///
    /// # Errors
    ///
    /// See [`CompiledModel::disaster_state_index`].
    pub fn chain_after_disaster(&self, disaster: &Disaster) -> Result<Ctmc, ArcadeError> {
        let index = self.disaster_state_index(disaster)?;
        Ok(self.chain.with_initial_state(index)?)
    }

    fn build_disaster_state(&self, disaster: &Disaster) -> Result<GlobalState, ArcadeError> {
        let mut failed_indices = Vec::new();
        for name in disaster.failed_components() {
            let idx = self
                .component_names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| ArcadeError::InvalidDisaster {
                    reason: format!(
                        "disaster `{}` references unknown component `{name}`",
                        disaster.name()
                    ),
                })?;
            failed_indices.push(idx);
        }

        // Start from the regular initial state so that dormant spares and
        // initially-failed components keep their configuration.
        let mut state = self.states[self.initial_index].clone();
        // Queue disasters in dispatch-priority order (ties: the order listed in
        // the disaster), as the paper does when the failure order is unknown.
        let mut ordered = failed_indices.clone();
        ordered.sort_by(|&a, &b| {
            let (pa, pb) = (self.priority_of(a), self.priority_of(b));
            pb.partial_cmp(&pa).unwrap_or(std::cmp::Ordering::Equal)
        });
        for &c in &ordered {
            if state.statuses[c].is_failed() {
                continue;
            }
            state.statuses[c] = ComponentStatus::WaitingForRepair;
            if let Some(ru) = self.component_ru[c] {
                if !self.ru_preemptive[ru] {
                    enqueue(
                        &mut state.queues[ru],
                        c,
                        &self.ru_priorities[ru],
                        self.options.queue_encoding,
                    );
                }
            }
        }
        // Activate spares for failed primaries, then dispatch crews.
        for smu in 0..self.smu_primaries.len() {
            rebalance_spares(&mut state, &self.smu_primaries[smu], &self.smu_spares[smu]);
        }
        for ru in 0..self.ru_components.len() {
            if self.ru_preemptive[ru] {
                dispatch_preemptive(
                    &mut state,
                    &self.ru_components[ru],
                    self.ru_effective_crews[ru],
                    &self.ru_priorities[ru],
                );
            } else {
                dispatch(
                    &mut state,
                    ru,
                    &self.ru_components[ru],
                    self.ru_effective_crews[ru],
                    &self.ru_priorities[ru],
                );
            }
        }
        if self.options.lumping == LumpingMode::Compositional {
            canonicalize_state(
                &mut state,
                &self.families,
                &self.subtree_families,
                &self.component_ru,
            );
        }
        Ok(state)
    }

    fn priority_of(&self, component: ComponentIndex) -> f64 {
        match self.component_ru[component] {
            Some(ru) => self.ru_priorities[ru][component],
            None => 0.0,
        }
    }
}

/// Internal exploration engine.
struct Composer<'a> {
    model: &'a ArcadeModel,
    options: ComposerOptions,
    failure_rates: Vec<f64>,
    repair_rates: Vec<f64>,
    dormancy: Vec<f64>,
    component_names: Vec<String>,
    component_ru: Vec<Option<usize>>,
    component_smu: Vec<Option<usize>>,
    ru_components: Vec<Vec<ComponentIndex>>,
    ru_effective_crews: Vec<usize>,
    /// `ru_priorities[ru][component]` is the dispatch priority of the component
    /// under that unit's strategy (indexed by global component index).
    ru_priorities: Vec<Vec<f64>>,
    ru_preemptive: Vec<bool>,
    smu_primaries: Vec<Vec<ComponentIndex>>,
    smu_spares: Vec<Vec<ComponentIndex>>,
    families: Vec<ComponentFamily>,
    subtree_families: Vec<SubtreeFamily>,
}

impl<'a> Composer<'a> {
    fn new(model: &'a ArcadeModel, options: ComposerOptions) -> Result<Self, ArcadeError> {
        let n = model.components().len();
        let component_names: Vec<String> = model
            .components()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        let failure_rates: Vec<f64> = model
            .components()
            .iter()
            .map(|c| c.failure_rate())
            .collect();
        let repair_rates: Vec<f64> = model.components().iter().map(|c| c.repair_rate()).collect();
        let dormancy: Vec<f64> = model
            .components()
            .iter()
            .map(|c| c.dormancy_factor())
            .collect();

        let mut component_ru = vec![None; n];
        let mut ru_components = Vec::new();
        let mut ru_effective_crews = Vec::new();
        let mut ru_priorities = Vec::new();
        let mut ru_preemptive = Vec::new();
        for (ru_idx, ru) in model.repair_units().iter().enumerate() {
            let mut members = Vec::new();
            for name in ru.components() {
                let idx =
                    model
                        .component_index(name)
                        .ok_or_else(|| ArcadeError::UnknownComponent {
                            name: name.clone(),
                            referenced_by: format!("repair unit `{}`", ru.name()),
                        })?;
                component_ru[idx] = Some(ru_idx);
                members.push(idx);
            }
            ru_effective_crews.push(ru.effective_crews());
            let mut priorities = vec![0.0; n];
            for &c in &members {
                priorities[c] = ru.strategy().priority_of(&model.components()[c]);
            }
            // The dedicated strategy repairs everything immediately; priorities
            // are irrelevant but kept at zero for determinism.
            if matches!(ru.strategy(), RepairStrategy::Dedicated) {
                priorities.iter_mut().for_each(|p| *p = 0.0);
            }
            ru_components.push(members);
            ru_priorities.push(priorities);
            ru_preemptive.push(ru.is_preemptive());
        }

        let mut component_smu = vec![None; n];
        let mut smu_primaries = Vec::new();
        let mut smu_spares = Vec::new();
        for (smu_idx, smu) in model.spare_units().iter().enumerate() {
            let mut primaries = Vec::new();
            for name in smu.primaries() {
                let idx =
                    model
                        .component_index(name)
                        .ok_or_else(|| ArcadeError::UnknownComponent {
                            name: name.clone(),
                            referenced_by: format!("spare unit `{}`", smu.name()),
                        })?;
                component_smu[idx] = Some(smu_idx);
                primaries.push(idx);
            }
            let mut spares = Vec::new();
            for name in smu.spares() {
                let idx =
                    model
                        .component_index(name)
                        .ok_or_else(|| ArcadeError::UnknownComponent {
                            name: name.clone(),
                            referenced_by: format!("spare unit `{}`", smu.name()),
                        })?;
                component_smu[idx] = Some(smu_idx);
                spares.push(idx);
            }
            smu_primaries.push(primaries);
            smu_spares.push(spares);
        }

        Ok(Composer {
            model,
            options,
            failure_rates,
            repair_rates,
            dormancy,
            component_names,
            component_ru,
            component_smu,
            ru_components,
            ru_effective_crews,
            ru_priorities,
            ru_preemptive,
            smu_primaries,
            smu_spares,
            families: {
                let mut span = Recorder::current().span("detect-families");
                let families = detect_families(model);
                span.count("families", families.len() as u64);
                families
            },
            subtree_families: detect_subtree_families(model),
        })
    }

    /// Assigns crews of a repair unit after a failure or repair event, using
    /// the unit's preemptive or non-preemptive discipline.
    fn assign_crews(&self, state: &mut GlobalState, ru: usize) {
        if self.ru_preemptive[ru] {
            dispatch_preemptive(
                state,
                &self.ru_components[ru],
                self.ru_effective_crews[ru],
                &self.ru_priorities[ru],
            );
        } else {
            dispatch(
                state,
                ru,
                &self.ru_components[ru],
                self.ru_effective_crews[ru],
                &self.ru_priorities[ru],
            );
        }
    }

    fn initial_state(&self) -> GlobalState {
        let n = self.component_names.len();
        let mut statuses = vec![ComponentStatus::Operational; n];
        // Spares start dormant.
        for spares in &self.smu_spares {
            for &s in spares {
                statuses[s] = ComponentStatus::Dormant;
            }
        }
        let mut state = GlobalState::new(statuses, self.ru_components.len());
        // Initially failed components enter their queues right away.
        for (idx, component) in self.model.components().iter().enumerate() {
            if component.is_initially_failed() {
                state.statuses[idx] = ComponentStatus::WaitingForRepair;
                if let Some(ru) = self.component_ru[idx] {
                    if !self.ru_preemptive[ru] {
                        enqueue(
                            &mut state.queues[ru],
                            idx,
                            &self.ru_priorities[ru],
                            self.options.queue_encoding,
                        );
                    }
                }
            }
        }
        for smu in 0..self.smu_primaries.len() {
            rebalance_spares(&mut state, &self.smu_primaries[smu], &self.smu_spares[smu]);
        }
        for ru in 0..self.ru_components.len() {
            self.assign_crews(&mut state, ru);
        }
        state
    }

    /// All outgoing transitions of a state as `(target state, rate)` pairs.
    fn successors(&self, state: &GlobalState) -> Vec<(GlobalState, f64)> {
        let mut out = Vec::new();
        for c in 0..state.statuses.len() {
            match state.statuses[c] {
                ComponentStatus::Operational => {
                    out.push((self.apply_failure(state, c), self.failure_rates[c]));
                }
                ComponentStatus::Dormant => {
                    let rate = self.failure_rates[c] * self.dormancy[c];
                    if rate > 0.0 {
                        out.push((self.apply_failure(state, c), rate));
                    }
                }
                ComponentStatus::UnderRepair => {
                    out.push((self.apply_repair(state, c), self.repair_rates[c]));
                }
                ComponentStatus::WaitingForRepair => {}
            }
        }
        out
    }

    fn apply_failure(&self, state: &GlobalState, c: ComponentIndex) -> GlobalState {
        let mut next = state.clone();
        let was_active = next.statuses[c] == ComponentStatus::Operational;
        next.statuses[c] = ComponentStatus::WaitingForRepair;
        if let Some(ru) = self.component_ru[c] {
            if !self.ru_preemptive[ru] {
                enqueue(
                    &mut next.queues[ru],
                    c,
                    &self.ru_priorities[ru],
                    self.options.queue_encoding,
                );
            }
        }
        // Spare activation: a failed *active* component of a spare-managed group
        // is replaced by a dormant spare of the same group, if one is available.
        if was_active {
            if let Some(smu) = self.component_smu[c] {
                rebalance_spares(&mut next, &self.smu_primaries[smu], &self.smu_spares[smu]);
            }
        }
        if let Some(ru) = self.component_ru[c] {
            self.assign_crews(&mut next, ru);
        }
        next
    }

    fn apply_repair(&self, state: &GlobalState, c: ComponentIndex) -> GlobalState {
        let mut next = state.clone();
        next.statuses[c] = ComponentStatus::Operational;
        if let Some(smu) = self.component_smu[c] {
            // A repaired spare goes back to dormant unless it is still needed;
            // a repaired primary sends a no-longer-needed spare back to dormant.
            if self.smu_spares[smu].contains(&c) {
                next.statuses[c] = ComponentStatus::Dormant;
            }
            rebalance_spares(&mut next, &self.smu_primaries[smu], &self.smu_spares[smu]);
        }
        if let Some(ru) = self.component_ru[c] {
            self.assign_crews(&mut next, ru);
        }
        next
    }

    fn state_cost(&self, state: &GlobalState) -> f64 {
        let mut cost = 0.0;
        for (idx, component) in self.model.components().iter().enumerate() {
            if state.statuses[idx].is_failed() {
                cost += component.failed_cost_per_hour();
            } else {
                cost += component.operational_cost_per_hour();
            }
        }
        for (ru_idx, ru) in self.model.repair_units().iter().enumerate() {
            let busy = state.num_under_repair(&self.ru_components[ru_idx]);
            let crews = self.ru_effective_crews[ru_idx];
            let idle = crews.saturating_sub(busy);
            cost += idle as f64 * ru.idle_cost_per_hour() + busy as f64 * ru.busy_cost_per_hour();
        }
        cost
    }

    fn explore(self) -> Result<CompiledModel, ArcadeError> {
        let service_tree = self.model.service_tree();
        let degraded_tree = self.model.degraded_fault_tree();

        // Under compositional lumping the frontier runs over canonical orbit
        // representatives: every generated state is first mapped to its
        // family-wise canonical form (sibling-leaf families and whole
        // isomorphic-subtree blocks), so the flat product is never stored and
        // parallel events whose targets share an orbit aggregate their rates.
        let compositional = self.options.lumping == LumpingMode::Compositional
            && (self.families.iter().any(|f| !f.is_singleton())
                || !self.subtree_families.is_empty());

        let mut initial = self.initial_state();
        if compositional {
            canonicalize_state(
                &mut initial,
                &self.families,
                &self.subtree_families,
                &self.component_ru,
            );
        }

        let frontier = Frontier::explore(&self, compositional, initial)?;
        let states = frontier.states;
        let transitions = frontier.transitions;
        let index_of = frontier.index_of;

        // Per-state metadata: each state's service level, operational flag and
        // cost rate depend on that state alone, so the sweep shards across the
        // worker pool (in-order reassembly keeps it deterministic).
        let state_meta = |state: &GlobalState| -> (f64, bool, f64) {
            let provides = |name: &str| -> f64 {
                match self.component_names.iter().position(|n| n == name) {
                    Some(idx) if state.statuses[idx].provides_service() => 1.0,
                    _ => 0.0,
                }
            };
            let failed = |name: &str| -> bool {
                match self.component_names.iter().position(|n| n == name) {
                    Some(idx) => !state.statuses[idx].provides_service(),
                    None => false,
                }
            };
            (
                service_tree.service_level(provides),
                !degraded_tree.is_failed(failed),
                self.state_cost(state),
            )
        };
        let shards = exec::shard_ranges(states.len(), self.options.exec.workers_for(states.len()));
        let meta: Vec<(f64, bool, f64)> = exec::map_ordered(&shards, self.options.exec, |range| {
            states[range.clone()].iter().map(state_meta).collect()
        })
        .into_iter()
        .flat_map(|chunk: Vec<(f64, bool, f64)>| chunk)
        .collect();
        let mut service_levels = Vec::with_capacity(states.len());
        let mut operational = Vec::with_capacity(states.len());
        let mut costs = Vec::with_capacity(states.len());
        for (level, op, cost) in meta {
            service_levels.push(level);
            operational.push(op);
            costs.push(cost);
        }

        let mut builder = CtmcBuilder::new(states.len());
        for (from, to, rate) in transitions {
            builder.add_transition(from, to, rate)?;
        }
        builder.set_initial_state(0)?;
        builder.add_label_mask(LABEL_OPERATIONAL, operational.clone())?;
        builder.add_label_mask(LABEL_DOWN, operational.iter().map(|&b| !b).collect())?;
        builder.add_label_mask(
            LABEL_NO_SERVICE,
            service_levels.iter().map(|&l| l <= 1e-12).collect(),
        )?;
        let chain = builder.build()?;
        let cost_rewards = RewardStructure::new("repair_cost", costs)?;

        Ok(CompiledModel {
            chain,
            states,
            component_names: self.component_names,
            service_levels,
            operational,
            cost_rewards,
            initial_index: 0,
            options: self.options,
            ru_components: self.ru_components,
            ru_effective_crews: self.ru_effective_crews,
            ru_priorities: self.ru_priorities,
            ru_preemptive: self.ru_preemptive,
            component_ru: self.component_ru,
            smu_primaries: self.smu_primaries,
            smu_spares: self.smu_spares,
            index_of_state: index_of,
            families: self.families,
            subtree_families: self.subtree_families,
            lumped: None,
        })
    }
}

/// Result of the (optionally sharded) frontier exploration.
struct Frontier {
    states: Vec<GlobalState>,
    transitions: Vec<(usize, usize, f64)>,
    index_of: HashMap<GlobalState, usize>,
}

/// Number of stripes of the concurrent seen-set (a power of two, so the
/// stripe of a state is the low bits of its canonical-state hash).
const SEEN_STRIPES: usize = 64;

/// Waves smaller than this are expanded inline: generating successors for a
/// handful of states is cheaper than spawning workers. Inline and sharded
/// expansion produce identical states, numbering and transitions.
const MIN_PARALLEL_WAVE: usize = 32;

/// Entry of the striped seen-set.
enum Seen {
    /// The state has been assigned its final index.
    Known(usize),
    /// The state was first discovered in the current wave; the payload is the
    /// smallest discovery rank claiming it so far (see [`Frontier::explore`]).
    Pending(u64),
}

/// A successor resolved during the probe phase of a wave.
enum Probe {
    /// Already explored (or discovered in an earlier wave): final index.
    Known(usize),
    /// First seen this wave; the merge phase assigns its index.
    Fresh(GlobalState),
}

/// Probe output of one worker's wave shard: each frontier state (by final
/// index) with its resolved successors and rates, in generation order.
type ProbedShard = Vec<(usize, Vec<(Probe, f64)>)>;

impl Frontier {
    /// Explores the reachable state space in breadth-first waves.
    ///
    /// Each wave is split into per-thread work queues (contiguous shards of
    /// the frontier). Workers generate and canonicalise successors and probe
    /// a seen-set striped into [`SEEN_STRIPES`] `Mutex<HashMap>` shards keyed
    /// by the canonical-state hash; a state not seen before is claimed with
    /// its *discovery rank* — `(position in wave, successor position)` — and
    /// concurrent claims keep the smallest rank. The merge phase then orders
    /// the wave's fresh states by rank and assigns indices sequentially:
    /// first-encounter order in a single-threaded breadth-first sweep. State
    /// numbering, transition order and every rate are therefore identical
    /// for every thread count and shard layout.
    fn explore(
        composer: &Composer,
        compositional: bool,
        initial: GlobalState,
    ) -> Result<Self, ArcadeError> {
        let threads = composer.options.exec.resolved_threads();
        let stripes: Vec<Mutex<HashMap<GlobalState, Seen>>> = (0..SEEN_STRIPES)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        let mut states = vec![initial.clone()];
        stripes[stripe_of(&initial)]
            .lock()
            .expect("no worker panicked")
            .insert(initial, Seen::Known(0));
        let mut transitions: Vec<(usize, usize, f64)> = Vec::new();
        let mut wave_start = 0;

        while wave_start < states.len() {
            let wave_end = states.len();
            let wave_len = wave_end - wave_start;

            // Probe phase: resolve every successor of the wave against the
            // striped seen-set, claiming unseen states by discovery rank. The
            // `pending` counter bounds memory: once the distinct fresh states
            // would push the total past `max_states`, workers stop cloning
            // and report the overflow instead of buffering a whole oversized
            // wave before the merge notices.
            let pending = std::sync::atomic::AtomicUsize::new(0);
            let outputs: Vec<ProbedShard> = {
                let wave = &states[wave_start..wave_end];
                let stripes = &stripes;
                let pending = &pending;
                let probe_range = |range: &std::ops::Range<usize>| -> Result<_, ArcadeError> {
                    let mut out = Vec::with_capacity(range.len());
                    for offset in range.clone() {
                        let successors = composer.successors(&wave[offset]);
                        let mut resolved = Vec::with_capacity(successors.len());
                        for (succ_idx, (mut target, rate)) in successors.into_iter().enumerate() {
                            if compositional {
                                canonicalize_state(
                                    &mut target,
                                    &composer.families,
                                    &composer.subtree_families,
                                    &composer.component_ru,
                                );
                            }
                            // One successor per component, so the index fits
                            // 16 bits with room to spare; a collision would
                            // silently break deterministic numbering.
                            debug_assert!(succ_idx < (1 << 16), "rank packing overflow");
                            let rank = ((offset as u64) << 16) | succ_idx as u64;
                            let mut map = stripes[stripe_of(&target)]
                                .lock()
                                .expect("no worker panicked");
                            let probe = match map.get_mut(&target) {
                                Some(Seen::Known(idx)) => Probe::Known(*idx),
                                Some(Seen::Pending(best)) => {
                                    *best = rank.min(*best);
                                    Probe::Fresh(target)
                                }
                                None => {
                                    let discovered = 1 + pending
                                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if wave_end + discovered > composer.options.max_states {
                                        return Err(ArcadeError::StateSpaceTooLarge {
                                            limit: composer.options.max_states,
                                        });
                                    }
                                    map.insert(target.clone(), Seen::Pending(rank));
                                    Probe::Fresh(target)
                                }
                            };
                            drop(map);
                            resolved.push((probe, rate));
                        }
                        out.push((wave_start + offset, resolved));
                    }
                    Ok(out)
                };
                let ranges = if threads <= 1 || wave_len < MIN_PARALLEL_WAVE {
                    exec::shard_ranges(wave_len, 1)
                } else {
                    exec::shard_ranges(wave_len, threads)
                };
                exec::map_ordered(&ranges, composer.options.exec, probe_range)
                    .into_iter()
                    .collect::<Result<_, _>>()?
            };

            // Merge phase: assign indices to this wave's fresh states in
            // discovery-rank order (ranks are unique — each rank names one
            // successor slot, which generated exactly one target state).
            let mut fresh: Vec<(u64, GlobalState)> = Vec::new();
            for stripe in &stripes {
                let map = stripe.lock().expect("no worker panicked");
                for (state, seen) in map.iter() {
                    if let Seen::Pending(rank) = seen {
                        fresh.push((*rank, state.clone()));
                    }
                }
            }
            fresh.sort_unstable_by_key(|&(rank, _)| rank);
            for (_, state) in fresh {
                let idx = states.len();
                if idx >= composer.options.max_states {
                    return Err(ArcadeError::StateSpaceTooLarge {
                        limit: composer.options.max_states,
                    });
                }
                let mut map = stripes[stripe_of(&state)]
                    .lock()
                    .expect("no worker panicked");
                *map.get_mut(&state).expect("claimed in the probe phase") = Seen::Known(idx);
                drop(map);
                states.push(state);
            }

            // Record the wave's transitions in frontier order; fresh targets
            // now carry their final index in the seen-set.
            for output in outputs {
                for (current, resolved) in output {
                    for (probe, rate) in resolved {
                        let target = match probe {
                            Probe::Known(idx) => idx,
                            Probe::Fresh(state) => {
                                let map = stripes[stripe_of(&state)]
                                    .lock()
                                    .expect("no worker panicked");
                                match map.get(&state) {
                                    Some(Seen::Known(idx)) => *idx,
                                    _ => unreachable!("merge phase indexed every fresh state"),
                                }
                            }
                        };
                        transitions.push((current, target, rate));
                    }
                }
            }
            wave_start = wave_end;
        }

        // Drain the stripes into the final state-lookup map.
        let mut index_of = HashMap::with_capacity(states.len());
        for stripe in stripes {
            for (state, seen) in stripe.into_inner().expect("no worker panicked") {
                match seen {
                    Seen::Known(idx) => index_of.insert(state, idx),
                    Seen::Pending(_) => unreachable!("every wave resolves its pending states"),
                };
            }
        }
        Ok(Frontier {
            states,
            transitions,
            index_of,
        })
    }
}

/// Stripe of the concurrent seen-set a state belongs to, from its canonical
/// hash (the deterministic `DefaultHasher`, not the map's randomised one).
fn stripe_of(state: &GlobalState) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    state.hash(&mut hasher);
    (hasher.finish() as usize) & (SEEN_STRIPES - 1)
}

/// Maps a global state to the canonical representative of its orbit under the
/// permutation group of the interchangeable-component families **and** the
/// isomorphic-subtree families.
///
/// Within each leaf family the members' roles — status plus (for waiting
/// components) the slot held in the repair unit's queue — are sorted into a
/// canonical order and reassigned to the members in definition order; queue
/// slots move along with the roles. Because family members share all rates,
/// costs and dispatch priorities and sit under the same symmetric structure
/// gate, this relabelling is a chain automorphism: canonical states compose to
/// exactly the product of the per-family sub-chain quotients.
///
/// Subtree families are then canonicalised deepest-first by sorting whole
/// blocks — each block's aligned role *vector* moves as a unit, statuses and
/// queue slots together. Leaf sorting before block sorting keeps every
/// block's role vector canonical under its internal symmetry, so the
/// resulting state is the unique representative of its orbit under the full
/// wreath-product group (a multiset of multisets, sorted inside-out).
fn canonicalize_state(
    state: &mut GlobalState,
    families: &[ComponentFamily],
    subtree_families: &[SubtreeFamily],
    component_ru: &[Option<usize>],
) {
    for family in families {
        if family.is_singleton() {
            continue;
        }
        let ru = component_ru[family.members[0]];
        let mut roles: Vec<(u8, usize)> = family
            .members
            .iter()
            .map(|&c| {
                let queue_slot = ru
                    .and_then(|r| state.queues[r].iter().position(|&x| x == c))
                    .unwrap_or(usize::MAX);
                (status_rank(state.statuses[c]), queue_slot)
            })
            .collect();
        subchain::canonical_roles(&mut roles);
        for (slot, &(rank, queue_slot)) in roles.iter().enumerate() {
            let member = family.members[slot];
            state.statuses[member] = status_from_rank(rank);
            if queue_slot != usize::MAX {
                if let Some(r) = ru {
                    state.queues[r][queue_slot] = member;
                }
            }
        }
    }
    // Subtree families, deepest first (the detector's order): sort the
    // blocks by their aligned role vectors and move each vector — statuses
    // plus queue slots — to the block now holding its rank.
    for family in subtree_families {
        let roles: Vec<Vec<(u8, usize)>> = family
            .blocks
            .iter()
            .map(|block| {
                block
                    .iter()
                    .map(|&leaf| {
                        let queue_slot = component_ru[leaf]
                            .and_then(|r| state.queues[r].iter().position(|&x| x == leaf))
                            .unwrap_or(usize::MAX);
                        (status_rank(state.statuses[leaf]), queue_slot)
                    })
                    .collect()
            })
            .collect();
        let mut order: Vec<usize> = (0..family.blocks.len()).collect();
        order.sort_by(|&a, &b| roles[a].cmp(&roles[b]).then(a.cmp(&b)));
        for (target, &source) in order.iter().enumerate() {
            for (leaf_slot, &(rank, queue_slot)) in roles[source].iter().enumerate() {
                let leaf = family.blocks[target][leaf_slot];
                state.statuses[leaf] = status_from_rank(rank);
                if queue_slot != usize::MAX {
                    if let Some(r) = component_ru[leaf] {
                        state.queues[r][queue_slot] = leaf;
                    }
                }
            }
        }
    }
}

/// Fixed total order on component statuses used for canonicalisation.
fn status_rank(status: ComponentStatus) -> u8 {
    match status {
        ComponentStatus::Operational => 0,
        ComponentStatus::Dormant => 1,
        ComponentStatus::WaitingForRepair => 2,
        ComponentStatus::UnderRepair => 3,
    }
}

fn status_from_rank(rank: u8) -> ComponentStatus {
    match rank {
        0 => ComponentStatus::Operational,
        1 => ComponentStatus::Dormant,
        2 => ComponentStatus::WaitingForRepair,
        _ => ComponentStatus::UnderRepair,
    }
}

/// Inserts a component into a repair queue according to the chosen encoding.
fn enqueue(
    queue: &mut Vec<ComponentIndex>,
    component: ComponentIndex,
    priorities: &[f64],
    encoding: QueueEncoding,
) {
    match encoding {
        QueueEncoding::ArrivalOrder => queue.push(component),
        QueueEncoding::PriorityCanonical => {
            let priority = priorities[component];
            // Insert after the last element whose priority is >= ours, keeping
            // FIFO order among equal priorities.
            let pos = queue
                .iter()
                .position(|&other| priorities[other] < priority - 1e-12)
                .unwrap_or(queue.len());
            queue.insert(pos, component);
        }
    }
}

/// Preemptive crew assignment: the crews always serve the `crews`
/// highest-priority failed components of the unit (ties broken by component
/// definition order); everything else waits. No queue is needed in the state.
fn dispatch_preemptive(
    state: &mut GlobalState,
    members: &[ComponentIndex],
    crews: usize,
    priorities: &[f64],
) {
    let mut failed: Vec<ComponentIndex> = members
        .iter()
        .copied()
        .filter(|&c| state.statuses[c].is_failed())
        .collect();
    failed.sort_by(|&a, &b| {
        priorities[b]
            .partial_cmp(&priorities[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for (rank, &c) in failed.iter().enumerate() {
        state.statuses[c] = if rank < crews {
            ComponentStatus::UnderRepair
        } else {
            ComponentStatus::WaitingForRepair
        };
    }
}

/// Assigns free crews of a repair unit to the highest-priority waiting
/// components (non-preemptive dispatch, FCFS tie-break).
fn dispatch(
    state: &mut GlobalState,
    ru: usize,
    members: &[ComponentIndex],
    crews: usize,
    priorities: &[f64],
) {
    loop {
        let busy = state.num_under_repair(members);
        if busy >= crews || state.queues[ru].is_empty() {
            return;
        }
        // Select the waiting component with the highest priority; the earliest
        // arrival wins ties (scan keeps the first maximum).
        let mut best_pos = 0;
        for (pos, &candidate) in state.queues[ru].iter().enumerate() {
            if priorities[candidate] > priorities[state.queues[ru][best_pos]] + 1e-12 {
                best_pos = pos;
            }
        }
        let chosen = state.queues[ru].remove(best_pos);
        state.statuses[chosen] = ComponentStatus::UnderRepair;
    }
}

/// Activates dormant spares while active capacity is missing and deactivates
/// surplus operational spares, keeping the number of service-providing
/// components of the group at the number of primaries whenever possible.
fn rebalance_spares(
    state: &mut GlobalState,
    primaries: &[ComponentIndex],
    spares: &[ComponentIndex],
) {
    let desired = primaries.len();
    loop {
        let active = primaries
            .iter()
            .chain(spares.iter())
            .filter(|&&c| state.statuses[c] == ComponentStatus::Operational)
            .count();
        if active < desired {
            // Activate the first dormant spare, if any.
            match spares
                .iter()
                .find(|&&s| state.statuses[s] == ComponentStatus::Dormant)
            {
                Some(&s) => state.statuses[s] = ComponentStatus::Operational,
                None => return,
            }
        } else if active > desired {
            // Deactivate the last operational spare.
            match spares
                .iter()
                .rev()
                .find(|&&s| state.statuses[s] == ComponentStatus::Operational)
            {
                Some(&s) => state.statuses[s] = ComponentStatus::Dormant,
                None => return,
            }
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::BasicComponent;
    use crate::model::ArcadeModel;
    use crate::repair::{RepairStrategy, RepairUnit};
    use crate::spare::SpareManagementUnit;
    use fault_tree::{StructureNode, SystemStructure};

    fn two_component_model(strategy: RepairStrategy, crews: usize) -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]));
        ArcadeModel::builder("two", structure)
            .component(
                BasicComponent::from_mttf_mttr("a", 100.0, 2.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .component(
                BasicComponent::from_mttf_mttr("b", 200.0, 4.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", strategy, crews)
                    .unwrap()
                    .responsible_for(["a", "b"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("both", ["a", "b"]).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn dedicated_two_components_has_four_states() {
        let model = two_component_model(RepairStrategy::Dedicated, 1);
        let compiled = CompiledModel::compile(&model).unwrap();
        assert_eq!(compiled.stats().num_states, 4);
        assert_eq!(compiled.stats().num_transitions, 8);
    }

    #[test]
    fn single_crew_fcfs_tracks_queue_order() {
        let model = two_component_model(RepairStrategy::FirstComeFirstServe, 1);
        let compiled = CompiledModel::compile(&model).unwrap();
        // States: both up; a under repair; b under repair; a under repair with b
        // waiting; b under repair with a waiting  ->  5 states.
        assert_eq!(compiled.stats().num_states, 5);
    }

    #[test]
    fn two_crews_remove_the_queue_orders() {
        let model = two_component_model(RepairStrategy::FirstComeFirstServe, 2);
        let compiled = CompiledModel::compile(&model).unwrap();
        // With two crews nothing ever waits: 4 states as in the dedicated case.
        assert_eq!(compiled.stats().num_states, 4);
    }

    #[test]
    fn frf_priority_canonical_merges_cross_priority_orders() {
        let model = two_component_model(RepairStrategy::FastestRepairFirst, 1);
        let canonical = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                queue_encoding: QueueEncoding::PriorityCanonical,
                ..Default::default()
            },
        )
        .unwrap();
        let arrival = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                queue_encoding: QueueEncoding::ArrivalOrder,
                ..Default::default()
            },
        )
        .unwrap();
        // Both encodings are valid; the canonical one may merge states but never
        // produce more.
        assert!(canonical.stats().num_states <= arrival.stats().num_states);
        assert_eq!(arrival.stats().num_states, 5);
    }

    #[test]
    fn state_space_limit_is_enforced() {
        let model = two_component_model(RepairStrategy::Dedicated, 1);
        let result = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                max_states: 2,
                ..Default::default()
            },
        );
        assert!(matches!(
            result,
            Err(ArcadeError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn labels_and_service_levels_are_consistent() {
        let model = two_component_model(RepairStrategy::Dedicated, 1);
        let compiled = CompiledModel::compile(&model).unwrap();
        for (idx, state) in compiled.states().iter().enumerate() {
            let any_failed = state.num_failed() > 0;
            assert_eq!(compiled.operational_mask()[idx], !any_failed);
            if any_failed {
                assert!(compiled.service_levels()[idx] < 1.0);
            } else {
                assert!((compiled.service_levels()[idx] - 1.0).abs() < 1e-12);
            }
        }
        let down = compiled.down_mask();
        assert_eq!(down.iter().filter(|&&b| b).count(), 3);
    }

    #[test]
    fn cost_rewards_match_the_cost_model() {
        let model = two_component_model(RepairStrategy::FirstComeFirstServe, 1);
        let compiled = CompiledModel::compile(&model).unwrap();
        for (idx, state) in compiled.states().iter().enumerate() {
            let failed = state.num_failed();
            let busy = state
                .statuses
                .iter()
                .filter(|s| **s == ComponentStatus::UnderRepair)
                .count();
            let expected = failed as f64 * 3.0 + (1 - busy.min(1)) as f64;
            assert!(
                (compiled.cost_rewards().state_rewards()[idx] - expected).abs() < 1e-12,
                "state {idx}: {state:?}"
            );
        }
    }

    #[test]
    fn initial_state_is_all_operational() {
        let model = two_component_model(RepairStrategy::FastestFailureFirst, 1);
        let compiled = CompiledModel::compile(&model).unwrap();
        let initial = &compiled.states()[compiled.initial_index()];
        assert!(initial
            .statuses
            .iter()
            .all(|s| *s == ComponentStatus::Operational));
        assert_eq!(
            compiled.chain().initial_distribution()[compiled.initial_index()],
            1.0
        );
    }

    #[test]
    fn disaster_state_lookup_finds_reachable_state() {
        let model = two_component_model(RepairStrategy::FirstComeFirstServe, 1);
        let compiled = CompiledModel::compile(&model).unwrap();
        let disaster = model.disaster("both").unwrap();
        let idx = compiled.disaster_state_index(disaster).unwrap();
        let state = &compiled.states()[idx];
        assert_eq!(state.num_failed(), 2);
        let good = compiled.chain_after_disaster(disaster).unwrap();
        assert_eq!(good.initial_distribution()[idx], 1.0);
    }

    #[test]
    fn unknown_disaster_component_is_rejected() {
        let model = two_component_model(RepairStrategy::FirstComeFirstServe, 1);
        let compiled = CompiledModel::compile(&model).unwrap();
        let rogue = Disaster::new("rogue", ["ghost"]).unwrap();
        assert!(matches!(
            compiled.disaster_state_index(&rogue),
            Err(ArcadeError::InvalidDisaster { .. })
        ));
    }

    #[test]
    fn preemptive_units_need_no_queue_and_ignore_crew_count_in_the_state_space() {
        // Three components with distinct repair rates under FRF.
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
            StructureNode::component("c"),
        ]));
        let build = |crews: usize, preemptive: bool| {
            let mut unit = RepairUnit::new("ru", RepairStrategy::FastestRepairFirst, crews)
                .unwrap()
                .responsible_for(["a", "b", "c"]);
            if preemptive {
                unit = unit.with_preemption();
            }
            ArcadeModel::builder("preemption", structure.clone())
                .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
                .component(BasicComponent::from_mttf_mttr("b", 100.0, 5.0).unwrap())
                .component(BasicComponent::from_mttf_mttr("c", 100.0, 25.0).unwrap())
                .repair_unit(unit)
                .build()
                .unwrap()
        };

        let preemptive_1 = CompiledModel::compile(&build(1, true)).unwrap();
        let preemptive_2 = CompiledModel::compile(&build(2, true)).unwrap();
        // Which component is served is a function of the failed set, so the
        // state space is exactly the 2^3 component cross product for any crew count.
        assert_eq!(preemptive_1.stats().num_states, 8);
        assert_eq!(preemptive_2.stats().num_states, 8);
        assert!(preemptive_2.stats().num_transitions > preemptive_1.stats().num_transitions);
        for state in preemptive_1.states() {
            assert!(
                state.queues.iter().all(Vec::is_empty),
                "preemptive units keep no queue"
            );
        }

        // The non-preemptive variant needs queue orders, so it is strictly larger.
        let non_preemptive_1 = CompiledModel::compile(&build(1, false)).unwrap();
        assert!(non_preemptive_1.stats().num_states > 8);

        // In every preemptive single-crew state the component under repair is
        // the failed one with the highest repair rate.
        for state in preemptive_1.states() {
            let failed: Vec<usize> = (0..3).filter(|&c| state.statuses[c].is_failed()).collect();
            if failed.is_empty() {
                continue;
            }
            let under_repair: Vec<usize> = (0..3)
                .filter(|&c| state.statuses[c] == ComponentStatus::UnderRepair)
                .collect();
            assert_eq!(under_repair.len(), 1);
            // Component "a" has the highest repair rate, then "b", then "c".
            assert_eq!(under_repair[0], *failed.iter().min().unwrap());
        }
    }

    fn two_identical_component_model(strategy: RepairStrategy, crews: usize) -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::redundant(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]));
        ArcadeModel::builder("twins", structure)
            .component(
                BasicComponent::from_mttf_mttr("a", 100.0, 2.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .component(
                BasicComponent::from_mttf_mttr("b", 100.0, 2.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", strategy, crews)
                    .unwrap()
                    .responsible_for(["a", "b"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("both", ["a", "b"]).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn compositional_mode_explores_canonical_orbits() {
        // Two interchangeable components behind one FCFS crew: the flat chain
        // distinguishes which twin is under repair and the queue order (5
        // states); the canonical frontier explores one representative per
        // orbit (all-up, one under repair, one under repair + one waiting).
        let model = two_identical_component_model(RepairStrategy::FirstComeFirstServe, 1);
        let flat = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                lumping: LumpingMode::Disabled,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(flat.stats().num_states, 5);

        let compositional = CompiledModel::compile(&model).unwrap();
        let stats = compositional.stats();
        assert_eq!(stats.num_states, 3);
        assert_eq!(stats.lumped_states, Some(3));
        assert_eq!(stats.subchains.len(), 1);
        assert_eq!(stats.subchains[0].members, vec!["a", "b"]);
        assert_eq!(stats.subchains[0].local_blocks, 6); // multisets of 3 statuses
        assert_eq!(stats.subchain_state_bound, Some(6));

        // The parallel failure events aggregate their rates: from all-up the
        // orbit "one failed" is entered at twice the per-component rate.
        let initial = compositional.initial_index();
        let chain = compositional.chain();
        let total_rate: f64 = {
            let (_, values) = chain.rate_matrix().row(initial);
            values.iter().sum()
        };
        assert!((total_rate - 2.0 / 100.0).abs() < 1e-12, "{total_rate}");
    }

    #[test]
    fn compositional_disaster_states_resolve_to_canonical_orbits() {
        let model = two_identical_component_model(RepairStrategy::FirstComeFirstServe, 1);
        let compositional = CompiledModel::compile(&model).unwrap();
        let disaster = model.disaster("both").unwrap();
        let index = compositional.disaster_state_index(disaster).unwrap();
        let state = &compositional.states()[index];
        assert_eq!(state.num_failed(), 2);
        // The canonical representative assigns the waiting role to the first
        // member and the under-repair role to the second.
        assert_eq!(state.statuses[0], ComponentStatus::WaitingForRepair);
        assert_eq!(state.statuses[1], ComponentStatus::UnderRepair);
    }

    #[test]
    fn subtree_orbits_fold_twin_redundant_groups() {
        // series( redundant(a, b), redundant(c, d) ), all four components
        // identical behind one FCFS crew: besides the two leaf families the
        // canonical frontier may swap the whole groups. The flat chain
        // distinguishes which group holds which role multiset; the canonical
        // chain only keeps the sorted pair of group roles.
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(vec![
                StructureNode::component("a"),
                StructureNode::component("b"),
            ]),
            StructureNode::redundant(vec![
                StructureNode::component("c"),
                StructureNode::component("d"),
            ]),
        ]));
        let model = ArcadeModel::builder("twins", structure)
            .components(
                ["a", "b", "c", "d"]
                    .map(|n| BasicComponent::from_mttf_mttr(n, 100.0, 2.0).unwrap()),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a", "b", "c", "d"])
                    .with_idle_cost(1.0),
            )
            .build()
            .unwrap();

        let flat = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                lumping: LumpingMode::Disabled,
                ..Default::default()
            },
        )
        .unwrap();
        let compositional = CompiledModel::compile(&model).unwrap();
        let stats = compositional.stats();
        assert!(
            stats.num_states < flat.stats().num_states,
            "orbit frontier must beat the flat chain: {} vs {}",
            stats.num_states,
            flat.stats().num_states
        );
        assert_eq!(stats.subtree_orbits.len(), 1);
        assert_eq!(
            stats.subtree_orbits[0].blocks,
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string(), "d".to_string()]
            ]
        );
        // The canonical chain is exactly the coarsest quotient: the final
        // exact pass finds nothing left to merge.
        assert_eq!(stats.lumped_states, Some(stats.num_states));
        // Availability agrees with the flat chain (the orbit is exact).
        let flat_pi = ctmc::SteadyStateSolver::new(flat.chain()).solve().unwrap();
        let orbit_pi = ctmc::SteadyStateSolver::new(compositional.chain())
            .solve()
            .unwrap();
        let up = |mask: &[bool], pi: &[f64]| -> f64 {
            pi.iter()
                .zip(mask.iter())
                .filter(|(_, &m)| m)
                .map(|(p, _)| p)
                .sum()
        };
        let flat_avail = up(flat.operational_mask(), &flat_pi);
        let orbit_avail = up(compositional.operational_mask(), &orbit_pi);
        assert!(
            (flat_avail - orbit_avail).abs() < 1e-9,
            "{flat_avail} vs {orbit_avail}"
        );
    }

    #[test]
    fn compositional_mode_is_inert_without_symmetry() {
        // Components with distinct rates have no interchangeable partner, so
        // the canonical chain equals the flat chain.
        let model = two_component_model(RepairStrategy::FirstComeFirstServe, 1);
        let compositional = CompiledModel::compile(&model).unwrap();
        let flat = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                lumping: LumpingMode::Disabled,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(compositional.stats().num_states, flat.stats().num_states);
        assert!(compositional
            .stats()
            .subchains
            .iter()
            .all(|s| s.members.len() == 1));
    }

    #[test]
    fn initially_failed_component_starts_under_repair() {
        let structure = SystemStructure::new(StructureNode::component("a"));
        let model = ArcadeModel::builder("m", structure)
            .component(
                BasicComponent::from_mttf_mttr("a", 10.0, 1.0)
                    .unwrap()
                    .initially_failed(),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a"]),
            )
            .build()
            .unwrap();
        let compiled = CompiledModel::compile(&model).unwrap();
        let initial = &compiled.states()[compiled.initial_index()];
        assert_eq!(initial.statuses[0], ComponentStatus::UnderRepair);
    }

    #[test]
    fn cold_spare_is_dormant_until_needed() {
        // Primary "p" with cold spare "s"; service requires one of them.
        let structure = SystemStructure::new(StructureNode::required_of(
            1,
            vec![StructureNode::component("p"), StructureNode::component("s")],
        ));
        let model = ArcadeModel::builder("spares", structure)
            .component(BasicComponent::from_mttf_mttr("p", 100.0, 1.0).unwrap())
            .component(
                BasicComponent::from_mttf_mttr("s", 100.0, 1.0)
                    .unwrap()
                    .with_dormancy_factor(0.0),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["p", "s"]),
            )
            .spare_unit(SpareManagementUnit::new("smu", ["p"], ["s"]).unwrap())
            .build()
            .unwrap();
        let compiled = CompiledModel::compile(&model).unwrap();
        let initial = &compiled.states()[compiled.initial_index()];
        assert_eq!(initial.statuses[1], ComponentStatus::Dormant);
        // The spare only fails once activated, so the state space is small:
        // (p up, s dormant), (p failed+under repair, s active),
        // (p under repair, s failed waiting), (p up, s under repair, back to dormant p active)...
        // What matters: no state has the spare failed while the primary never failed first.
        for state in compiled.states() {
            if state.statuses[1].is_failed() {
                // The spare can only have failed after it was activated, which
                // requires the primary to have been failed at some point; in
                // particular the initial state is excluded.
                assert!(state != initial);
            }
        }
        // Full service whenever one of the two provides service.
        for (idx, state) in compiled.states().iter().enumerate() {
            let expected = state.statuses.iter().any(|s| s.provides_service());
            assert_eq!(compiled.service_levels()[idx] > 0.99, expected);
        }
    }
}
