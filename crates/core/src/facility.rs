//! Multi-line facilities: composition of per-line lumped chains.
//!
//! The composer and [`crate::Analysis`] map *one* model to *one* chain. This
//! module generalises that pipeline to the paper's headline object — a
//! facility of several process lines — as
//!
//! ```text
//! facility model ──► set of line chains ──► facility product
//! ```
//!
//! Every line is compiled and lumped on its own; the facility chain is then
//! the product of the per-line *quotients* (`arcade_lumping::product`): joint
//! states are tuples of block ids and the joint generator is the Kronecker
//! sum. For the water-treatment facility this is Line 1 × Line 2 =
//! 449 × 257 ≈ 115k blocks instead of the ≈ 9×10⁸ flat product.
//!
//! # Independence versus coupling
//!
//! The product construction is exact only while the lines evolve
//! independently. [`FacilityModel::composition_tree`] records how each
//! coupling is handled:
//!
//! * **A shared repair unit** (the same unit name appearing in several lines)
//!   makes failure/repair scheduling in one line depend on the other line's
//!   queue — the joint process is *not* a product of per-line Markov chains.
//!   The coupled lines are merged into one [`CompositionGroup`] and explored
//!   **jointly** (with `line/component` prefixed names); the facility chain
//!   is then the product over *groups*.
//! * **A cross-line disaster** (a [`FacilityModel`] disaster naming
//!   components of several lines) leaves the dynamics independent — the
//!   product chain stays exact, started from the tuple of per-line disaster
//!   blocks — but it invalidates the *scalar* product-form shortcuts such as
//!   `A = A1 + A2 − A1·A2`: measures conditioned on such a disaster are
//!   evaluated on the materialised product instead.
//!
//! Within a group the solvers run on the group's exact quotient whenever the
//! per-line masks are unions of blocks (always true for singleton groups,
//! whose quotient respects the line's own labels); otherwise the group falls
//! back to its flat chain — correctness never depends on the quotient being
//! usable.

use std::collections::{BTreeMap, HashMap};

use arcade_lumping::{lump, InitialPartition, ProductOrbit, QuotientProduct};
use arcade_symmetry::chain::group_identical_chains;
use arcade_symmetry::orbit::{for_each_multiset, FactorClasses};
use ctmc::{
    Ctmc, CtmcError, ExecOptions, OperatorSteadyStateMethod, OperatorSteadyStateSolver,
    OperatorTransientSolver, RewardStructure, SteadyStateSolver, TransientOptions,
};

use crate::composer::{CompiledModel, ComposerOptions, StateSpaceStats};
use crate::disaster::Disaster;
use crate::error::ArcadeError;
use crate::measures::{FacilityMeasure, MeasureResult};
use crate::model::ArcadeModel;
use crate::quotient::CompiledQuotient;
use crate::repair::{RepairStrategy, RepairUnit};
use crate::spare::SpareManagementUnit;
use fault_tree::{StructureNode, SystemStructure};

/// One named process line of a facility.
#[derive(Debug, Clone)]
pub struct FacilityLine {
    name: String,
    model: ArcadeModel,
}

impl FacilityLine {
    /// The line's name (the prefix used in merged namespaces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The line's Arcade model.
    pub fn model(&self) -> &ArcadeModel {
        &self.model
    }
}

/// A disaster at facility scope: components of one *or several* lines fail
/// simultaneously. Components are addressed as `(line, component)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct FacilityDisaster {
    name: String,
    components: Vec<(String, String)>,
}

impl FacilityDisaster {
    /// Creates a facility disaster.
    pub fn new(
        name: impl Into<String>,
        components: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
    ) -> Self {
        FacilityDisaster {
            name: name.into(),
            components: components
                .into_iter()
                .map(|(line, component)| (line.into(), component.into()))
                .collect(),
        }
    }

    /// The disaster's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The failed `(line, component)` pairs.
    pub fn components(&self) -> &[(String, String)] {
        &self.components
    }

    /// The distinct lines this disaster touches, in first-mention order.
    pub fn lines(&self) -> Vec<&str> {
        let mut lines: Vec<&str> = Vec::new();
        for (line, _) in &self.components {
            if !lines.contains(&line.as_str()) {
                lines.push(line);
            }
        }
        lines
    }

    /// Whether the disaster spans more than one line.
    pub fn is_cross_line(&self) -> bool {
        self.lines().len() > 1
    }
}

/// How the facility chain is assembled from the lines: the partition of the
/// lines into independently-evolving groups, plus the list of cross-line
/// disasters that force joint (materialised-product) evaluation of the
/// measures conditioned on them.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionTree {
    /// The groups, ordered by their smallest line index.
    pub groups: Vec<CompositionGroup>,
    /// Names of the facility disasters spanning more than one line.
    pub cross_line_disasters: Vec<String>,
}

/// One node of the composition tree: a maximal set of lines coupled through
/// shared repair units. Singleton groups are independent lines composed as
/// pure product factors; larger groups are explored jointly.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionGroup {
    /// Indices of the member lines.
    pub lines: Vec<usize>,
    /// The repair-unit names shared between member lines (empty for
    /// independent lines).
    pub shared_units: Vec<String>,
}

impl CompositionGroup {
    /// Whether this group needs joint exploration (more than one line).
    pub fn is_joint(&self) -> bool {
        self.lines.len() > 1
    }
}

/// A facility: a set of named lines plus facility-scope disasters.
#[derive(Debug, Clone)]
pub struct FacilityModel {
    name: String,
    lines: Vec<FacilityLine>,
    disasters: Vec<FacilityDisaster>,
    tree: CompositionTree,
}

/// Builder for [`FacilityModel`].
#[derive(Debug, Clone)]
pub struct FacilityModelBuilder {
    name: String,
    lines: Vec<FacilityLine>,
    disasters: Vec<FacilityDisaster>,
}

impl FacilityModel {
    /// Starts building a facility.
    pub fn builder(name: impl Into<String>) -> FacilityModelBuilder {
        FacilityModelBuilder {
            name: name.into(),
            lines: Vec::new(),
            disasters: Vec::new(),
        }
    }

    /// The facility name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lines, in definition order.
    pub fn lines(&self) -> &[FacilityLine] {
        &self.lines
    }

    /// Index of a line by name.
    pub fn line_index(&self, name: &str) -> Option<usize> {
        self.lines.iter().position(|line| line.name == name)
    }

    /// The facility-scope disasters.
    pub fn disasters(&self) -> &[FacilityDisaster] {
        &self.disasters
    }

    /// Looks up a disaster by name.
    pub fn disaster(&self, name: &str) -> Option<&FacilityDisaster> {
        self.disasters.iter().find(|d| d.name == name)
    }

    /// The detected composition tree: which lines compose as pure product
    /// factors and which must be explored jointly (see the module docs).
    pub fn composition_tree(&self) -> &CompositionTree {
        &self.tree
    }
}

impl FacilityModelBuilder {
    /// Adds a line. The name becomes the `line/component` prefix in merged
    /// namespaces and product labels.
    pub fn line(mut self, name: impl Into<String>, model: ArcadeModel) -> Self {
        self.lines.push(FacilityLine {
            name: name.into(),
            model,
        });
        self
    }

    /// Adds a facility-scope disaster.
    pub fn disaster(mut self, disaster: FacilityDisaster) -> Self {
        self.disasters.push(disaster);
        self
    }

    /// Validates the facility and detects the composition tree.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidParameter`] for structural problems
    /// (no lines, duplicate names) and [`ArcadeError::UnknownComponent`] for
    /// dangling disaster references.
    pub fn build(self) -> Result<FacilityModel, ArcadeError> {
        if self.lines.is_empty() {
            return Err(ArcadeError::InvalidParameter {
                reason: "a facility needs at least one line".to_string(),
            });
        }
        for (i, line) in self.lines.iter().enumerate() {
            if line.name.is_empty() {
                return Err(ArcadeError::InvalidParameter {
                    reason: "line names must be non-empty".to_string(),
                });
            }
            if self.lines[..i].iter().any(|other| other.name == line.name) {
                return Err(ArcadeError::InvalidParameter {
                    reason: format!("duplicate line name `{}`", line.name),
                });
            }
        }
        for (i, disaster) in self.disasters.iter().enumerate() {
            if self.disasters[..i].iter().any(|d| d.name == disaster.name) {
                return Err(ArcadeError::InvalidParameter {
                    reason: format!("duplicate facility disaster `{}`", disaster.name),
                });
            }
            for (line, component) in &disaster.components {
                let line_model = self.lines.iter().find(|l| &l.name == line).ok_or_else(|| {
                    ArcadeError::InvalidParameter {
                        reason: format!(
                            "facility disaster `{}` references unknown line `{line}`",
                            disaster.name
                        ),
                    }
                })?;
                if line_model.model.component(component).is_none() {
                    return Err(ArcadeError::UnknownComponent {
                        name: component.clone(),
                        referenced_by: format!("facility disaster `{}`", disaster.name),
                    });
                }
            }
        }
        let tree = detect_composition_tree(&self.lines, &self.disasters);
        Ok(FacilityModel {
            name: self.name,
            lines: self.lines,
            disasters: self.disasters,
            tree,
        })
    }
}

/// Union-find grouping of the lines by shared repair-unit names.
fn detect_composition_tree(
    lines: &[FacilityLine],
    disasters: &[FacilityDisaster],
) -> CompositionTree {
    let mut parent: Vec<usize> = (0..lines.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // Map repair-unit name -> lines using it; same name in two lines = one
    // shared physical unit.
    let mut unit_lines: HashMap<&str, Vec<usize>> = HashMap::new();
    for (index, line) in lines.iter().enumerate() {
        for unit in line.model.repair_units() {
            unit_lines.entry(unit.name()).or_default().push(index);
        }
    }
    let mut shared: Vec<(&str, Vec<usize>)> = unit_lines
        .into_iter()
        .filter(|(_, users)| users.len() > 1)
        .collect();
    shared.sort_unstable_by(|a, b| a.0.cmp(b.0));
    for (_, users) in &shared {
        for &user in &users[1..] {
            let a = find(&mut parent, users[0]);
            let b = find(&mut parent, user);
            if a != b {
                parent[b.max(a)] = b.min(a);
            }
        }
    }

    let mut groups: Vec<CompositionGroup> = Vec::new();
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for index in 0..lines.len() {
        let root = find(&mut parent, index);
        match group_of.get(&root) {
            Some(&g) => groups[g].lines.push(index),
            None => {
                group_of.insert(root, groups.len());
                groups.push(CompositionGroup {
                    lines: vec![index],
                    shared_units: Vec::new(),
                });
            }
        }
    }
    for (name, users) in shared {
        let g = group_of[&find(&mut parent, users[0])];
        groups[g].shared_units.push(name.to_string());
    }

    CompositionTree {
        groups,
        cross_line_disasters: disasters
            .iter()
            .filter(|d| d.is_cross_line())
            .map(|d| d.name.clone())
            .collect(),
    }
}

/// The `line/component` namespace used by merged groups and product labels.
fn qualified(line: &str, component: &str) -> String {
    format!("{line}/{component}")
}

/// Recursively prefixes every component leaf of a structure tree.
fn prefix_structure(node: &StructureNode, line: &str) -> StructureNode {
    match node {
        StructureNode::Component(name) => StructureNode::component(qualified(line, name)),
        StructureNode::Series(children) => {
            StructureNode::series(children.iter().map(|c| prefix_structure(c, line)).collect())
        }
        StructureNode::Redundant(children) => {
            StructureNode::redundant(children.iter().map(|c| prefix_structure(c, line)).collect())
        }
        StructureNode::RequiredOf { required, children } => StructureNode::required_of(
            *required,
            children.iter().map(|c| prefix_structure(c, line)).collect(),
        ),
    }
}

/// Rebuilds a component under a new (prefixed) name.
fn renamed_component(
    component: &crate::component::BasicComponent,
    name: String,
) -> Result<crate::component::BasicComponent, ArcadeError> {
    let mut out = crate::component::BasicComponent::from_rates(
        name,
        component.failure_rate(),
        component.repair_rate(),
    )?
    .with_failed_cost(component.failed_cost_per_hour())
    .with_operational_cost(component.operational_cost_per_hour())
    .with_dormancy_factor(component.dormancy_factor());
    if component.is_initially_failed() {
        out = out.initially_failed();
    }
    Ok(out)
}

/// Builds the joint model of a coupled group: every component, spare unit and
/// disaster moves into the `line/…` namespace; repair units appearing in
/// several lines are merged into one unit responsible for the union of their
/// (prefixed) members. The group structure puts the line structures under one
/// redundant (capacity-sharing) gate, matching the facility's parallel lines.
fn merged_group_model(
    group_name: &str,
    members: &[&FacilityLine],
) -> Result<ArcadeModel, ArcadeError> {
    let structure = SystemStructure::new(StructureNode::redundant(
        members
            .iter()
            .map(|line| prefix_structure(line.model.structure().root(), &line.name))
            .collect(),
    ));
    let mut builder = ArcadeModel::builder(group_name, structure);

    for line in members {
        for component in line.model.components() {
            builder = builder.component(renamed_component(
                component,
                qualified(&line.name, component.name()),
            )?);
        }
        // The facility evaluates *per-line* masks on the group chain, so the
        // isomorphic-subtree reduction must never exchange components across
        // lines — even when the member lines are identical models. One
        // symmetry guard per line pins that boundary.
        builder = builder.symmetry_guard(
            line.model
                .components()
                .iter()
                .map(|component| qualified(&line.name, component.name())),
        );
    }

    // Repair units, merged by name across the member lines.
    let mut merged_units: Vec<(String, RepairUnit, Vec<String>)> = Vec::new();
    for line in members {
        for unit in line.model.repair_units() {
            let prefixed: Vec<String> = unit
                .components()
                .iter()
                .map(|c| qualified(&line.name, c))
                .collect();
            match merged_units
                .iter_mut()
                .find(|(name, _, _)| name == unit.name())
            {
                Some((_, reference, responsibilities)) => {
                    if reference.strategy() != unit.strategy()
                        || reference.crews() != unit.crews()
                        || reference.is_preemptive() != unit.is_preemptive()
                        || reference.idle_cost_per_hour() != unit.idle_cost_per_hour()
                        || reference.busy_cost_per_hour() != unit.busy_cost_per_hour()
                    {
                        return Err(ArcadeError::InvalidParameter {
                            reason: format!(
                                "shared repair unit `{}` is configured differently across lines",
                                unit.name()
                            ),
                        });
                    }
                    responsibilities.extend(prefixed);
                }
                None => {
                    if matches!(unit.strategy(), RepairStrategy::Priority(_)) {
                        return Err(ArcadeError::InvalidParameter {
                            reason: format!(
                                "repair unit `{}` uses a static priority list, which is \
                                 ambiguous in a merged line namespace",
                                unit.name()
                            ),
                        });
                    }
                    merged_units.push((unit.name().to_string(), (*unit).clone(), prefixed));
                }
            }
        }
    }
    for (name, reference, responsibilities) in merged_units {
        let mut unit = RepairUnit::new(name, reference.strategy().clone(), reference.crews())?
            .responsible_for(responsibilities)
            .with_idle_cost(reference.idle_cost_per_hour())
            .with_busy_cost(reference.busy_cost_per_hour());
        if reference.is_preemptive() {
            unit = unit.with_preemption();
        }
        builder = builder.repair_unit(unit);
    }

    for line in members {
        for smu in line.model.spare_units() {
            builder = builder.spare_unit(SpareManagementUnit::new(
                qualified(&line.name, smu.name()),
                smu.primaries().iter().map(|c| qualified(&line.name, c)),
                smu.spares().iter().map(|c| qualified(&line.name, c)),
            )?);
        }
        // Per-line disasters stay reachable under their qualified names.
        for disaster in line.model.disasters() {
            builder = builder.disaster(Disaster::new(
                qualified(&line.name, disaster.name()),
                disaster
                    .failed_components()
                    .iter()
                    .map(|c| qualified(&line.name, c)),
            )?);
        }
    }

    builder.build()
}

/// Data of one compiled composition group, with its per-line metadata mapped
/// onto the chain the solvers actually run on.
#[derive(Debug, Clone)]
struct CompiledGroup {
    /// Facility line indices of the members.
    lines: Vec<usize>,
    /// Display name (`line1` or `line1+line2`).
    label: String,
    compiled: CompiledModel,
    /// Whether the solvers run on the group's exact quotient (true whenever
    /// every per-line mask projects to blocks) or on the flat group chain.
    use_quotient: bool,
    /// Per member line: "line fully operational" on the solver chain.
    line_operational: Vec<Vec<bool>>,
    /// Per member line: the line's service level on the solver chain.
    line_service: Vec<Vec<f64>>,
}

impl CompiledGroup {
    /// The chain this group's measures are solved on.
    fn solver_chain(&self) -> &Ctmc {
        match (self.use_quotient, self.compiled.lumped()) {
            (true, Some(lumped)) => lumped.quotient(),
            _ => self.compiled.chain(),
        }
    }

    /// The cost rewards matching [`CompiledGroup::solver_chain`].
    fn solver_cost_rewards(&self) -> &RewardStructure {
        match (self.use_quotient, self.compiled.lumped()) {
            (true, Some(lumped)) => lumped.cost_rewards(),
            _ => self.compiled.cost_rewards(),
        }
    }

    /// Mask of solver-chain states in which at least one member line is
    /// fully operational.
    fn any_line_operational(&self) -> Vec<bool> {
        let mut out = vec![false; self.solver_chain().num_states()];
        for mask in &self.line_operational {
            for (slot, &up) in out.iter_mut().zip(mask.iter()) {
                *slot |= up;
            }
        }
        out
    }

    /// The solver-chain state the group occupies right after `disaster`
    /// (its regular initial state when the disaster does not touch it).
    fn start_state(&self, disaster: Option<&Disaster>) -> Result<usize, ArcadeError> {
        let flat = match disaster {
            Some(disaster) => self.compiled.disaster_state_index(disaster)?,
            None => self.compiled.initial_index(),
        };
        Ok(match (self.use_quotient, self.compiled.lumped()) {
            (true, Some(lumped)) => lumped.lumping().block_of(flat),
            _ => flat,
        })
    }
}

/// Per-line and product-level state-space statistics of a compiled facility
/// (the multi-line generalisation of [`StateSpaceStats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FacilityStats {
    /// One entry per line, in facility definition order.
    pub lines: Vec<FacilityLineStats>,
    /// Number of joint product states: the product of the per-group solver
    /// chain sizes (the `449 × 257` of the paper's facility).
    pub joint_blocks: usize,
    /// Number of joint transitions of the Kronecker sum.
    pub joint_transitions: usize,
    /// Number of sorted-tuple orbit representatives when some groups'
    /// quotients are interchangeable (identical chains, matched under the
    /// symmetry engine's presentation code); `None` without factor symmetry.
    /// Two identical factors of `n` blocks fold to `n(n+1)/2` orbits.
    pub orbit_blocks: Option<usize>,
}

/// The statistics of one line within a compiled facility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FacilityLineStats {
    /// The line name.
    pub line: String,
    /// Index of the composition group the line landed in.
    pub group: usize,
    /// Whether the line was explored jointly with coupled lines.
    pub jointly_explored: bool,
    /// The composition statistics of the line's group: pre-lump exploration
    /// counts, per-line quotient blocks and the sub-chain breakdown. Lines of
    /// a joint group share their group's statistics.
    pub stats: StateSpaceStats,
}

/// Result of solving the *genuine joint chain* of a facility (as opposed to
/// the per-group product form).
#[derive(Debug, Clone, PartialEq)]
pub struct JointAvailability {
    /// Probability that at least one line is fully operational, from the
    /// stationary distribution of the materialised joint chain.
    pub availability: f64,
    /// Matrix-free balance residual of the joint stationary vector against
    /// the Kronecker-sum generator: the certificate that the vector is
    /// stationary for the joint chain.
    pub residual: f64,
    /// Number of joint product states (the unreduced tuple count).
    pub joint_states: usize,
    /// Number of joint transitions of the unreduced product.
    pub joint_transitions: usize,
    /// Number of states of the chain the solver actually ran on: the orbit
    /// quotient under factor symmetry, the full product otherwise.
    pub solved_states: usize,
    /// Name of the solver tier that produced the vector:
    /// `"gs-materialised"` for the materialised Gauss–Seidel path,
    /// `"krylov-operator"` / `"jacobi-operator"` for the matrix-free path.
    pub solver_tier: String,
    /// Iterations (matrix sweeps for the materialised path, operator applies
    /// for the matrix-free path) the solver spent.
    pub iterations: usize,
}

/// Result of the **orbit-enumeration tier**: facility availability computed
/// by walking the canonical orbit representatives of the per-group product
/// under the stationary product measure — without ever materialising the flat
/// product or even the orbit quotient. This is what makes `k = 4` identical
/// lines (an 84.9-million-state product) tractable: only the
/// `C(n + k − 1, k)` sorted multisets per interchangeability class are
/// visited, one at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct OrbitAvailability {
    /// Probability that at least one line is fully operational, exact for
    /// the independent-group product measure: `1 − Π_class (no-line-up mass
    /// of the class)` where each class mass is accumulated over its orbit
    /// representatives weighted by orbit size × product of local stationary
    /// probabilities.
    pub availability: f64,
    /// Orbit count bound, `Π_class C(n_c + k_c − 1, k_c)` (saturating) — the
    /// number the enumeration is a priori committed to.
    pub orbit_bound: usize,
    /// Representatives actually visited (saturating product over classes).
    /// Equals `orbit_bound` when no class saturates: every orbit is
    /// accounted for exactly once.
    pub orbits_explored: usize,
    /// Total probability mass accumulated over the enumeration, `Π_class
    /// Σ_orbits mass`. By the multinomial theorem this is exactly
    /// `Π_class (Σ π)^{k_c} ≈ 1` — the certificate that no orbit was missed
    /// or double-counted.
    pub total_mass: f64,
}

/// The reduction ladder of a facility's joint chain: raw product tuples →
/// sorted-tuple orbit representatives (factor symmetry) → the solver chain,
/// together with the exact-lumping minimality certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointReduction {
    /// Raw product states (`449 × 257` for FRF-1 × FRF-1).
    pub product_blocks: usize,
    /// Raw product transitions of the Kronecker sum.
    pub product_transitions: usize,
    /// Orbit representatives after folding interchangeable factors; `None`
    /// without factor symmetry.
    pub orbit_blocks: Option<usize>,
    /// States of the chain the joint measures actually solve on (the orbit
    /// quotient under factor symmetry, the full product otherwise).
    pub solver_blocks: usize,
    /// Transitions of that chain.
    pub solver_transitions: usize,
    /// Blocks of the coarsest ordinarily-lumpable quotient of the solver
    /// chain respecting the facility observations — the minimality
    /// certificate: equality with `solver_blocks` proves no further sound
    /// reduction exists for these measures.
    pub exact_blocks: usize,
}

/// Evaluates facility-level measures: per-line chains composed into the
/// quotient product, with product-form shortcuts where independence allows
/// and genuine joint solves where it does not (or for validation).
#[derive(Debug, Clone)]
pub struct FacilityAnalysis<'a> {
    model: &'a FacilityModel,
    groups: Vec<CompiledGroup>,
    options: ComposerOptions,
    /// Stationary distribution of every group's solver chain, computed on
    /// first use and shared by all steady-state measures (the chains are
    /// immutable, so one solve serves them all).
    stationaries: std::sync::OnceLock<Vec<Vec<f64>>>,
    /// The joint chain, built on first use and shared by every joint
    /// measure: the quotient product, its sorted-tuple orbit fold (when
    /// groups are interchangeable), the materialised chain and the facility
    /// observations on it. Measures no longer re-materialise the product per
    /// call.
    joint: std::sync::OnceLock<JointCache>,
    /// The reduction ladder incl. the exact-lumping minimality certificate
    /// (a full partition-refinement pass), computed only when asked for.
    reduction: std::sync::OnceLock<JointReduction>,
}

/// Everything the joint measures share (see `FacilityAnalysis::joint`).
#[derive(Debug, Clone)]
struct JointCache {
    product: QuotientProduct,
    /// The factor-symmetry orbit fold; `None` when all groups differ.
    orbit: Option<ProductOrbit>,
    /// The solver-ready artifact every joint measure runs on: the
    /// materialised chain (the orbit quotient under factor symmetry, the
    /// full product otherwise) plus the facility observations and the
    /// precomputed disaster start blocks. Survivability and cost measures
    /// delegate to its methods, so an externally cached artifact answers
    /// them bit-identically to this analysis.
    quotient: CompiledQuotient,
}

impl<'a> FacilityAnalysis<'a> {
    /// Compiles every composition group with default options.
    ///
    /// # Errors
    ///
    /// Propagates composition errors.
    pub fn new(model: &'a FacilityModel) -> Result<Self, ArcadeError> {
        Self::with_options(model, ComposerOptions::default())
    }

    /// Compiles every composition group with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates composition errors.
    pub fn with_options(
        model: &'a FacilityModel,
        options: ComposerOptions,
    ) -> Result<Self, ArcadeError> {
        let mut groups = Vec::new();
        for group in &model.composition_tree().groups {
            let members: Vec<&FacilityLine> =
                group.lines.iter().map(|&i| &model.lines()[i]).collect();
            let label = members
                .iter()
                .map(|line| line.name.clone())
                .collect::<Vec<_>>()
                .join("+");
            let (compiled, line_masks) = if group.is_joint() {
                let merged = merged_group_model(&label, &members)?;
                let compiled = CompiledModel::compile_with(&merged, options)?;
                let masks = per_line_masks(&compiled, &members)?;
                (compiled, masks)
            } else {
                let compiled = CompiledModel::compile_with(&members[0].model, options)?;
                let masks = vec![(
                    compiled.operational_mask().to_vec(),
                    compiled.service_levels().to_vec(),
                )];
                (compiled, masks)
            };

            // Map the per-line metadata onto the solver chain: the quotient
            // when every mask is a union of blocks, the flat chain otherwise.
            let mut use_quotient = false;
            let mut line_operational: Vec<Vec<bool>> = Vec::new();
            let mut line_service: Vec<Vec<f64>> = Vec::new();
            if let Some(lumped) = compiled.lumped() {
                let projected: Result<(Vec<_>, Vec<_>), _> = line_masks
                    .iter()
                    .map(|(mask, service)| {
                        Ok::<_, arcade_lumping::LumpError>((
                            lumped.lumping().project_mask(mask)?,
                            lumped.lumping().project_values(service)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|pairs| pairs.into_iter().unzip());
                if let Ok((masks, services)) = projected {
                    use_quotient = true;
                    line_operational = masks;
                    line_service = services;
                }
            }
            if !use_quotient {
                for (mask, service) in &line_masks {
                    line_operational.push(mask.clone());
                    line_service.push(service.clone());
                }
            }

            groups.push(CompiledGroup {
                lines: group.lines.clone(),
                label,
                compiled,
                use_quotient,
                line_operational,
                line_service,
            });
        }
        Ok(FacilityAnalysis {
            model,
            groups,
            options,
            stationaries: std::sync::OnceLock::new(),
            joint: std::sync::OnceLock::new(),
            reduction: std::sync::OnceLock::new(),
        })
    }

    /// The facility under analysis.
    pub fn model(&self) -> &FacilityModel {
        self.model
    }

    /// The composition options used for every group.
    pub fn options(&self) -> ComposerOptions {
        self.options
    }

    fn exec(&self) -> ExecOptions {
        self.options.exec
    }

    /// The compiled chain of one composition group (the group of `line` when
    /// queried by line index via [`FacilityAnalysis::group_of_line`]).
    pub fn group_chain(&self, group: usize) -> &Ctmc {
        self.groups[group].solver_chain()
    }

    /// The group index a line landed in.
    pub fn group_of_line(&self, line: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.lines.contains(&line))
            .expect("every line belongs to exactly one group")
    }

    /// Per-line and product-level state-space statistics.
    pub fn stats(&self) -> FacilityStats {
        let lines = self
            .model
            .lines()
            .iter()
            .enumerate()
            .map(|(index, line)| {
                let group = self.group_of_line(index);
                FacilityLineStats {
                    line: line.name.clone(),
                    group,
                    jointly_explored: self.groups[group].lines.len() > 1,
                    stats: self.groups[group].compiled.stats(),
                }
            })
            .collect();
        let joint_blocks = self.groups.iter().fold(1usize, |acc, g| {
            acc.saturating_mul(g.solver_chain().num_states())
        });
        let joint_transitions = self
            .groups
            .iter()
            .map(|g| {
                g.solver_chain()
                    .num_transitions()
                    .saturating_mul(joint_blocks / g.solver_chain().num_states().max(1))
            })
            .fold(0usize, usize::saturating_add);
        FacilityStats {
            lines,
            joint_blocks,
            joint_transitions,
            orbit_blocks: self
                .factor_classes()
                .and_then(|classes| classes.has_symmetry().then(|| classes.num_orbits())),
        }
    }

    /// The interchangeability classes of the per-group solver chains, or
    /// `None` for a degenerate (empty) facility.
    fn factor_classes(&self) -> Option<FactorClasses> {
        let chains: Vec<&Ctmc> = self
            .groups
            .iter()
            .map(CompiledGroup::solver_chain)
            .collect();
        FactorClasses::new(
            group_identical_chains(&chains),
            chains.iter().map(|chain| chain.num_states()).collect(),
        )
        .ok()
    }

    /// The quotient product of the per-group solver chains — the facility
    /// chain as a composable object (materialise it or use its matrix-free
    /// operator).
    ///
    /// # Errors
    ///
    /// Propagates product-construction errors.
    pub fn quotient_product(&self) -> Result<QuotientProduct, ArcadeError> {
        Ok(QuotientProduct::from_chains(
            self.groups
                .iter()
                .map(|g| (g.label.clone(), g.solver_chain().clone()))
                .collect(),
        )?)
    }

    /// The stationary distribution of every group's solver chain.
    fn group_stationaries(&self) -> Result<&[Vec<f64>], ArcadeError> {
        if let Some(cached) = self.stationaries.get() {
            return Ok(cached);
        }
        let computed = self
            .groups
            .iter()
            .map(|g| {
                Ok(SteadyStateSolver::new(g.solver_chain())
                    .exec(self.exec())
                    .solve()?)
            })
            .collect::<Result<Vec<_>, ArcadeError>>()?;
        Ok(self.stationaries.get_or_init(|| computed))
    }

    /// Steady-state availability of one line: the long-run probability that
    /// the line is fully operational.
    ///
    /// # Errors
    ///
    /// Propagates solver errors and rejects unknown lines.
    pub fn line_availability(&self, line: usize) -> Result<f64, ArcadeError> {
        if line >= self.model.lines().len() {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("unknown line index {line}"),
            });
        }
        let group_index = self.group_of_line(line);
        let group = &self.groups[group_index];
        let member = group
            .lines
            .iter()
            .position(|&l| l == line)
            .expect("line is in its group");
        let pi = &self.group_stationaries()?[group_index];
        Ok(pi
            .iter()
            .zip(group.line_operational[member].iter())
            .filter(|(_, &up)| up)
            .map(|(p, _)| p)
            .sum())
    }

    /// Facility availability — the long-run probability that **at least one
    /// line** is fully operational — via the product form: groups evolve
    /// independently, so `A = 1 − Π_g P_g(no member line operational)`. For
    /// two independent lines this is exactly the paper's
    /// `A = A1 + A2 − A1·A2`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn steady_state_availability(&self) -> Result<f64, ArcadeError> {
        let mut none_up_product = 1.0;
        for (group, pi) in self.groups.iter().zip(self.group_stationaries()?.iter()) {
            let any_up = group.any_line_operational();
            let none_up: f64 = pi
                .iter()
                .zip(any_up.iter())
                .filter(|(_, &up)| !up)
                .map(|(p, _)| p)
                .sum();
            none_up_product *= none_up;
        }
        Ok(1.0 - none_up_product)
    }

    /// The shared joint-chain cache: built on first use, reused by every
    /// joint measure (availability, survivability, costs, reductions).
    fn joint(&self) -> Result<&JointCache, ArcadeError> {
        if let Some(cache) = self.joint.get() {
            return Ok(cache);
        }
        let built = self.build_joint_cache()?;
        Ok(self.joint.get_or_init(|| built))
    }

    fn build_joint_cache(&self) -> Result<JointCache, ArcadeError> {
        let exec = self.exec();
        let product = self.quotient_product()?;

        // Facility observations on the raw product tuples.
        let joint_any_up = self.joint_any_line_operational(&product)?;
        let joint_service = self.joint_service_levels(&product)?;
        let joint_cost = self.joint_cost_rewards(&product)?;

        // Level 1 — factor symmetry: fold interchangeable groups to their
        // sorted-tuple orbit representatives *before* materialising. The
        // facility observations are symmetric in interchangeable groups
        // (identical chains carry identical masks/levels/rewards, and the
        // observations combine them with OR / max / sorted +, all of which
        // are exactly orbit-constant), so the projections are expected to
        // succeed whenever the orbit exists — but correctness never depends
        // on it: an observation that fails to project drops the fold and
        // the measures run on the unreduced product.
        let orbit = product.orbit();
        let folded = match &orbit {
            Some(orbit_fold) => {
                let projected =
                    orbit_fold
                        .project_mask(&product, &joint_any_up)
                        .and_then(|any_up| {
                            Ok((
                                any_up,
                                orbit_fold.project_values(&product, &joint_service)?,
                                orbit_fold.project_values(&product, joint_cost.state_rewards())?,
                            ))
                        });
                match projected {
                    Ok((any_up, service, cost_values)) => Some((
                        orbit_fold.materialize(&product, &exec)?,
                        any_up,
                        service,
                        RewardStructure::new(joint_cost.name(), cost_values)?,
                    )),
                    Err(_) => None,
                }
            }
            None => None,
        };
        let (orbit, (chain, any_up, service, cost)) = match folded {
            Some(folded) => (orbit, folded),
            None => (
                None,
                (
                    product.materialize(&exec)?,
                    joint_any_up,
                    joint_service,
                    joint_cost,
                ),
            ),
        };

        // Resolve every start block at compile time: the no-disaster start
        // and one start per facility disaster, each the joint tuple mapped
        // through the orbit fold when one is active.
        let start_of = |disaster: Option<&FacilityDisaster>| -> Result<usize, ArcadeError> {
            let joint = self.start_joint_index(&product, disaster)?;
            Ok(match &orbit {
                Some(orbit_fold) => orbit_fold.orbit_of(&product, joint),
                None => joint,
            })
        };
        let initial = start_of(None)?;
        let mut disaster_starts = BTreeMap::new();
        for disaster in self.model.disasters() {
            disaster_starts.insert(disaster.name().to_string(), start_of(Some(disaster))?);
        }
        let quotient = CompiledQuotient::from_parts(crate::quotient::QuotientParts {
            name: self.model.name().to_string(),
            chain,
            operational: any_up,
            service,
            cost,
            initial,
            disaster_starts,
            source_states: product.num_states(),
        })?;

        Ok(JointCache {
            product,
            orbit,
            quotient,
        })
    }

    /// The immutable solver-ready artifact of the facility's joint chain
    /// (built on first use, then cloned out of the cache): the compile/solve
    /// split of [`CompiledQuotient`]. Survivability and cost queries
    /// answered on the artifact are bit-identical to the corresponding
    /// methods of this analysis, because those methods delegate to the same
    /// artifact.
    ///
    /// # Errors
    ///
    /// Propagates product-construction errors.
    pub fn compiled_quotient(&self) -> Result<CompiledQuotient, ArcadeError> {
        Ok(self.joint()?.quotient.clone())
    }

    /// The reduction ladder of the joint chain: raw product tuples → orbit
    /// representatives (when factor symmetry exists) → the solver chain the
    /// measures run on, plus the exact-lumping **minimality certificate**:
    /// the coarsest ordinarily-lumpable quotient of the solver chain that
    /// respects the facility observations (any-line-operational, joint
    /// service level, cost rewards). `exact_blocks == solver_blocks` proves
    /// the solver chain cannot be reduced further without changing some
    /// facility measure — which is what partition refinement shows for the
    /// paper's asymmetric Line 1 × Line 2 pairs, where no cross-line
    /// symmetry exists.
    ///
    /// Builds the cache on first use; the refinement pass runs once and is
    /// cached alongside it.
    ///
    /// # Errors
    ///
    /// Propagates product-construction and lumping errors.
    pub fn joint_reduction(&self) -> Result<JointReduction, ArcadeError> {
        if let Some(reduction) = self.reduction.get() {
            return Ok(reduction.clone());
        }
        let cache = self.joint()?;
        let chain = cache.quotient.chain();
        let mut partition = InitialPartition::trivial(chain.num_states());
        partition.refine_by_bools(cache.quotient.operational_mask())?;
        partition.refine_by_f64(cache.quotient.service_levels())?;
        partition.refine_by_f64(cache.quotient.cost_rewards().state_rewards())?;
        let lumped = lump(chain, &partition)?;
        let reduction = JointReduction {
            product_blocks: cache.product.num_states(),
            product_transitions: cache.product.num_transitions(),
            orbit_blocks: cache.orbit.as_ref().map(ProductOrbit::num_orbits),
            solver_blocks: chain.num_states(),
            solver_transitions: chain.num_transitions(),
            exact_blocks: lumped.num_blocks(),
        };
        Ok(self.reduction.get_or_init(|| reduction).clone())
    }

    /// Facility availability from the **genuine joint chain**: the cached
    /// joint chain (the sorted-tuple orbit quotient under factor symmetry,
    /// the materialised product otherwise) is solved for its stationary
    /// distribution — warm started from the product form, which changes only
    /// the trajectory — and the any-line-operational mass summed. The result
    /// is certified by the matrix-free Kronecker-sum balance residual of the
    /// joint-level vector (orbit solves expand uniformly over their orbits,
    /// which is exact for automorphism-invariant stationary vectors).
    /// Agreement with [`FacilityAnalysis::steady_state_availability`] to
    /// solver tolerance is the paper's `A1 + A2 − A1·A2` validation.
    ///
    /// # Errors
    ///
    /// Propagates product-construction and solver errors.
    pub fn joint_steady_state_availability(&self) -> Result<JointAvailability, ArcadeError> {
        let exec = self.exec();
        let cache = self.joint()?;
        let guess = cache
            .product
            .product_distribution(self.group_stationaries()?)?;
        let guess = match &cache.orbit {
            Some(orbit) => orbit.aggregate_distribution(&cache.product, &guess),
            None => guess,
        };
        let (pi, iterations) = SteadyStateSolver::new(cache.quotient.chain())
            .exec(exec)
            .initial_guess(guess)
            .solve_counted()?;
        let joint_pi = match &cache.orbit {
            Some(orbit) => orbit.expand_distribution(&cache.product, &pi),
            None => pi.clone(),
        };
        let residual = cache.product.balance_residual(&joint_pi, &exec)?;
        let availability = cache.quotient.availability_of(&pi);
        Ok(JointAvailability {
            availability,
            residual,
            joint_states: cache.product.num_states(),
            joint_transitions: cache.product.num_transitions(),
            solved_states: cache.quotient.num_states(),
            solver_tier: "gs-materialised".to_string(),
            iterations,
        })
    }

    /// Facility availability from the genuine joint chain **without ever
    /// materialising it**: the Kronecker-sum operator of the quotient product
    /// is handed to [`OperatorSteadyStateSolver`], warm started from the
    /// product form (which, the groups being independent, is already
    /// stationary — the solve is then a certified fixed-point confirmation
    /// that converges in a handful of applies). Krylov runs first; if the
    /// restarted iteration stalls the solver falls back to damped Jacobi,
    /// whose sweeps on the uniformised chain always contract. The returned
    /// vector is certified by the same matrix-free balance residual as the
    /// materialised path, and the any-line-operational mass is summed over
    /// per-group masks expanded on the fly — no joint matrix, no joint state
    /// enumeration beyond the mask vectors.
    ///
    /// Memory: the solver holds a handful of product-length vectors (the
    /// Krylov basis, bounded by the restart length) instead of the product's
    /// transition matrix, so this tier reaches products whose materialised
    /// form would not fit.
    ///
    /// # Errors
    ///
    /// Propagates product-construction and solver errors.
    pub fn matrix_free_steady_state_availability(&self) -> Result<JointAvailability, ArcadeError> {
        let exec = self.exec();
        let product = self.quotient_product()?;
        let guess = product.product_distribution(self.group_stationaries()?)?;
        let any_up = self.joint_any_line_operational(&product)?;
        let operator = product.operator();
        let exits = product.exit_rates();
        let krylov = OperatorSteadyStateSolver::new(&operator, exits.clone())?
            .method(OperatorSteadyStateMethod::Krylov)
            .exec(exec)
            .initial_guess(guess.clone())
            .solve_counted();
        let (joint_pi, iterations, tier) = match krylov {
            Ok((pi, applies)) => (pi, applies, OperatorSteadyStateMethod::Krylov.tier_name()),
            Err(CtmcError::NotConverged { .. }) => {
                let (pi, applies) = OperatorSteadyStateSolver::new(&operator, exits)?
                    .method(OperatorSteadyStateMethod::Jacobi)
                    .exec(exec)
                    .initial_guess(guess)
                    .solve_counted()?;
                (pi, applies, OperatorSteadyStateMethod::Jacobi.tier_name())
            }
            Err(other) => return Err(other.into()),
        };
        let residual = product.balance_residual(&joint_pi, &exec)?;
        let availability = joint_pi
            .iter()
            .zip(any_up.iter())
            .filter(|(_, &up)| up)
            .map(|(p, _)| p)
            .sum();
        Ok(JointAvailability {
            availability,
            residual,
            joint_states: product.num_states(),
            joint_transitions: product.num_transitions(),
            solved_states: product.num_states(),
            solver_tier: tier.to_string(),
            iterations,
        })
    }

    /// Facility availability by **orbit enumeration**: walks the canonical
    /// (sorted) multisets of every interchangeability class lazily, weighting
    /// each representative by its orbit size times the product of local
    /// stationary probabilities. Because the groups evolve independently, the
    /// joint stationary measure *is* the product measure, and because the
    /// "no member line up" event factorises across classes, the availability
    /// is exactly `1 − Π_class (class none-up mass)` — no joint chain is ever
    /// built, so this tier scales to products far beyond what
    /// [`FacilityAnalysis::joint_steady_state_availability`] can materialise
    /// (`k = 4` DED twins: 3,764,376 orbit visits instead of an
    /// 84,934,656-state product). The enumeration is strictly sequential, so
    /// the result is bit-identical across thread counts whenever the
    /// per-group solves are (which the deterministic executor guarantees).
    ///
    /// `total_mass ≈ 1` in the returned certificate confirms the enumeration
    /// covered every orbit exactly once.
    ///
    /// # Errors
    ///
    /// Rejects degenerate (empty) facilities and orbit bounds above
    /// `max_orbits` with [`ArcadeError::InvalidParameter`]; propagates
    /// per-group solver errors.
    pub fn orbit_availability(&self, max_orbits: usize) -> Result<OrbitAvailability, ArcadeError> {
        let classes = self
            .factor_classes()
            .ok_or_else(|| ArcadeError::InvalidParameter {
                reason: "orbit enumeration needs at least one composition group".into(),
            })?;
        let orbit_bound = classes.num_orbits();
        if orbit_bound > max_orbits {
            return Err(ArcadeError::InvalidParameter {
                reason: format!(
                    "orbit bound {orbit_bound} exceeds the enumeration cap {max_orbits}"
                ),
            });
        }
        let stationaries = self.group_stationaries()?;
        let class_ids = classes.classes();
        let num_classes = class_ids.iter().copied().max().map_or(0, |m| m + 1);
        let mut none_up_product = 1.0f64;
        let mut total_mass = 1.0f64;
        let mut orbits_explored = 1usize;
        for class in 0..num_classes {
            let members: Vec<usize> = (0..class_ids.len())
                .filter(|&g| class_ids[g] == class)
                .collect();
            // Interchangeable groups have identical chains, hence identical
            // stationary vectors and observation masks: the first member
            // stands in for the whole class.
            let representative = members[0];
            let pi = &stationaries[representative];
            let any_up = self.groups[representative].any_line_operational();
            let mut class_mass = 0.0f64;
            let mut class_none_up = 0.0f64;
            let visited = for_each_multiset(members.len(), pi.len(), |tuple, orbit_size| {
                let mass = orbit_size as f64 * tuple.iter().map(|&v| pi[v]).product::<f64>();
                class_mass += mass;
                if tuple.iter().all(|&v| !any_up[v]) {
                    class_none_up += mass;
                }
            });
            total_mass *= class_mass;
            none_up_product *= class_none_up;
            orbits_explored = orbits_explored.saturating_mul(visited);
        }
        Ok(OrbitAvailability {
            availability: 1.0 - none_up_product,
            orbit_bound,
            orbits_explored,
            total_mass,
        })
    }

    /// Joint mask: at least one line fully operational.
    fn joint_any_line_operational(
        &self,
        product: &QuotientProduct,
    ) -> Result<Vec<bool>, ArcadeError> {
        let mut out = vec![false; product.num_states()];
        for (index, group) in self.groups.iter().enumerate() {
            let expanded = product.expand_mask(index, &group.any_line_operational())?;
            for (slot, up) in out.iter_mut().zip(expanded) {
                *slot |= up;
            }
        }
        Ok(out)
    }

    /// Joint mask: facility service level (the best level any line delivers)
    /// at least `threshold`.
    fn joint_service_at_least(
        &self,
        product: &QuotientProduct,
        threshold: f64,
    ) -> Result<Vec<bool>, ArcadeError> {
        let mut out = vec![false; product.num_states()];
        for (index, group) in self.groups.iter().enumerate() {
            for service in &group.line_service {
                let mask: Vec<bool> = service.iter().map(|&l| l >= threshold - 1e-12).collect();
                let expanded = product.expand_mask(index, &mask)?;
                for (slot, up) in out.iter_mut().zip(expanded) {
                    *slot |= up;
                }
            }
        }
        Ok(out)
    }

    /// The facility service level of every joint state: the best level any
    /// member line delivers. Refining the joint quotient by this value keeps
    /// every `service ≥ threshold` goal set block-closed for *every*
    /// threshold at once.
    fn joint_service_levels(&self, product: &QuotientProduct) -> Result<Vec<f64>, ArcadeError> {
        let mut out = vec![0.0f64; product.num_states()];
        for (index, group) in self.groups.iter().enumerate() {
            for service in &group.line_service {
                let expanded = product.expand_values(index, service)?;
                for (slot, level) in out.iter_mut().zip(expanded) {
                    *slot = slot.max(level);
                }
            }
        }
        Ok(out)
    }

    /// The per-group disaster restriction of a facility disaster, in the
    /// group's own component namespace.
    fn group_disaster(
        &self,
        group: &CompiledGroup,
        disaster: &FacilityDisaster,
    ) -> Result<Option<Disaster>, ArcadeError> {
        let mut components = Vec::new();
        for &line_index in &group.lines {
            let line = &self.model.lines()[line_index];
            for (disaster_line, component) in disaster.components() {
                if disaster_line == &line.name {
                    components.push(if group.lines.len() > 1 {
                        qualified(&line.name, component)
                    } else {
                        component.clone()
                    });
                }
            }
        }
        if components.is_empty() {
            return Ok(None);
        }
        Ok(Some(Disaster::new(disaster.name(), components)?))
    }

    /// The joint product index of the state right after `disaster` (every
    /// touched group in its disaster state, every other group in its regular
    /// initial state).
    fn start_joint_index(
        &self,
        product: &QuotientProduct,
        disaster: Option<&FacilityDisaster>,
    ) -> Result<usize, ArcadeError> {
        let mut tuple = Vec::with_capacity(self.groups.len());
        for group in &self.groups {
            let restricted = match disaster {
                Some(disaster) => self.group_disaster(group, disaster)?,
                None => None,
            };
            tuple.push(group.start_state(restricted.as_ref())?);
        }
        product
            .index_of(&tuple)
            .ok_or_else(|| ArcadeError::InvalidDisaster {
                reason: "joint disaster tuple out of range".to_string(),
            })
    }

    /// Looks up a facility disaster by name.
    fn lookup_disaster(&self, name: &str) -> Result<&FacilityDisaster, ArcadeError> {
        self.model
            .disaster(name)
            .ok_or_else(|| ArcadeError::UnsupportedMeasure {
                reason: format!("unknown facility disaster `{name}`"),
            })
    }

    /// Facility survivability after a (possibly cross-line) disaster: the
    /// probability that, within each deadline, the facility again delivers a
    /// service level of at least `service_level` **on some line**. Evaluated
    /// on the cached joint chain (the sorted-tuple orbit quotient under
    /// factor symmetry) started from the disaster's state — exact because
    /// the orbit partition is ordinarily lumpable and the goal set is a
    /// union of orbits.
    ///
    /// # Errors
    ///
    /// Rejects unknown disasters and invalid service levels; propagates
    /// solver errors.
    pub fn survivability_curve(
        &self,
        disaster: &str,
        service_level: f64,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        if !(0.0..=1.0).contains(&service_level) {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("service level must be in [0, 1], got {service_level}"),
            });
        }
        let disaster = self.lookup_disaster(disaster)?;
        self.joint()?.quotient.survivability_curve(
            disaster.name(),
            service_level,
            times,
            self.exec(),
        )
    }

    /// Facility survivability evaluated **matrix-free**: the same quantity
    /// as [`FacilityAnalysis::survivability_curve`], but driven through the
    /// Kronecker-sum [`arcade_lumping::KroneckerSum`] operator of the
    /// unreduced product — the joint chain is never materialised, let alone
    /// lumped. Used as the independent cross-check of the quotient path and
    /// as the memory-lean fallback for products too large to materialise.
    ///
    /// # Errors
    ///
    /// See [`FacilityAnalysis::survivability_curve`].
    pub fn matrix_free_survivability_curve(
        &self,
        disaster: &str,
        service_level: f64,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        if !(0.0..=1.0).contains(&service_level) {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("service level must be in [0, 1], got {service_level}"),
            });
        }
        let disaster = self.lookup_disaster(disaster)?;
        let product = self.quotient_product()?;
        let start = self.start_joint_index(&product, Some(disaster))?;
        let mut initial = vec![0.0; product.num_states()];
        initial[start] = 1.0;
        let goal = self.joint_service_at_least(&product, service_level)?;
        let safe = vec![true; goal.len()];
        let operator = product.operator();
        let solver = OperatorTransientSolver::with_options(
            &operator,
            product.exit_rates(),
            TransientOptions {
                exec: self.exec(),
                ..TransientOptions::default()
            },
        )?;
        let values = solver.bounded_until_many(&initial, &safe, &goal, times)?;
        Ok(times.iter().copied().zip(values).collect())
    }

    /// Validates an optional facility-disaster name against this facility
    /// (keeping the facility-scope error message) and returns it for the
    /// quotient artifact to resolve.
    fn validated_disaster<'d>(
        &self,
        disaster: Option<&'d str>,
    ) -> Result<Option<&'d str>, ArcadeError> {
        if let Some(name) = disaster {
            self.lookup_disaster(name)?;
        }
        Ok(disaster)
    }

    /// Expected accumulated facility repair cost after a disaster (cached
    /// joint chain, per-group cost rewards summed — additive rewards of
    /// independent subsystems add and stay constant on every folded orbit).
    ///
    /// # Errors
    ///
    /// Rejects unknown disasters; propagates solver errors.
    pub fn accumulated_cost_curve(
        &self,
        disaster: Option<&str>,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let disaster = self.validated_disaster(disaster)?;
        self.joint()?
            .quotient
            .accumulated_cost_curve(disaster, times, self.exec())
    }

    /// Expected instantaneous facility cost rate, optionally after a
    /// disaster.
    ///
    /// # Errors
    ///
    /// See [`FacilityAnalysis::accumulated_cost_curve`].
    pub fn instantaneous_cost_curve(
        &self,
        disaster: Option<&str>,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let disaster = self.validated_disaster(disaster)?;
        self.joint()?
            .quotient
            .instantaneous_cost_curve(disaster, times, self.exec())
    }

    /// Evaluates a declarative [`FacilityMeasure`].
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::UnsupportedMeasure`] for unknown lines or
    /// disasters and propagates solver errors.
    pub fn evaluate(&self, measure: &FacilityMeasure) -> Result<MeasureResult, ArcadeError> {
        match measure {
            FacilityMeasure::SteadyStateAvailability => {
                self.steady_state_availability().map(MeasureResult::Scalar)
            }
            FacilityMeasure::JointSteadyStateAvailability => Ok(MeasureResult::Scalar(
                self.joint_steady_state_availability()?.availability,
            )),
            FacilityMeasure::LineAvailability { line } => {
                let index =
                    self.model
                        .line_index(line)
                        .ok_or_else(|| ArcadeError::UnsupportedMeasure {
                            reason: format!("unknown line `{line}`"),
                        })?;
                self.line_availability(index).map(MeasureResult::Scalar)
            }
            FacilityMeasure::SurvivabilityCurve {
                disaster,
                service_level,
                times,
            } => self
                .survivability_curve(disaster, *service_level, times)
                .map(MeasureResult::Curve),
            FacilityMeasure::AccumulatedCost { disaster, times } => self
                .accumulated_cost_curve(disaster.as_deref(), times)
                .map(MeasureResult::Curve),
        }
    }

    /// The facility cost rewards on the joint chain.
    fn joint_cost_rewards(
        &self,
        product: &QuotientProduct,
    ) -> Result<RewardStructure, ArcadeError> {
        let per_group: Vec<Option<&RewardStructure>> = self
            .groups
            .iter()
            .map(|g| Some(g.solver_cost_rewards()))
            .collect();
        Ok(product.sum_rewards("facility_repair_cost", &per_group)?)
    }
}

/// A line's fully-operational mask and per-state service levels on a group
/// chain.
type LineMetadata = (Vec<bool>, Vec<f64>);

/// Evaluates each member line's fully-operational flag and service level on
/// every state of a merged group chain.
fn per_line_masks(
    compiled: &CompiledModel,
    members: &[&FacilityLine],
) -> Result<Vec<LineMetadata>, ArcadeError> {
    let position: HashMap<&str, usize> = compiled
        .component_names()
        .iter()
        .enumerate()
        .map(|(i, name)| (name.as_str(), i))
        .collect();
    let mut out = Vec::with_capacity(members.len());
    for line in members {
        let degraded = line.model.degraded_fault_tree();
        let service_tree = line.model.service_tree();
        let mut operational = Vec::with_capacity(compiled.states().len());
        let mut service = Vec::with_capacity(compiled.states().len());
        for state in compiled.states() {
            let provides = |name: &str| -> f64 {
                match position.get(qualified(&line.name, name).as_str()) {
                    Some(&i) if state.statuses[i].provides_service() => 1.0,
                    _ => 0.0,
                }
            };
            let failed = |name: &str| -> bool {
                match position.get(qualified(&line.name, name).as_str()) {
                    Some(&i) => !state.statuses[i].provides_service(),
                    None => false,
                }
            };
            operational.push(!degraded.is_failed(failed));
            service.push(service_tree.service_level(provides));
        }
        out.push((operational, service));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::BasicComponent;
    use crate::repair::{RepairStrategy, RepairUnit};

    /// A line with a single repairable pump behind its own repair unit.
    fn pump_line(unit_name: &str, mttf: f64, mttr: f64) -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::component("pump"));
        ArcadeModel::builder("line", structure)
            .component(
                BasicComponent::from_mttf_mttr("pump", mttf, mttr)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new(unit_name, RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["pump"])
                    .with_idle_cost(1.0),
            )
            .build()
            .unwrap()
    }

    fn independent_facility() -> FacilityModel {
        FacilityModel::builder("plant")
            .line("line1", pump_line("ru1", 100.0, 1.0))
            .line("line2", pump_line("ru2", 50.0, 2.0))
            .disaster(FacilityDisaster::new(
                "both-pumps",
                [("line1", "pump"), ("line2", "pump")],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn independent_lines_form_singleton_groups() {
        let facility = independent_facility();
        let tree = facility.composition_tree();
        assert_eq!(tree.groups.len(), 2);
        assert!(tree.groups.iter().all(|g| !g.is_joint()));
        assert!(tree.groups.iter().all(|g| g.shared_units.is_empty()));
        // The cross-line disaster is recorded but does not merge the groups:
        // the dynamics stay independent, only scalar shortcuts are barred.
        assert_eq!(tree.cross_line_disasters, vec!["both-pumps".to_string()]);
        assert!(facility.disaster("both-pumps").unwrap().is_cross_line());
        assert_eq!(facility.line_index("line2"), Some(1));
    }

    #[test]
    fn product_form_availability_matches_the_closed_form() {
        let facility = independent_facility();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let a1 = 100.0 / 101.0;
        let a2 = 50.0 / 52.0;
        let expected = a1 + a2 - a1 * a2;
        assert!((analysis.line_availability(0).unwrap() - a1).abs() < 1e-9);
        assert!((analysis.line_availability(1).unwrap() - a2).abs() < 1e-9);
        let product_form = analysis.steady_state_availability().unwrap();
        assert!((product_form - expected).abs() < 1e-9, "{product_form}");
        assert!(analysis.line_availability(7).is_err());
    }

    #[test]
    fn joint_chain_confirms_the_product_form() {
        let facility = independent_facility();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let joint = analysis.joint_steady_state_availability().unwrap();
        let product_form = analysis.steady_state_availability().unwrap();
        assert_eq!(joint.joint_states, 4);
        assert!((joint.availability - product_form).abs() <= 1e-9);
        assert!(joint.residual < 1e-9, "residual {}", joint.residual);
        assert_eq!(joint.solver_tier, "gs-materialised");
    }

    #[test]
    fn matrix_free_path_matches_the_materialised_joint_solve() {
        let facility = independent_facility();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let materialised = analysis.joint_steady_state_availability().unwrap();
        let operator = analysis.matrix_free_steady_state_availability().unwrap();
        assert!(
            (operator.availability - materialised.availability).abs() <= 1e-10,
            "{} vs {}",
            operator.availability,
            materialised.availability
        );
        assert!(operator.residual < 1e-9, "residual {}", operator.residual);
        assert_eq!(operator.joint_states, materialised.joint_states);
        // The operator path never reduces: it solves the full product.
        assert_eq!(operator.solved_states, operator.joint_states);
        assert_eq!(operator.solver_tier, "krylov-operator");
        // Warm started from the (here exactly stationary) product form, the
        // Krylov solve certifies the fixed point in a handful of applies.
        assert!(operator.iterations >= 1);
    }

    #[test]
    fn shared_repair_unit_triggers_joint_exploration() {
        let facility = FacilityModel::builder("coupled")
            .line("line1", pump_line("shared-ru", 100.0, 1.0))
            .line("line2", pump_line("shared-ru", 50.0, 2.0))
            .build()
            .unwrap();
        let tree = facility.composition_tree();
        assert_eq!(tree.groups.len(), 1);
        assert!(tree.groups[0].is_joint());
        assert_eq!(tree.groups[0].shared_units, vec!["shared-ru".to_string()]);

        // One crew serving both pumps: the joint chain is NOT the product of
        // the per-line chains (a pump can wait for the other line's repair),
        // so the availability must differ from the independent product form.
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let a1 = 100.0 / 101.0;
        let a2 = 50.0 / 52.0;
        let independent = a1 + a2 - a1 * a2;
        let coupled = analysis.steady_state_availability().unwrap();
        assert!(
            (coupled - independent).abs() > 1e-6,
            "sharing one crew must shift the availability: {coupled} vs {independent}"
        );
        // With a single group the genuine joint chain IS the group chain, so
        // both paths agree.
        let joint = analysis.joint_steady_state_availability().unwrap();
        assert!((joint.availability - coupled).abs() <= 1e-9);

        let stats = analysis.stats();
        assert!(stats.lines.iter().all(|l| l.jointly_explored));
        assert_eq!(stats.lines[0].group, stats.lines[1].group);
    }

    #[test]
    fn shared_unit_twin_lines_keep_per_line_availabilities_equal() {
        // Two *identical* lines coupled through one shared crew: the merged
        // group puts two isomorphic leaves under one gate, and without the
        // per-line symmetry guards the canonical frontier would exchange
        // them — silently averaging the per-line masks. The guards must
        // keep the (identical) lines' availabilities exactly equal.
        let facility = FacilityModel::builder("twin-coupled")
            .line("north", pump_line("shared-ru", 100.0, 1.0))
            .line("south", pump_line("shared-ru", 100.0, 1.0))
            .build()
            .unwrap();
        assert!(facility.composition_tree().groups[0].is_joint());
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let north = analysis.line_availability(0).unwrap();
        let south = analysis.line_availability(1).unwrap();
        assert!(
            (north - south).abs() <= 1e-12,
            "identical twin lines must have identical availabilities: {north} vs {south}"
        );
        assert!(north > 0.9, "a 100h-MTTF pump with a shared crew: {north}");
    }

    #[test]
    fn three_twin_lines_fold_with_exact_costs() {
        // Three identical independent lines: the orbit fold compresses
        // 2³ = 8 tuples to C(4, 3) = 4 sorted triples, and the summed cost
        // rewards (deliberately FP-inexact values) must stay orbit-constant
        // so every joint measure runs on the fold.
        let line = |unit: &str| {
            let structure = SystemStructure::new(StructureNode::component("pump"));
            ArcadeModel::builder("line", structure)
                .component(
                    BasicComponent::from_mttf_mttr("pump", 100.0, 1.0)
                        .unwrap()
                        .with_failed_cost(0.1),
                )
                .repair_unit(
                    RepairUnit::new(unit, RepairStrategy::FirstComeFirstServe, 1)
                        .unwrap()
                        .responsible_for(["pump"])
                        .with_idle_cost(0.3),
                )
                .build()
                .unwrap()
        };
        let facility = FacilityModel::builder("triplet")
            .line("a", line("ru-a"))
            .line("b", line("ru-b"))
            .line("c", line("ru-c"))
            .disaster(FacilityDisaster::new(
                "all-pumps",
                [("a", "pump"), ("b", "pump"), ("c", "pump")],
            ))
            .build()
            .unwrap();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let stats = analysis.stats();
        assert_eq!(stats.joint_blocks, 8);
        assert_eq!(stats.orbit_blocks, Some(4));
        let joint = analysis.joint_steady_state_availability().unwrap();
        assert_eq!(joint.solved_states, 4, "the fold must not be dropped");
        let product_form = analysis.steady_state_availability().unwrap();
        assert!((joint.availability - product_form).abs() <= 1e-9);
        assert!(joint.residual < 1e-9, "residual {}", joint.residual);
        // Cost measures run on the folded chain with the sorted-sum rewards.
        let acc = analysis
            .accumulated_cost_curve(Some("all-pumps"), &[0.0, 1.0, 3.0])
            .unwrap();
        assert_eq!(acc[0].1, 0.0);
        assert!(acc[1].1 < acc[2].1);
        let inst = analysis.instantaneous_cost_curve(None, &[0.0]).unwrap();
        // All pumps up: three idle crews at 0.3/h each (sorted sum).
        assert!((inst[0].1 - 0.3 * 3.0).abs() < 1e-12, "{}", inst[0].1);
    }

    #[test]
    fn orbit_enumeration_availability_matches_the_product_form() {
        // Mixed interchangeability classes: two identical twins (one class of
        // two positions) plus a distinct third line (a singleton class). The
        // enumeration tier must agree with the product form and with the
        // materialised joint solve, visit exactly C(3, 2) × 2 = 6 orbits,
        // and certify full mass coverage.
        let line = |unit: &str, mttf: f64| {
            let structure = SystemStructure::new(StructureNode::component("pump"));
            ArcadeModel::builder("line", structure)
                .component(BasicComponent::from_mttf_mttr("pump", mttf, 1.0).unwrap())
                .repair_unit(
                    RepairUnit::new(unit, RepairStrategy::FirstComeFirstServe, 1)
                        .unwrap()
                        .responsible_for(["pump"]),
                )
                .build()
                .unwrap()
        };
        let facility = FacilityModel::builder("mixed-bank")
            .line("a", line("ru-a", 100.0))
            .line("b", line("ru-b", 100.0))
            .line("c", line("ru-c", 50.0))
            .build()
            .unwrap();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let orbit = analysis.orbit_availability(1_000).unwrap();
        assert_eq!(orbit.orbit_bound, 6);
        assert_eq!(orbit.orbits_explored, 6);
        assert!(
            (orbit.total_mass - 1.0).abs() < 1e-12,
            "{}",
            orbit.total_mass
        );
        let product_form = analysis.steady_state_availability().unwrap();
        assert!(
            (orbit.availability - product_form).abs() <= 1e-12,
            "{} vs {product_form}",
            orbit.availability
        );
        let joint = analysis.joint_steady_state_availability().unwrap();
        assert!((orbit.availability - joint.availability).abs() <= 1e-9);

        // The cap is enforced before any enumeration.
        let capped = analysis.orbit_availability(5);
        assert!(matches!(
            capped,
            Err(ArcadeError::InvalidParameter { ref reason }) if reason.contains("enumeration cap")
        ));
    }

    #[test]
    fn facility_survivability_and_costs_run_on_the_joint_chain() {
        let facility = independent_facility();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let times = [0.0, 0.5, 1.0, 2.0, 4.0];
        let curve = analysis
            .survivability_curve("both-pumps", 1.0, &times)
            .unwrap();
        // Starting with both pumps down, recovery needs at least one of the
        // two independent repairs (rates 1 and 1/2) to finish:
        // P = 1 - e^{-t} e^{-t/2}.
        for (t, value) in &curve {
            let expected = 1.0 - (-1.5 * t).exp();
            assert!(
                (value - expected).abs() < 1e-6,
                "t={t}: {value} vs {expected}"
            );
        }
        for window in curve.windows(2) {
            assert!(window[1].1 >= window[0].1 - 1e-12);
        }
        assert!(analysis.survivability_curve("nope", 1.0, &times).is_err());
        assert!(analysis
            .survivability_curve("both-pumps", 2.0, &times)
            .is_err());

        // Costs: both pumps failed and both crews busy at t = 0 — cost rate 6.
        let inst = analysis
            .instantaneous_cost_curve(Some("both-pumps"), &[0.0])
            .unwrap();
        assert!((inst[0].1 - 6.0).abs() < 1e-9, "{}", inst[0].1);
        let acc = analysis
            .accumulated_cost_curve(Some("both-pumps"), &[0.0, 1.0, 3.0])
            .unwrap();
        assert_eq!(acc[0].1, 0.0);
        assert!(acc[1].1 < acc[2].1);
        // Without a disaster the joint chain starts all-up: idle crews only.
        let idle = analysis.instantaneous_cost_curve(None, &[0.0]).unwrap();
        assert!((idle[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn facility_stats_report_per_line_and_product_counts() {
        let facility = independent_facility();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let stats = analysis.stats();
        assert_eq!(stats.lines.len(), 2);
        assert!(stats.lines.iter().all(|l| !l.jointly_explored));
        assert_eq!(stats.joint_blocks, 4);
        assert_eq!(stats.joint_transitions, 8);
        let product = analysis.quotient_product().unwrap();
        assert_eq!(product.num_states(), stats.joint_blocks);
        assert_eq!(product.num_transitions(), stats.joint_transitions);
    }

    #[test]
    fn declarative_facility_measures_match_direct_calls() {
        let facility = independent_facility();
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let availability = analysis
            .evaluate(&FacilityMeasure::SteadyStateAvailability)
            .unwrap();
        assert_eq!(
            availability.as_scalar(),
            Some(analysis.steady_state_availability().unwrap())
        );
        let joint = analysis
            .evaluate(&FacilityMeasure::JointSteadyStateAvailability)
            .unwrap();
        assert!((joint.as_scalar().unwrap() - availability.as_scalar().unwrap()).abs() <= 1e-9);
        let line = analysis
            .evaluate(&FacilityMeasure::LineAvailability {
                line: "line1".into(),
            })
            .unwrap();
        assert_eq!(
            line.as_scalar(),
            Some(analysis.line_availability(0).unwrap())
        );
        assert!(analysis
            .evaluate(&FacilityMeasure::LineAvailability {
                line: "nope".into()
            })
            .is_err());
        let curve = analysis
            .evaluate(&FacilityMeasure::SurvivabilityCurve {
                disaster: "both-pumps".into(),
                service_level: 1.0,
                times: vec![1.0, 2.0],
            })
            .unwrap();
        assert_eq!(curve.as_curve().unwrap().len(), 2);
        let cost = analysis
            .evaluate(&FacilityMeasure::AccumulatedCost {
                disaster: Some("both-pumps".into()),
                times: vec![1.0],
            })
            .unwrap();
        assert!(cost.as_curve().unwrap()[0].1 > 0.0);
        assert!(!FacilityMeasure::SteadyStateAvailability.kind().is_empty());
    }

    #[test]
    fn facility_validation_rejects_inconsistencies() {
        assert!(matches!(
            FacilityModel::builder("empty").build(),
            Err(ArcadeError::InvalidParameter { .. })
        ));
        assert!(matches!(
            FacilityModel::builder("dup")
                .line("a", pump_line("ru1", 10.0, 1.0))
                .line("a", pump_line("ru2", 10.0, 1.0))
                .build(),
            Err(ArcadeError::InvalidParameter { .. })
        ));
        assert!(matches!(
            FacilityModel::builder("ghost-line")
                .line("a", pump_line("ru1", 10.0, 1.0))
                .disaster(FacilityDisaster::new("d", [("b", "pump")]))
                .build(),
            Err(ArcadeError::InvalidParameter { .. })
        ));
        assert!(matches!(
            FacilityModel::builder("ghost-component")
                .line("a", pump_line("ru1", 10.0, 1.0))
                .disaster(FacilityDisaster::new("d", [("a", "turbine")]))
                .build(),
            Err(ArcadeError::UnknownComponent { .. })
        ));
        // A shared unit whose configuration differs across lines is rejected
        // at compile time (the merge would be ambiguous).
        let mut other = pump_line("shared", 50.0, 2.0);
        other = other
            .with_repair_strategy(RepairStrategy::FastestRepairFirst, 2)
            .unwrap();
        let facility = FacilityModel::builder("mismatch")
            .line("a", pump_line("shared", 100.0, 1.0))
            .line("b", other)
            .build()
            .unwrap();
        assert!(matches!(
            FacilityAnalysis::new(&facility),
            Err(ArcadeError::InvalidParameter { .. })
        ));
    }
}
