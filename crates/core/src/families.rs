//! Interchangeable-component families: the sub-chains of compositional lumping.
//!
//! Two components are *interchangeable* when swapping them everywhere is an
//! automorphism of the composed CTMC: every measure (service level, the
//! operational predicate, cost rewards) and every scheduling decision (queue
//! insertion, crew dispatch) is blind to which of the two holds which role.
//! The orbit partition induced by permuting the members of such a **family**
//! is ordinarily lumpable, so the composer can explore canonical orbit
//! representatives directly — per-family sub-chain quotients composed on the
//! fly — instead of materialising the flat product chain.
//!
//! Interchangeability is detected conservatively; every condition below is
//! required so that the permutation provably commutes with the composition
//! semantics:
//!
//! * identical failure rate, repair rate, dormancy factor, both cost rates and
//!   initially-failed flag (bitwise equality on the rates);
//! * responsibility of the same repair unit (or of none), under which both
//!   components carry the same dispatch priority — this also aligns crew
//!   dispatch and preemption behaviour;
//! * no involvement in any spare management unit (spare activation picks
//!   members in definition order, which is not permutation-symmetric);
//! * each component appears at most once in the system structure, and
//!   components appearing do so as *sibling leaves of the same gate*. All
//!   structure gates (series → min, redundant → mean, required-of → ratio,
//!   and the derived or/and/vote fault-tree gates) are symmetric functions of
//!   their children, so sibling leaves of equal rates can be permuted without
//!   changing any tree evaluation. Components absent from the structure are
//!   invisible to the trees and grouped among themselves.

use std::collections::HashMap;

use fault_tree::StructureNode;

use crate::model::ArcadeModel;
use crate::state::ComponentIndex;

/// A maximal group of mutually interchangeable components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentFamily {
    /// Member component indices, sorted ascending (definition order).
    pub members: Vec<ComponentIndex>,
}

impl ComponentFamily {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family has no members (never produced by detection).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the family is a singleton (no symmetry to exploit).
    pub fn is_singleton(&self) -> bool {
        self.members.len() <= 1
    }
}

/// Where a component sits in the structure tree: the pre-order id of its
/// parent gate, a marker for "not referenced", or a marker for "referenced
/// more than once" (never mergeable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StructurePosition {
    Unreferenced,
    ChildOf(usize),
    Ambiguous,
}

/// Records, for every component name, the gate it is a leaf child of.
fn structure_positions(root: &StructureNode, positions: &mut HashMap<String, StructurePosition>) {
    // Pre-order traversal assigning each gate node an id; leaves record the id
    // of their parent gate (the root itself may be a leaf: parent id 0 is
    // reserved for the virtual super-root).
    fn walk(
        node: &StructureNode,
        parent: usize,
        next_id: &mut usize,
        positions: &mut HashMap<String, StructurePosition>,
    ) {
        match node {
            StructureNode::Component(name) => {
                positions
                    .entry(name.clone())
                    .and_modify(|p| *p = StructurePosition::Ambiguous)
                    .or_insert(StructurePosition::ChildOf(parent));
            }
            StructureNode::Series(children)
            | StructureNode::Redundant(children)
            | StructureNode::RequiredOf { children, .. } => {
                *next_id += 1;
                let id = *next_id;
                for child in children {
                    walk(child, id, next_id, positions);
                }
            }
        }
    }
    let mut next_id = 0;
    walk(root, 0, &mut next_id, positions);
}

/// Partitions the model's components into maximal interchangeable families.
///
/// Every component belongs to exactly one family; components with no
/// interchangeable partner form singleton families. Families are ordered by
/// their smallest member and members are sorted ascending, so the result is
/// deterministic.
pub fn detect_families(model: &ArcadeModel) -> Vec<ComponentFamily> {
    let mut positions: HashMap<String, StructurePosition> = HashMap::new();
    structure_positions(model.structure().root(), &mut positions);

    // Signature key: everything a permutation must preserve.
    #[derive(PartialEq, Eq, Hash)]
    struct Signature {
        position: StructurePosition,
        repair_unit: Option<usize>,
        priority_bits: u64,
        failure_bits: u64,
        repair_bits: u64,
        dormancy_bits: u64,
        operational_cost_bits: u64,
        failed_cost_bits: u64,
        initially_failed: bool,
    }

    let mut groups: HashMap<Signature, Vec<ComponentIndex>> = HashMap::new();
    let mut singletons: Vec<ComponentIndex> = Vec::new();

    for (idx, component) in model.components().iter().enumerate() {
        let position = positions
            .get(component.name())
            .copied()
            .unwrap_or(StructurePosition::Unreferenced);
        // Spare-managed components and multiply-referenced leaves are never
        // merged: activation order and repeated references are index-sensitive.
        if position == StructurePosition::Ambiguous
            || model.spare_unit_of(component.name()).is_some()
        {
            singletons.push(idx);
            continue;
        }
        let repair_unit = model
            .repair_units()
            .iter()
            .position(|ru| ru.components().iter().any(|c| c == component.name()));
        let priority = match repair_unit {
            Some(ru) => model.repair_units()[ru].strategy().priority_of(component),
            None => 0.0,
        };
        let signature = Signature {
            position,
            repair_unit,
            priority_bits: (priority + 0.0).to_bits(),
            failure_bits: component.failure_rate().to_bits(),
            repair_bits: component.repair_rate().to_bits(),
            dormancy_bits: component.dormancy_factor().to_bits(),
            operational_cost_bits: component.operational_cost_per_hour().to_bits(),
            failed_cost_bits: component.failed_cost_per_hour().to_bits(),
            initially_failed: component.is_initially_failed(),
        };
        groups.entry(signature).or_default().push(idx);
    }

    let mut families: Vec<ComponentFamily> = groups
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            ComponentFamily { members }
        })
        .chain(
            singletons
                .into_iter()
                .map(|idx| ComponentFamily { members: vec![idx] }),
        )
        .collect();
    families.sort_unstable_by_key(|family| family.members[0]);
    families
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::BasicComponent;
    use crate::repair::{RepairStrategy, RepairUnit};
    use crate::spare::SpareManagementUnit;
    use fault_tree::SystemStructure;

    fn family_names(model: &ArcadeModel) -> Vec<Vec<&str>> {
        detect_families(model)
            .into_iter()
            .map(|family| {
                family
                    .members
                    .iter()
                    .map(|&i| model.components()[i].name())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identical_siblings_form_a_family() {
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(vec![
                StructureNode::component("a"),
                StructureNode::component("b"),
            ]),
            StructureNode::component("r"),
        ]));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("b", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("r", 100.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FastestRepairFirst, 1)
                    .unwrap()
                    .responsible_for(["a", "b", "r"]),
            )
            .build()
            .unwrap();
        // `r` has identical rates but sits under a different gate.
        assert_eq!(family_names(&model), vec![vec!["a", "b"], vec!["r"]]);
    }

    #[test]
    fn different_rates_or_units_split_families() {
        let structure = SystemStructure::new(StructureNode::redundant(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
            StructureNode::component("c"),
            StructureNode::component("d"),
        ]));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("b", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("c", 100.0, 2.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("d", 100.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru1", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a", "b", "c"]),
            )
            .repair_unit(
                RepairUnit::new("ru2", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["d"]),
            )
            .build()
            .unwrap();
        // c differs in repair rate, d in repair unit.
        assert_eq!(
            family_names(&model),
            vec![vec!["a", "b"], vec!["c"], vec!["d"]]
        );
    }

    #[test]
    fn spare_managed_components_stay_singletons() {
        let structure = SystemStructure::new(StructureNode::required_of(
            1,
            vec![StructureNode::component("p"), StructureNode::component("s")],
        ));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("p", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("s", 100.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["p", "s"]),
            )
            .spare_unit(SpareManagementUnit::new("smu", ["p"], ["s"]).unwrap())
            .build()
            .unwrap();
        assert_eq!(family_names(&model), vec![vec!["p"], vec!["s"]]);
    }

    #[test]
    fn fcfs_merges_across_rates_only_when_priorities_agree() {
        // Under FCFS every component has priority zero, but different rates
        // still split families (the rates themselves are part of the chain).
        let structure = SystemStructure::new(StructureNode::redundant(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("b", 200.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a", "b"]),
            )
            .build()
            .unwrap();
        assert_eq!(family_names(&model), vec![vec!["a"], vec!["b"]]);
    }
}
