//! Interchangeable-component families: the sub-chains of compositional lumping.
//!
//! Two components are *interchangeable* when swapping them everywhere is an
//! automorphism of the composed CTMC: every measure (service level, the
//! operational predicate, cost rewards) and every scheduling decision (queue
//! insertion, crew dispatch) is blind to which of the two holds which role.
//! The orbit partition induced by permuting the members of such a **family**
//! is ordinarily lumpable, so the composer can explore canonical orbit
//! representatives directly — per-family sub-chain quotients composed on the
//! fly — instead of materialising the flat product chain.
//!
//! Interchangeability is detected conservatively; every condition below is
//! required so that the permutation provably commutes with the composition
//! semantics:
//!
//! * identical failure rate, repair rate, dormancy factor, both cost rates and
//!   initially-failed flag (bitwise equality on the rates);
//! * responsibility of the same repair unit (or of none), under which both
//!   components carry the same dispatch priority — this also aligns crew
//!   dispatch and preemption behaviour;
//! * no involvement in any spare management unit (spare activation picks
//!   members in definition order, which is not permutation-symmetric);
//! * each component appears at most once in the system structure, and
//!   components appearing do so as *sibling leaves of the same gate*. All
//!   structure gates (series → min, redundant → mean, required-of → ratio,
//!   and the derived or/and/vote fault-tree gates) are symmetric functions of
//!   their children, so sibling leaves of equal rates can be permuted without
//!   changing any tree evaluation. Components absent from the structure are
//!   invisible to the trees and grouped among themselves.

use std::collections::HashMap;
use std::hash::Hash;

use arcade_symmetry::code::{subtree_code, CodedSubtree, LeafAttributes};
use fault_tree::StructureNode;

use crate::model::ArcadeModel;
use crate::state::ComponentIndex;

/// A maximal group of mutually interchangeable components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentFamily {
    /// Member component indices, sorted ascending (definition order).
    pub members: Vec<ComponentIndex>,
}

impl ComponentFamily {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family has no members (never produced by detection).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the family is a singleton (no symmetry to exploit).
    pub fn is_singleton(&self) -> bool {
        self.members.len() <= 1
    }
}

/// A group of isomorphic **sibling subtrees**: the whole-subtree
/// generalisation of [`ComponentFamily`].
///
/// Each block lists the leaves of one subtree in canonical traversal order,
/// so `blocks[i][k]` corresponds to `blocks[j][k]` under the subtree
/// isomorphism. Swapping two blocks leaf-by-leaf is a chain automorphism —
/// the subtrees agree on every attribute a permutation must preserve (gates,
/// rates, costs, repair units, dispatch priorities, symmetry guards; see
/// [`detect_subtree_families`]) — so the canonical frontier may explore one
/// representative per block ordering instead of all `blocks.len()!`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeFamily {
    /// Aligned leaf lists of the isomorphic subtrees, one per subtree, in
    /// definition order of the subtrees.
    pub blocks: Vec<Vec<ComponentIndex>>,
    /// Depth of the subtrees' parent gate (root gate = 0). Families are
    /// canonicalised deepest-first, which makes the sorted representative
    /// unique under the full (wreath-product) symmetry group.
    pub depth: usize,
}

impl SubtreeFamily {
    /// Number of leaves per subtree.
    pub fn block_len(&self) -> usize {
        self.blocks.first().map_or(0, Vec::len)
    }
}

/// Where a component sits in the structure tree: the pre-order id of its
/// parent gate, a marker for "not referenced", or a marker for "referenced
/// more than once" (never mergeable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StructurePosition {
    Unreferenced,
    ChildOf(usize),
    Ambiguous,
}

/// Records, for every component name, the gate it is a leaf child of.
fn structure_positions(root: &StructureNode, positions: &mut HashMap<String, StructurePosition>) {
    // Pre-order traversal assigning each gate node an id; leaves record the id
    // of their parent gate (the root itself may be a leaf: parent id 0 is
    // reserved for the virtual super-root).
    fn walk(
        node: &StructureNode,
        parent: usize,
        next_id: &mut usize,
        positions: &mut HashMap<String, StructurePosition>,
    ) {
        match node {
            StructureNode::Component(name) => {
                positions
                    .entry(name.clone())
                    .and_modify(|p| *p = StructurePosition::Ambiguous)
                    .or_insert(StructurePosition::ChildOf(parent));
            }
            StructureNode::Series(children)
            | StructureNode::Redundant(children)
            | StructureNode::RequiredOf { children, .. } => {
                *next_id += 1;
                let id = *next_id;
                for child in children {
                    walk(child, id, next_id, positions);
                }
            }
        }
    }
    let mut next_id = 0;
    walk(root, 0, &mut next_id, positions);
}

/// Partitions the model's components into maximal interchangeable families.
///
/// Every component belongs to exactly one family; components with no
/// interchangeable partner form singleton families. Families are ordered by
/// their smallest member and members are sorted ascending, so the result is
/// deterministic.
pub fn detect_families(model: &ArcadeModel) -> Vec<ComponentFamily> {
    let mut positions: HashMap<String, StructurePosition> = HashMap::new();
    structure_positions(model.structure().root(), &mut positions);
    let guard_ids = guard_membership_ids(model);

    // Signature key: everything a permutation must preserve.
    #[derive(PartialEq, Eq, Hash)]
    struct Signature {
        position: StructurePosition,
        repair_unit: Option<usize>,
        priority_bits: u64,
        failure_bits: u64,
        repair_bits: u64,
        dormancy_bits: u64,
        operational_cost_bits: u64,
        failed_cost_bits: u64,
        initially_failed: bool,
        /// Exchanging leaves of different symmetry-guard membership would
        /// move a guarded observation (e.g. a facility's per-line mask on a
        /// merged group) — guarded leaves only merge within their set.
        guard_id: u64,
    }

    let mut groups: HashMap<Signature, Vec<ComponentIndex>> = HashMap::new();
    let mut singletons: Vec<ComponentIndex> = Vec::new();

    for (idx, component) in model.components().iter().enumerate() {
        let position = positions
            .get(component.name())
            .copied()
            .unwrap_or(StructurePosition::Unreferenced);
        // Spare-managed components and multiply-referenced leaves are never
        // merged: activation order and repeated references are index-sensitive.
        if position == StructurePosition::Ambiguous
            || model.spare_unit_of(component.name()).is_some()
        {
            singletons.push(idx);
            continue;
        }
        let repair_unit = model
            .repair_units()
            .iter()
            .position(|ru| ru.components().iter().any(|c| c == component.name()));
        let priority = match repair_unit {
            Some(ru) => model.repair_units()[ru].strategy().priority_of(component),
            None => 0.0,
        };
        let signature = Signature {
            position,
            repair_unit,
            priority_bits: (priority + 0.0).to_bits(),
            failure_bits: component.failure_rate().to_bits(),
            repair_bits: component.repair_rate().to_bits(),
            dormancy_bits: component.dormancy_factor().to_bits(),
            operational_cost_bits: component.operational_cost_per_hour().to_bits(),
            failed_cost_bits: component.failed_cost_per_hour().to_bits(),
            initially_failed: component.is_initially_failed(),
            guard_id: guard_ids[idx],
        };
        groups.entry(signature).or_default().push(idx);
    }

    let mut families: Vec<ComponentFamily> = groups
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            ComponentFamily { members }
        })
        .chain(
            singletons
                .into_iter()
                .map(|idx| ComponentFamily { members: vec![idx] }),
        )
        .collect();
    families.sort_unstable_by_key(|family| family.members[0]);
    families
}

/// Dense, exact id of every component's symmetry-guard membership set: two
/// components share an id iff they belong to exactly the same guards. Ids
/// are interned (not hashed), so distinct membership sets can never
/// collide.
fn guard_membership_ids(model: &ArcadeModel) -> Vec<u64> {
    let mut ids: HashMap<Vec<usize>, u64> = HashMap::new();
    model
        .components()
        .iter()
        .map(|component| {
            let membership: Vec<usize> = model
                .symmetry_guards()
                .iter()
                .enumerate()
                .filter(|(_, guard)| guard.iter().any(|c| c == component.name()))
                .map(|(index, _)| index)
                .collect();
            let next = ids.len() as u64;
            *ids.entry(membership).or_insert(next)
        })
        .collect()
}

/// Counts how often every component name appears as a structure leaf.
fn reference_counts(node: &StructureNode, counts: &mut HashMap<String, usize>) {
    match node {
        StructureNode::Component(name) => *counts.entry(name.clone()).or_insert(0) += 1,
        StructureNode::Series(children)
        | StructureNode::Redundant(children)
        | StructureNode::RequiredOf { children, .. } => {
            for child in children {
                reference_counts(child, counts);
            }
        }
    }
}

/// Detects the model's isomorphic-subtree orbit families: maximal groups of
/// ≥ 2 isomorphic sibling subtrees beyond single leaves (sibling-leaf groups
/// are [`detect_families`]'s domain and are excluded here so the two layers
/// compose without overlap).
///
/// Soundness is inherited from the canonical code: two subtrees match only
/// when they are isomorphic as attributed trees, where a leaf's attributes
/// comprise its exact rates, costs, dormancy, initially-failed flag,
/// repair-unit identity, dispatch priority and symmetry-guard signature.
/// Spare-managed and multiply-referenced leaves are salted with their index,
/// so no subtree containing one ever matches another — spare activation and
/// repeated references are order-sensitive. Under these conditions the
/// leaf-by-leaf block swap commutes with tree evaluation (all gates are
/// symmetric), crew dispatch (aligned leaves share unit and priority) and
/// every reward, i.e. it is a chain automorphism.
///
/// Families are returned deepest-first (the canonicalisation order), ties
/// broken by the smallest member index.
pub fn detect_subtree_families(model: &ArcadeModel) -> Vec<SubtreeFamily> {
    let mut counts = HashMap::new();
    reference_counts(model.structure().root(), &mut counts);
    let guard_ids = guard_membership_ids(model);

    let attributes = |name: &str| -> LeafAttributes {
        let index = model
            .component_index(name)
            .expect("structure leaves are validated against the components");
        let component = &model.components()[index];
        let repair_unit = model
            .repair_units()
            .iter()
            .position(|ru| ru.components().iter().any(|c| c == name));
        let priority = match repair_unit {
            Some(ru) => model.repair_units()[ru].strategy().priority_of(component),
            None => 0.0,
        };
        // Spare-managed and multiply-referenced leaves are index-sensitive:
        // a unique salt keeps every containing subtree unmergeable.
        let salt = (model.spare_unit_of(name).is_some()
            || counts.get(name).copied().unwrap_or(0) > 1)
            .then_some(index as u64);
        LeafAttributes {
            failure_bits: component.failure_rate().to_bits(),
            repair_bits: component.repair_rate().to_bits(),
            dormancy_bits: component.dormancy_factor().to_bits(),
            operational_cost_bits: component.operational_cost_per_hour().to_bits(),
            failed_cost_bits: component.failed_cost_per_hour().to_bits(),
            initially_failed: component.is_initially_failed(),
            repair_unit,
            priority_bits: (priority + 0.0).to_bits(),
            salt,
            guard_bits: guard_ids[index],
        }
    };

    let mut families = Vec::new();
    collect_subtree_families(
        model.structure().root(),
        0,
        model,
        &attributes,
        &mut families,
    );
    families.sort_by(|a, b| {
        b.depth
            .cmp(&a.depth)
            .then_with(|| a.blocks[0][0].cmp(&b.blocks[0][0]))
    });
    families
}

fn collect_subtree_families(
    node: &StructureNode,
    depth: usize,
    model: &ArcadeModel,
    attributes: &impl Fn(&str) -> LeafAttributes,
    families: &mut Vec<SubtreeFamily>,
) {
    let children = match node {
        StructureNode::Component(_) => return,
        StructureNode::Series(children)
        | StructureNode::Redundant(children)
        | StructureNode::RequiredOf { children, .. } => children,
    };
    // Group the gate's children by canonical code, skipping single leaves
    // (the leaf-family layer owns those).
    let coded: Vec<Option<CodedSubtree>> = children
        .iter()
        .map(|child| match child {
            StructureNode::Component(_) => None,
            _ => Some(subtree_code(child, attributes)),
        })
        .collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (index, coded_child) in coded.iter().enumerate() {
        let Some(child) = coded_child else { continue };
        let group = groups.iter_mut().find(|members| {
            coded[members[0]]
                .as_ref()
                .is_some_and(|first| first.code == child.code)
        });
        match group {
            Some(members) => members.push(index),
            None => groups.push(vec![index]),
        }
    }
    for members in groups {
        if members.len() < 2 {
            continue;
        }
        let blocks: Vec<Vec<ComponentIndex>> = members
            .iter()
            .map(|&child| {
                coded[child]
                    .as_ref()
                    .expect("grouped children are coded")
                    .leaves
                    .iter()
                    .map(|name| {
                        model
                            .component_index(name)
                            .expect("structure leaves are validated")
                    })
                    .collect()
            })
            .collect();
        // Two subtrees that both reference one multiply-referenced leaf get
        // equal (equally salted) codes but overlap; swapping them is not a
        // permutation, so the group is dropped.
        let mut seen = std::collections::HashSet::new();
        if blocks.iter().flatten().all(|&leaf| seen.insert(leaf)) {
            families.push(SubtreeFamily { blocks, depth });
        }
    }
    for child in children {
        collect_subtree_families(child, depth + 1, model, attributes, families);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::BasicComponent;
    use crate::repair::{RepairStrategy, RepairUnit};
    use crate::spare::SpareManagementUnit;
    use fault_tree::SystemStructure;

    fn family_names(model: &ArcadeModel) -> Vec<Vec<&str>> {
        detect_families(model)
            .into_iter()
            .map(|family| {
                family
                    .members
                    .iter()
                    .map(|&i| model.components()[i].name())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identical_siblings_form_a_family() {
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(vec![
                StructureNode::component("a"),
                StructureNode::component("b"),
            ]),
            StructureNode::component("r"),
        ]));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("b", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("r", 100.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FastestRepairFirst, 1)
                    .unwrap()
                    .responsible_for(["a", "b", "r"]),
            )
            .build()
            .unwrap();
        // `r` has identical rates but sits under a different gate.
        assert_eq!(family_names(&model), vec![vec!["a", "b"], vec!["r"]]);
    }

    #[test]
    fn different_rates_or_units_split_families() {
        let structure = SystemStructure::new(StructureNode::redundant(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
            StructureNode::component("c"),
            StructureNode::component("d"),
        ]));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("b", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("c", 100.0, 2.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("d", 100.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru1", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a", "b", "c"]),
            )
            .repair_unit(
                RepairUnit::new("ru2", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["d"]),
            )
            .build()
            .unwrap();
        // c differs in repair rate, d in repair unit.
        assert_eq!(
            family_names(&model),
            vec![vec!["a", "b"], vec!["c"], vec!["d"]]
        );
    }

    #[test]
    fn spare_managed_components_stay_singletons() {
        let structure = SystemStructure::new(StructureNode::required_of(
            1,
            vec![StructureNode::component("p"), StructureNode::component("s")],
        ));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("p", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("s", 100.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["p", "s"]),
            )
            .spare_unit(SpareManagementUnit::new("smu", ["p"], ["s"]).unwrap())
            .build()
            .unwrap();
        assert_eq!(family_names(&model), vec![vec!["p"], vec!["s"]]);
    }

    fn subtree_family_names(model: &ArcadeModel) -> Vec<Vec<Vec<&str>>> {
        detect_subtree_families(model)
            .into_iter()
            .map(|family| {
                family
                    .blocks
                    .iter()
                    .map(|block| {
                        block
                            .iter()
                            .map(|&i| model.components()[i].name())
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn twin_redundant_groups_form_a_subtree_family() {
        // series( redundant(a, b), redundant(c, d) ): the two redundant
        // groups are isomorphic subtrees; the leaf layer still owns the
        // within-group symmetry.
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(vec![
                StructureNode::component("a"),
                StructureNode::component("b"),
            ]),
            StructureNode::redundant(vec![
                StructureNode::component("c"),
                StructureNode::component("d"),
            ]),
        ]));
        let model = ArcadeModel::builder("twins", structure)
            .components(
                ["a", "b", "c", "d"]
                    .map(|n| BasicComponent::from_mttf_mttr(n, 100.0, 1.0).unwrap()),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a", "b", "c", "d"]),
            )
            .build()
            .unwrap();
        assert_eq!(
            subtree_family_names(&model),
            vec![vec![vec!["a", "b"], vec!["c", "d"]]]
        );
        assert_eq!(detect_subtree_families(&model)[0].depth, 0);
        assert_eq!(detect_subtree_families(&model)[0].block_len(), 2);
        // Leaf families stay per gate.
        assert_eq!(family_names(&model), vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn rate_differences_and_guards_split_subtree_families() {
        let structure = || {
            SystemStructure::new(StructureNode::series(vec![
                StructureNode::redundant(vec![
                    StructureNode::component("a"),
                    StructureNode::component("b"),
                ]),
                StructureNode::redundant(vec![
                    StructureNode::component("c"),
                    StructureNode::component("d"),
                ]),
            ]))
        };
        let base = |mttr_c: f64| {
            ArcadeModel::builder("split", structure())
                .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
                .component(BasicComponent::from_mttf_mttr("b", 100.0, 1.0).unwrap())
                .component(BasicComponent::from_mttf_mttr("c", 100.0, mttr_c).unwrap())
                .component(BasicComponent::from_mttf_mttr("d", 100.0, 1.0).unwrap())
                .repair_unit(
                    RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                        .unwrap()
                        .responsible_for(["a", "b", "c", "d"]),
                )
        };
        // A deviating repair rate breaks the subtree isomorphism.
        let skewed = base(2.0).build().unwrap();
        assert!(detect_subtree_families(&skewed).is_empty());

        // A symmetry guard separating the two groups forbids the swap even
        // though the subtrees are isomorphic.
        let guarded = base(1.0).symmetry_guard(["a", "b"]).build().unwrap();
        assert!(detect_subtree_families(&guarded).is_empty());

        // A guard covering both groups keeps the swap admissible.
        let covered = base(1.0)
            .symmetry_guard(["a", "b", "c", "d"])
            .build()
            .unwrap();
        assert_eq!(detect_subtree_families(&covered).len(), 1);
    }

    #[test]
    fn shared_or_spare_leaves_block_subtree_families() {
        // Both subtrees reference the shared leaf `x`: equal codes, but the
        // swap would not be a permutation.
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(vec![
                StructureNode::component("x"),
                StructureNode::component("a"),
            ]),
            StructureNode::redundant(vec![
                StructureNode::component("x"),
                StructureNode::component("b"),
            ]),
        ]));
        let model = ArcadeModel::builder("shared", structure)
            .components(
                ["x", "a", "b"].map(|n| BasicComponent::from_mttf_mttr(n, 100.0, 1.0).unwrap()),
            )
            .build()
            .unwrap();
        assert!(detect_subtree_families(&model).is_empty());

        // Spare-managed leaves salt their subtree codes.
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::required_of(
                1,
                vec![
                    StructureNode::component("p1"),
                    StructureNode::component("s1"),
                ],
            ),
            StructureNode::required_of(
                1,
                vec![
                    StructureNode::component("p2"),
                    StructureNode::component("s2"),
                ],
            ),
        ]));
        let model = ArcadeModel::builder("spared", structure)
            .components(
                ["p1", "s1", "p2", "s2"]
                    .map(|n| BasicComponent::from_mttf_mttr(n, 100.0, 1.0).unwrap()),
            )
            .spare_unit(SpareManagementUnit::new("smu1", ["p1"], ["s1"]).unwrap())
            .spare_unit(SpareManagementUnit::new("smu2", ["p2"], ["s2"]).unwrap())
            .build()
            .unwrap();
        assert!(detect_subtree_families(&model).is_empty());
    }

    #[test]
    fn fcfs_merges_across_rates_only_when_priorities_agree() {
        // Under FCFS every component has priority zero, but different rates
        // still split families (the rates themselves are part of the chain).
        let structure = SystemStructure::new(StructureNode::redundant(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]));
        let model = ArcadeModel::builder("m", structure)
            .component(BasicComponent::from_mttf_mttr("a", 100.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("b", 200.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["a", "b"]),
            )
            .build()
            .unwrap();
        assert_eq!(family_names(&model), vec![vec!["a"], vec!["b"]]);
    }
}
