//! Disaster specifications for survivability analysis.
//!
//! Survivability in the sense of Cloth & Haverkort is evaluated on a
//! *given-occurrence-of-disaster* (GOOD) model: the chain is started in the
//! state reached immediately after a specified set of components has failed,
//! and the measure asks how quickly the system recovers a required service
//! level. A [`Disaster`] names that set of simultaneously failed components.

use serde::{Deserialize, Serialize};

use crate::error::ArcadeError;

/// A named disaster: the set of components that have failed when analysis starts.
///
/// # Example
///
/// ```
/// # use arcade_core::Disaster;
/// # fn main() -> Result<(), arcade_core::ArcadeError> {
/// let disaster = Disaster::new("all-pumps", ["pump-1", "pump-2", "pump-3", "pump-4"])?;
/// assert_eq!(disaster.failed_components().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Disaster {
    name: String,
    failed_components: Vec<String>,
}

impl Disaster {
    /// Creates a disaster from the names of the simultaneously failed components.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidDisaster`] if the name is empty, the
    /// component list is empty, or a component is listed twice.
    pub fn new<I, S>(name: impl Into<String>, failed: I) -> Result<Self, ArcadeError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        if name.is_empty() {
            return Err(ArcadeError::InvalidDisaster {
                reason: "disaster name must not be empty".to_string(),
            });
        }
        let failed_components: Vec<String> = failed.into_iter().map(Into::into).collect();
        if failed_components.is_empty() {
            return Err(ArcadeError::InvalidDisaster {
                reason: format!("disaster `{name}` lists no failed components"),
            });
        }
        for (i, c) in failed_components.iter().enumerate() {
            if failed_components[..i].contains(c) {
                return Err(ArcadeError::InvalidDisaster {
                    reason: format!("disaster `{name}` lists component `{c}` twice"),
                });
            }
        }
        Ok(Disaster {
            name,
            failed_components,
        })
    }

    /// The disaster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The components failed at the start of the analysis.
    pub fn failed_components(&self) -> &[String] {
        &self.failed_components
    }

    /// Whether the given component is failed in this disaster.
    pub fn involves(&self, component: &str) -> bool {
        self.failed_components.iter().any(|c| c == component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_input() {
        assert!(Disaster::new("", ["a"]).is_err());
        assert!(Disaster::new("d", Vec::<String>::new()).is_err());
        assert!(Disaster::new("d", ["a", "a"]).is_err());
        assert!(Disaster::new("d", ["a", "b"]).is_ok());
    }

    #[test]
    fn accessors_and_involvement() {
        let d = Disaster::new("disaster-2", ["p1", "p2", "st1", "sf1", "res"]).unwrap();
        assert_eq!(d.name(), "disaster-2");
        assert_eq!(d.failed_components().len(), 5);
        assert!(d.involves("res"));
        assert!(!d.involves("p3"));
    }
}
