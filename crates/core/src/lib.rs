//! # arcade-core — architectural dependability evaluation
//!
//! A Rust implementation of the **Arcade** architectural dependability
//! framework as used in *"Evaluating Repair Strategies for a Water-Treatment
//! Facility using Arcade"* (DSN 2010). Arcade models a system as
//!
//! * **basic components** with exponential failure and repair behaviour and
//!   per-mode cost rates ([`BasicComponent`]),
//! * **repair units** owning one or more crews and scheduling repairs with a
//!   strategy — dedicated, FCFS, fastest-repair-first, fastest-failure-first or
//!   a static priority list ([`RepairUnit`], [`RepairStrategy`]),
//! * **spare management units** activating dormant spares when primaries fail
//!   ([`SpareManagementUnit`]),
//!
//! together with the system's reliability block structure (from the
//! [`fault_tree`] crate), named disasters and measure specifications.
//!
//! The deterministic subclass used in the paper is composed into a labelled
//! CTMC ([`CompiledModel`]), on which the measures are evaluated with the
//! stochastic model-checking algorithms of the [`ctmc`] crate:
//!
//! * reliability and point availability (time-bounded reachability),
//! * steady-state availability,
//! * **quantitative survivability** — the probability of recovering a given
//!   service level within a deadline after a disaster, where the service level
//!   is defined by the quantitative service tree,
//! * instantaneous and accumulated repair cost (Markov reward measures).
//!
//! # Quick start
//!
//! ```
//! use arcade_core::{Analysis, ArcadeModel, BasicComponent, Disaster, RepairStrategy, RepairUnit};
//! use fault_tree::{StructureNode, SystemStructure};
//!
//! # fn main() -> Result<(), arcade_core::ArcadeError> {
//! // Two redundant pumps sharing a single repair crew.
//! let structure = SystemStructure::new(StructureNode::redundant(vec![
//!     StructureNode::component("pump-1"),
//!     StructureNode::component("pump-2"),
//! ]));
//! let model = ArcadeModel::builder("pumping-station", structure)
//!     .component(BasicComponent::from_mttf_mttr("pump-1", 500.0, 1.0)?.with_failed_cost(3.0))
//!     .component(BasicComponent::from_mttf_mttr("pump-2", 500.0, 1.0)?.with_failed_cost(3.0))
//!     .repair_unit(
//!         RepairUnit::new("crew", RepairStrategy::FirstComeFirstServe, 1)?
//!             .responsible_for(["pump-1", "pump-2"])
//!             .with_idle_cost(1.0),
//!     )
//!     .disaster(Disaster::new("both-pumps", ["pump-1", "pump-2"])?)
//!     .build()?;
//!
//! let analysis = Analysis::new(&model)?;
//! let availability = analysis.steady_state_availability()?;
//! let survivability =
//!     analysis.survivability(model.disaster("both-pumps").unwrap(), 0.5, 2.0)?;
//! assert!(availability > 0.99);
//! assert!(survivability > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod component;
pub mod composer;
pub mod disaster;
pub mod error;
pub mod facility;
pub mod families;
pub mod measures;
pub mod model;
pub mod quotient;
pub mod repair;
pub mod spare;
pub mod state;

pub use analysis::{Analysis, Series};
pub use component::BasicComponent;
pub use composer::{
    CompiledModel, ComposerOptions, LumpedModel, LumpingMode, StateSpaceStats, SubchainStats,
    SubtreeOrbitStats, LABEL_DOWN, LABEL_NO_SERVICE, LABEL_OPERATIONAL,
};
pub use ctmc::ExecOptions;
pub use disaster::Disaster;
pub use error::ArcadeError;
pub use facility::{
    CompositionGroup, CompositionTree, FacilityAnalysis, FacilityDisaster, FacilityLine,
    FacilityLineStats, FacilityModel, FacilityStats, JointAvailability, JointReduction,
    OrbitAvailability,
};
pub use families::{detect_families, detect_subtree_families, ComponentFamily, SubtreeFamily};
pub use measures::{FacilityMeasure, Measure, MeasureResult};
pub use model::{ArcadeModel, ArcadeModelBuilder};
pub use quotient::{CompiledQuotient, QuotientParts};
pub use repair::{RepairStrategy, RepairUnit};
pub use spare::SpareManagementUnit;
pub use state::{ComponentIndex, ComponentStatus, GlobalState, QueueEncoding};
