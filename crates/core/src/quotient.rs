//! The compile/solve split: an immutable, solver-ready quotient artifact.
//!
//! [`crate::Analysis`] and [`crate::FacilityAnalysis`] fuse two very different
//! stages: *compilation* (explore the state space, lump it, build the
//! product/orbit fold) and *solving* (steady-state and transient numerics on
//! the resulting chain). A [`CompiledQuotient`] is the boundary object between
//! them — everything the solving stage needs and nothing the compilation
//! stage used to get there:
//!
//! * the (lumped/orbit) chain the solvers run on,
//! * the operational mask, per-state service levels and cost rewards on it,
//! * the solver-chain start state of every named disaster (the GOOD model),
//!   precomputed so no state-space metadata is needed at query time.
//!
//! The artifact is plain data: cloning it is cheap relative to compilation,
//! it is `Send + Sync`, and two artifacts can be compared exactly
//! ([`CompiledQuotient::identical`]) or fingerprinted
//! ([`CompiledQuotient::presentation_code`]) — the pair a quotient cache
//! needs to intern artifacts by content with hash collisions ruled out.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use arcade_symmetry::{chain_presentation_code, chains_identical};
use arcade_telemetry::Recorder;
use ctmc::{
    Ctmc, ExecOptions, RewardSolver, RewardStructure, SteadyStateSolver, TransientOptions,
    TransientSolver,
};

use crate::composer::{service_at_least, CompiledModel, ComposerOptions};
use crate::error::ArcadeError;
use crate::model::ArcadeModel;

/// The raw ingredients of a [`CompiledQuotient`], named so compilation
/// front-ends can assemble them field by field (see
/// [`CompiledQuotient::from_parts`]).
#[derive(Debug, Clone)]
pub struct QuotientParts {
    /// The artifact's display name (typically the source model's name).
    pub name: String,
    /// The chain every measure solves on.
    pub chain: Ctmc,
    /// "Fully operational" per solver-chain state.
    pub operational: Vec<bool>,
    /// The quantitative service level per solver-chain state.
    pub service: Vec<f64>,
    /// The repair-cost rewards on the solver chain.
    pub cost: RewardStructure,
    /// The no-disaster start state.
    pub initial: usize,
    /// Solver-chain start state of every named disaster.
    pub disaster_starts: BTreeMap<String, usize>,
    /// States of the chain the artifact was reduced from.
    pub source_states: usize,
}

/// An immutable solver-ready quotient: the output of the compilation stage
/// and the sole input of the solving stage (see the module docs).
#[derive(Debug, Clone)]
pub struct CompiledQuotient {
    name: String,
    /// The chain every measure solves on, with its initial distribution set
    /// to the no-disaster start state.
    chain: Ctmc,
    /// "Fully operational" per solver-chain state (for a facility artifact:
    /// at least one line fully operational).
    operational: Vec<bool>,
    /// The quantitative service level per solver-chain state.
    service: Vec<f64>,
    /// The repair-cost reward structure on the solver chain.
    cost: RewardStructure,
    /// The no-disaster start state.
    initial: usize,
    /// Solver-chain start state of every named disaster (the GOOD model).
    disaster_starts: BTreeMap<String, usize>,
    /// States of the chain the artifact was reduced from (the flat chain or
    /// the unreduced product) — the size the quotient saves over.
    source_states: usize,
}

impl CompiledQuotient {
    /// Assembles an artifact from already-prepared parts. Used by the
    /// compilation front-ends ([`CompiledQuotient::of_model`],
    /// [`crate::FacilityAnalysis::compiled_quotient`]); exposed so other
    /// composition pipelines can produce artifacts too.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidParameter`] when the metadata lengths
    /// disagree with the chain or a start state is out of range.
    pub fn from_parts(parts: QuotientParts) -> Result<Self, ArcadeError> {
        let QuotientParts {
            name,
            chain,
            operational,
            service,
            cost,
            initial,
            disaster_starts,
            source_states,
        } = parts;
        let n = chain.num_states();
        if operational.len() != n || service.len() != n || cost.state_rewards().len() != n {
            return Err(ArcadeError::InvalidParameter {
                reason: format!(
                    "quotient metadata must cover all {n} states (operational {}, service {}, \
                     cost {})",
                    operational.len(),
                    service.len(),
                    cost.state_rewards().len()
                ),
            });
        }
        if initial >= n || disaster_starts.values().any(|&s| s >= n) {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("quotient start states must lie in 0..{n}"),
            });
        }
        let mut span = Recorder::current().span("materialise");
        span.count("states", n as u64);
        span.count("source_states", source_states as u64);
        span.count("disasters", disaster_starts.len() as u64);
        let chain = chain.with_initial_state(initial)?;
        Ok(CompiledQuotient {
            name,
            chain,
            operational,
            service,
            cost,
            initial,
            disaster_starts,
            source_states,
        })
    }

    /// Compiles `model` and extracts its solver-ready quotient: the exactly
    /// lumped quotient when lumping is enabled (the default), the flat chain
    /// otherwise. Every disaster of the model gets its start block resolved
    /// at compile time.
    ///
    /// # Errors
    ///
    /// Propagates composition errors.
    pub fn of_model(model: &ArcadeModel, options: ComposerOptions) -> Result<Self, ArcadeError> {
        let compiled = CompiledModel::compile_with(model, options)?;
        Self::of_compiled(model, &compiled)
    }

    /// Extracts the solver-ready quotient of an already compiled model
    /// (shares the work when a [`CompiledModel`] is at hand anyway).
    ///
    /// # Errors
    ///
    /// Propagates disaster-resolution errors.
    pub fn of_compiled(model: &ArcadeModel, compiled: &CompiledModel) -> Result<Self, ArcadeError> {
        let block_of = |flat: usize| match compiled.lumped() {
            Some(lumped) => lumped.lumping().block_of(flat),
            None => flat,
        };
        let mut disaster_starts = BTreeMap::new();
        for disaster in model.disasters() {
            let flat = compiled.disaster_state_index(disaster)?;
            disaster_starts.insert(disaster.name().to_string(), block_of(flat));
        }
        let (chain, operational, service, cost) = match compiled.lumped() {
            Some(lumped) => (
                lumped.quotient().clone(),
                lumped.operational_mask().to_vec(),
                lumped.service_levels().to_vec(),
                lumped.cost_rewards().clone(),
            ),
            None => (
                compiled.chain().clone(),
                compiled.operational_mask().to_vec(),
                compiled.service_levels().to_vec(),
                compiled.cost_rewards().clone(),
            ),
        };
        Self::from_parts(QuotientParts {
            name: model.name().to_string(),
            chain,
            operational,
            service,
            cost,
            initial: block_of(compiled.initial_index()),
            disaster_starts,
            source_states: compiled.chain().num_states(),
        })
    }

    /// The artifact's display name (the source model's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The chain every measure solves on.
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// Number of solver-chain states.
    pub fn num_states(&self) -> usize {
        self.chain.num_states()
    }

    /// States of the chain this artifact was reduced from.
    pub fn source_states(&self) -> usize {
        self.source_states
    }

    /// "Fully operational" per solver-chain state.
    pub fn operational_mask(&self) -> &[bool] {
        &self.operational
    }

    /// The quantitative service level per solver-chain state.
    pub fn service_levels(&self) -> &[f64] {
        &self.service
    }

    /// The repair-cost rewards on the solver chain.
    pub fn cost_rewards(&self) -> &RewardStructure {
        &self.cost
    }

    /// The no-disaster start state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The named disasters this artifact can answer queries about, with
    /// their solver-chain start states.
    pub fn disaster_starts(&self) -> &BTreeMap<String, usize> {
        &self.disaster_starts
    }

    /// A deterministic fingerprint of the artifact's full presentation:
    /// [`chain_presentation_code`] of the solver chain extended with the
    /// exact bit patterns of every mask, level, reward and start state.
    /// Identical artifacts get identical codes; distinct artifacts collide
    /// only with hash probability and are told apart by
    /// [`CompiledQuotient::identical`] — a cache must confirm candidates
    /// with it before sharing an artifact between keys.
    pub fn presentation_code(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        chain_presentation_code(&self.chain).hash(&mut hasher);
        self.operational.hash(&mut hasher);
        for level in &self.service {
            level.to_bits().hash(&mut hasher);
        }
        self.cost.name().hash(&mut hasher);
        for reward in self.cost.state_rewards() {
            reward.to_bits().hash(&mut hasher);
        }
        self.initial.hash(&mut hasher);
        self.disaster_starts.hash(&mut hasher);
        self.source_states.hash(&mut hasher);
        hasher.finish()
    }

    /// Exact interchangeability: every query answered on `self` equals the
    /// same query on `other` bit-for-bit. The display name is deliberately
    /// not compared — two models compiling to the same presentation may
    /// share one cached artifact.
    pub fn identical(&self, other: &CompiledQuotient) -> bool {
        chains_identical(&self.chain, &other.chain)
            && self.operational == other.operational
            && bits_equal(&self.service, &other.service)
            && self.cost.name() == other.cost.name()
            && bits_equal(self.cost.state_rewards(), other.cost.state_rewards())
            && self.initial == other.initial
            && self.disaster_starts == other.disaster_starts
            && self.source_states == other.source_states
    }

    /// The solver-chain start state of `disaster`, or the no-disaster start
    /// for `None`.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::UnsupportedMeasure`] for unknown disasters.
    pub fn start_for(&self, disaster: Option<&str>) -> Result<usize, ArcadeError> {
        match disaster {
            None => Ok(self.initial),
            Some(name) => self.disaster_starts.get(name).copied().ok_or_else(|| {
                ArcadeError::UnsupportedMeasure {
                    reason: format!("unknown disaster `{name}`"),
                }
            }),
        }
    }

    /// The stationary distribution of the solver chain plus the number of
    /// iterative sweeps it took — warm-started from `guess` when one is
    /// given (the fixed point is unchanged; a good guess only shortens the
    /// iteration).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn stationary_counted(
        &self,
        guess: Option<&[f64]>,
        exec: ExecOptions,
    ) -> Result<(Vec<f64>, usize), ArcadeError> {
        let mut solver = SteadyStateSolver::new(&self.chain).exec(exec);
        if let Some(guess) = guess {
            solver = solver.initial_guess(guess.to_vec());
        }
        Ok(solver.solve_counted()?)
    }

    /// The operational probability mass of a stationary (or transient)
    /// distribution over the solver chain.
    pub fn availability_of(&self, pi: &[f64]) -> f64 {
        pi.iter()
            .zip(self.operational.iter())
            .filter(|(_, &up)| up)
            .map(|(p, _)| p)
            .sum()
    }

    /// Steady-state availability: one cold stationary solve followed by
    /// [`CompiledQuotient::availability_of`].
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn availability(&self, exec: ExecOptions) -> Result<f64, ArcadeError> {
        let mut span = Recorder::current().span("measure");
        span.count("states", self.chain.num_states() as u64);
        let (pi, _) = self.stationary_counted(None, exec)?;
        Ok(self.availability_of(&pi))
    }

    /// Survivability after `disaster`: the probability of reaching a service
    /// level of at least `service_level` within each deadline, batched over
    /// a single uniformisation pass (`bounded_until_many`).
    ///
    /// # Errors
    ///
    /// Rejects invalid service levels (before the disaster lookup, matching
    /// the analysis front-ends), unknown disasters, and propagates solver
    /// errors.
    pub fn survivability_curve(
        &self,
        disaster: &str,
        service_level: f64,
        times: &[f64],
        exec: ExecOptions,
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        if !(0.0..=1.0).contains(&service_level) {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("service level must be in [0, 1], got {service_level}"),
            });
        }
        let mut span = Recorder::current().span("measure");
        span.count("states", self.chain.num_states() as u64);
        span.count("points", times.len() as u64);
        let start = self.start_for(Some(disaster))?;
        let chain = self.chain.with_initial_state(start)?;
        let goal = service_at_least(&self.service, service_level);
        let safe = vec![true; goal.len()];
        let values = TransientSolver::with_options(&chain, transient_options(exec))
            .bounded_until_many(&safe, &goal, times)?;
        Ok(times.iter().copied().zip(values).collect())
    }

    /// Expected instantaneous cost rate at the given times, optionally
    /// starting right after a disaster.
    ///
    /// # Errors
    ///
    /// Rejects unknown disasters; propagates solver errors.
    pub fn instantaneous_cost_curve(
        &self,
        disaster: Option<&str>,
        times: &[f64],
        exec: ExecOptions,
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let mut span = Recorder::current().span("measure");
        span.count("states", self.chain.num_states() as u64);
        span.count("points", times.len() as u64);
        let (chain, rewards) = self.cost_setup(disaster)?;
        let solver = RewardSolver::new(&chain, rewards)?.with_options(transient_options(exec));
        let values = solver.instantaneous_series(times)?;
        Ok(times.iter().copied().zip(values).collect())
    }

    /// Expected accumulated cost up to the given time bounds, optionally
    /// starting right after a disaster.
    ///
    /// # Errors
    ///
    /// See [`CompiledQuotient::instantaneous_cost_curve`].
    pub fn accumulated_cost_curve(
        &self,
        disaster: Option<&str>,
        times: &[f64],
        exec: ExecOptions,
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let mut span = Recorder::current().span("measure");
        span.count("states", self.chain.num_states() as u64);
        span.count("points", times.len() as u64);
        let (chain, rewards) = self.cost_setup(disaster)?;
        let solver = RewardSolver::new(&chain, rewards)?.with_options(transient_options(exec));
        let values = solver.accumulated_series(times)?;
        Ok(times.iter().copied().zip(values).collect())
    }

    /// The restarted chain plus the cost rewards — the shared setup of both
    /// cost curves.
    fn cost_setup(&self, disaster: Option<&str>) -> Result<(Ctmc, &RewardStructure), ArcadeError> {
        let start = self.start_for(disaster)?;
        let chain = self.chain.with_initial_state(start)?;
        Ok((chain, &self.cost))
    }
}

fn transient_options(exec: ExecOptions) -> TransientOptions {
    TransientOptions {
        exec,
        ..TransientOptions::default()
    }
}

/// Exact (bitwise) equality of two f64 slices, consistent with the bit
/// patterns [`CompiledQuotient::presentation_code`] hashes.
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::BasicComponent;
    use crate::disaster::Disaster;
    use crate::repair::{RepairStrategy, RepairUnit};
    use crate::Analysis;
    use fault_tree::{StructureNode, SystemStructure};

    fn pump_model(mttf: f64) -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::component("pump"));
        ArcadeModel::builder("pump", structure)
            .component(
                BasicComponent::from_mttf_mttr("pump", mttf, 1.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::Dedicated, 1)
                    .unwrap()
                    .responsible_for(["pump"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("pump-down", ["pump"]).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn artifact_measures_match_the_analysis_front_end() {
        let model = pump_model(500.0);
        let exec = ExecOptions::default();
        let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
        let analysis = Analysis::new(&model).unwrap();

        let availability = quotient.availability(exec).unwrap();
        assert_eq!(
            availability.to_bits(),
            analysis.steady_state_availability().unwrap().to_bits()
        );

        let disaster = model.disaster("pump-down").unwrap();
        let times = [0.0, 0.5, 1.0, 3.0];
        let curve = quotient
            .survivability_curve("pump-down", 1.0, &times, exec)
            .unwrap();
        let reference = analysis.survivability_curve(disaster, 1.0, &times).unwrap();
        assert_eq!(curve, reference);

        let inst = quotient
            .instantaneous_cost_curve(Some("pump-down"), &times, exec)
            .unwrap();
        let inst_ref = analysis
            .instantaneous_cost_curve(Some(disaster), &times)
            .unwrap();
        assert_eq!(inst, inst_ref);

        let acc = quotient.accumulated_cost_curve(None, &times, exec).unwrap();
        let acc_ref = analysis.accumulated_cost_curve(None, &times).unwrap();
        assert_eq!(acc, acc_ref);
    }

    #[test]
    fn artifact_rejects_bad_queries() {
        let model = pump_model(500.0);
        let exec = ExecOptions::default();
        let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
        assert!(matches!(
            quotient.survivability_curve("nope", 1.0, &[1.0], exec),
            Err(ArcadeError::UnsupportedMeasure { .. })
        ));
        // The level check comes first, matching the analysis front-ends.
        assert!(matches!(
            quotient.survivability_curve("nope", 2.0, &[1.0], exec),
            Err(ArcadeError::InvalidParameter { .. })
        ));
        assert!(quotient
            .instantaneous_cost_curve(Some("nope"), &[1.0], exec)
            .is_err());
    }

    #[test]
    fn presentation_codes_separate_rate_variants_and_identical_confirms() {
        let a = CompiledQuotient::of_model(&pump_model(500.0), ComposerOptions::default()).unwrap();
        let b = CompiledQuotient::of_model(&pump_model(500.0), ComposerOptions::default()).unwrap();
        let c = CompiledQuotient::of_model(&pump_model(501.0), ComposerOptions::default()).unwrap();
        assert_eq!(a.presentation_code(), b.presentation_code());
        assert!(a.identical(&b));
        assert_ne!(a.presentation_code(), c.presentation_code());
        assert!(!a.identical(&c));
    }

    #[test]
    fn warm_start_shortens_the_iteration_to_the_same_fixed_point() {
        let quotient =
            CompiledQuotient::of_model(&pump_model(500.0), ComposerOptions::default()).unwrap();
        let exec = ExecOptions::default();
        let (cold, cold_iterations) = quotient.stationary_counted(None, exec).unwrap();
        let (warm, warm_iterations) = quotient.stationary_counted(Some(&cold), exec).unwrap();
        assert!(warm_iterations <= cold_iterations);
        assert!((quotient.availability_of(&warm) - quotient.availability_of(&cold)).abs() < 1e-10);
    }
}
