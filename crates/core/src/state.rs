//! Global states of a composed Arcade model.
//!
//! A global state records, for every basic component, whether it is
//! operational, dormant (a deactivated spare), waiting for repair or under
//! repair, plus the contents of every repair unit's waiting queue. The queue
//! contents are part of the state because the repair strategies of the paper
//! (FCFS tie-breaking in particular) depend on the order in which components
//! failed.

use serde::{Deserialize, Serialize};

/// Index of a component within a model (order of definition).
pub type ComponentIndex = usize;

/// The mode of one component in a global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentStatus {
    /// Up and active (failing at its full failure rate, contributing service).
    Operational,
    /// Up but deactivated spare (failing at its dormancy-scaled rate, not
    /// contributing service).
    Dormant,
    /// Failed and waiting in its repair unit's queue.
    WaitingForRepair,
    /// Failed and currently being repaired by a crew.
    UnderRepair,
}

impl ComponentStatus {
    /// Whether the component is failed (waiting or under repair).
    pub fn is_failed(self) -> bool {
        matches!(
            self,
            ComponentStatus::WaitingForRepair | ComponentStatus::UnderRepair
        )
    }

    /// Whether the component currently contributes service.
    pub fn provides_service(self) -> bool {
        matches!(self, ComponentStatus::Operational)
    }
}

/// How the waiting queue of a repair unit is encoded in the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QueueEncoding {
    /// The queue records the full arrival order of waiting components. This is
    /// the encoding closest to the PRISM models of the paper and produces the
    /// largest state spaces.
    ArrivalOrder,
    /// The queue is kept sorted by dispatch priority (ties keep arrival order).
    /// Dispatch behaviour is identical, but states that differ only in the
    /// arrival order of components with *different* priorities are merged,
    /// which can shrink the state space considerably.
    #[default]
    PriorityCanonical,
}

/// A global state of the composed model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalState {
    /// Status of every component, indexed by [`ComponentIndex`].
    pub statuses: Vec<ComponentStatus>,
    /// Waiting queue of every repair unit (component indices in dispatch order).
    pub queues: Vec<Vec<ComponentIndex>>,
}

impl GlobalState {
    /// Creates a state with the given component statuses and empty queues.
    pub fn new(statuses: Vec<ComponentStatus>, num_repair_units: usize) -> Self {
        GlobalState {
            statuses,
            queues: vec![Vec::new(); num_repair_units],
        }
    }

    /// Number of failed components (waiting or under repair).
    pub fn num_failed(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_failed()).count()
    }

    /// Number of components currently under repair in the given repair unit's
    /// responsibility set.
    pub fn num_under_repair(&self, components_of_unit: &[ComponentIndex]) -> usize {
        components_of_unit
            .iter()
            .filter(|&&c| self.statuses[c] == ComponentStatus::UnderRepair)
            .count()
    }

    /// Whether the given component is failed in this state.
    pub fn is_failed(&self, component: ComponentIndex) -> bool {
        self.statuses[component].is_failed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(!ComponentStatus::Operational.is_failed());
        assert!(!ComponentStatus::Dormant.is_failed());
        assert!(ComponentStatus::WaitingForRepair.is_failed());
        assert!(ComponentStatus::UnderRepair.is_failed());
        assert!(ComponentStatus::Operational.provides_service());
        assert!(!ComponentStatus::Dormant.provides_service());
        assert!(!ComponentStatus::UnderRepair.provides_service());
    }

    #[test]
    fn state_counts() {
        let state = GlobalState::new(
            vec![
                ComponentStatus::Operational,
                ComponentStatus::UnderRepair,
                ComponentStatus::WaitingForRepair,
                ComponentStatus::Dormant,
            ],
            2,
        );
        assert_eq!(state.num_failed(), 2);
        assert_eq!(state.num_under_repair(&[0, 1, 2, 3]), 1);
        assert_eq!(state.num_under_repair(&[0, 3]), 0);
        assert!(state.is_failed(1));
        assert!(!state.is_failed(0));
        assert_eq!(state.queues.len(), 2);
    }

    #[test]
    fn default_queue_encoding_is_canonical() {
        assert_eq!(QueueEncoding::default(), QueueEncoding::PriorityCanonical);
    }
}
