//! Property tests of the k-line facility product layer (k > 2).
//!
//! For *coupling-free* k-line facilities (every line with its own repair
//! unit) the product-form availability must equal the scalar inclusion–
//! exclusion closed form `A = 1 − Π_i (1 − A_i)`: the per-group chains are
//! independent, so "every line down" factorises. The k = 3 case is small
//! enough to confirm against the genuine joint chain as well.

use arcade_core::{
    ArcadeModel, BasicComponent, FacilityAnalysis, FacilityModel, RepairStrategy, RepairUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct LineSpec {
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    strategy: RepairStrategy,
    crews: usize,
}

fn arbitrary_line() -> impl Strategy<Value = LineSpec> {
    (
        proptest::collection::vec((10.0f64..500.0, 0.5f64..20.0), 1..=2),
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
        ],
        1usize..=2,
    )
        .prop_map(|(rates, strategy, crews)| LineSpec {
            mttfs: rates.iter().map(|r| r.0).collect(),
            mttrs: rates.iter().map(|r| r.1).collect(),
            strategy,
            crews,
        })
}

/// A redundant-group line whose components all hang off one repair unit.
fn line_model(spec: &LineSpec, unit_name: &str) -> ArcadeModel {
    let names: Vec<String> = (0..spec.mttfs.len()).map(|i| format!("c{i}")).collect();
    let structure = SystemStructure::new(StructureNode::redundant(
        names
            .iter()
            .map(|n| StructureNode::component(n.clone()))
            .collect(),
    ));
    let mut builder = ArcadeModel::builder("line", structure);
    for (name, (&mttf, &mttr)) in names.iter().zip(spec.mttfs.iter().zip(spec.mttrs.iter())) {
        builder = builder.component(BasicComponent::from_mttf_mttr(name, mttf, mttr).unwrap());
    }
    builder
        .repair_unit(
            RepairUnit::new(unit_name, spec.strategy.clone(), spec.crews)
                .unwrap()
                .responsible_for(names),
        )
        .build()
        .unwrap()
}

/// A coupling-free k-line bank: each line gets its own repair unit.
fn bank(lines: &[LineSpec]) -> FacilityModel {
    let mut builder = FacilityModel::builder("random-k-bank");
    for (i, spec) in lines.iter().enumerate() {
        builder = builder.line(format!("l{i}"), line_model(spec, &format!("ru{i}")));
    }
    builder.build().unwrap()
}

/// `1 − Π_i (1 − A_i)` from the per-line availabilities.
fn inclusion_exclusion(analysis: &FacilityAnalysis) -> f64 {
    let k = analysis.stats().lines.len();
    let all_down: f64 = (0..k)
        .map(|i| 1.0 - analysis.line_availability(i).unwrap())
        .product();
    1.0 - all_down
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn three_line_product_availability_matches_the_closed_form(
        lines in proptest::collection::vec(arbitrary_line(), 3),
    ) {
        let facility = bank(&lines);
        prop_assert_eq!(facility.composition_tree().groups.len(), 3);
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let formula = inclusion_exclusion(&analysis);
        let product_form = analysis.steady_state_availability().unwrap();
        prop_assert!(
            (product_form - formula).abs() <= 1e-9,
            "product form {product_form} vs closed form {formula}"
        );
        // k = 3 stays small enough for the genuine joint chain to confirm.
        let joint = analysis.joint_steady_state_availability().unwrap();
        prop_assert!(
            (joint.availability - formula).abs() <= 1e-9,
            "joint {} vs closed form {formula}",
            joint.availability
        );
        prop_assert!(joint.residual < 1e-9, "residual {}", joint.residual);
    }

    #[test]
    fn four_line_product_availability_matches_the_closed_form(
        lines in proptest::collection::vec(arbitrary_line(), 4),
    ) {
        let facility = bank(&lines);
        prop_assert_eq!(facility.composition_tree().groups.len(), 4);
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let formula = inclusion_exclusion(&analysis);
        let product_form = analysis.steady_state_availability().unwrap();
        prop_assert!(
            (product_form - formula).abs() <= 1e-9,
            "product form {product_form} vs closed form {formula}"
        );
    }
}
