//! Property-based exactness of the isomorphic-subtree orbit reduction:
//! models with planted isomorphic subtrees must compose to fewer canonical
//! states than the flat chain while agreeing on every measure within 1e-9.

use arcade_core::{
    Analysis, ArcadeModel, BasicComponent, CompiledModel, ComposerOptions, Disaster, LumpingMode,
    RepairStrategy, RepairUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct PlantedSpec {
    /// Number of isomorphic subtree copies planted next to each other.
    copies: usize,
    /// Leaves per copy; leaf `k` carries the same rates in every copy.
    leaves_per_copy: usize,
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    /// Gate kind inside each copy and above the copies.
    inner_redundant: bool,
    outer_redundant: bool,
    /// An extra component outside the symmetry, to keep the model irregular.
    with_extra: bool,
    strategy: RepairStrategy,
    crews: usize,
}

fn arbitrary_spec() -> impl Strategy<Value = PlantedSpec> {
    (
        // (copies, leaves per copy, extra allowed): capped at six components
        // so the *flat* reference chain (queue interleavings under FCFS)
        // stays cheap enough for a debug-mode property run.
        prop_oneof![
            Just((2usize, 2usize, true)),
            Just((2usize, 3usize, false)),
            Just((3usize, 2usize, false)),
        ],
        proptest::collection::vec(10.0f64..2000.0, 4),
        proptest::collection::vec(0.5f64..50.0, 4),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
        ],
        1usize..=2,
    )
        .prop_map(
            |(
                (copies, leaves_per_copy, extra_allowed),
                mttfs,
                mttrs,
                inner_redundant,
                outer_redundant,
                with_extra,
                strategy,
                crews,
            )| PlantedSpec {
                copies,
                leaves_per_copy,
                mttfs,
                mttrs,
                inner_redundant,
                outer_redundant,
                with_extra: with_extra && extra_allowed,
                strategy,
                crews,
            },
        )
}

fn build_model(spec: &PlantedSpec) -> ArcadeModel {
    let mut names: Vec<String> = Vec::new();
    let mut subtrees: Vec<StructureNode> = Vec::new();
    for copy in 0..spec.copies {
        let leaves: Vec<String> = (0..spec.leaves_per_copy)
            .map(|k| format!("c{copy}x{k}"))
            .collect();
        let children: Vec<StructureNode> = leaves
            .iter()
            .map(|n| StructureNode::component(n.clone()))
            .collect();
        subtrees.push(if spec.inner_redundant {
            StructureNode::redundant(children)
        } else {
            StructureNode::series(children)
        });
        names.extend(leaves);
    }
    if spec.with_extra {
        subtrees.push(StructureNode::component("extra"));
        names.push("extra".to_string());
    }
    let structure = SystemStructure::new(if spec.outer_redundant {
        StructureNode::redundant(subtrees)
    } else {
        StructureNode::series(subtrees)
    });

    let mut builder = ArcadeModel::builder("planted-symmetry", structure);
    for name in &names {
        // Position inside the copy decides the rates; copies are isomorphic.
        let slot = name
            .split('x')
            .nth(1)
            .and_then(|k| k.parse::<usize>().ok())
            .unwrap_or(3);
        builder = builder.component(
            BasicComponent::from_mttf_mttr(name, spec.mttfs[slot], spec.mttrs[slot])
                .unwrap()
                .with_failed_cost(3.0),
        );
    }
    builder = builder.repair_unit(
        RepairUnit::new("ru", spec.strategy.clone(), spec.crews)
            .unwrap()
            .responsible_for(names.clone())
            .with_idle_cost(1.0),
    );
    // An asymmetric disaster: the whole first copy (plus the extra) fails.
    let first_copy: Vec<String> = names
        .iter()
        .filter(|n| n.starts_with("c0") || n.as_str() == "extra")
        .cloned()
        .collect();
    builder = builder.disaster(Disaster::new("first-copy", first_copy).unwrap());
    builder.build().unwrap()
}

fn options(lumping: LumpingMode) -> ComposerOptions {
    ComposerOptions {
        lumping,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Orbit-quotient measures agree with the unreduced chain to <= 1e-9 on
    /// random models with planted isomorphic subtrees, while the canonical
    /// frontier explores strictly fewer states.
    #[test]
    fn subtree_orbit_measures_match_the_flat_chain(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let flat_compiled =
            CompiledModel::compile_with(&model, options(LumpingMode::Disabled)).unwrap();
        let orbit_compiled =
            CompiledModel::compile_with(&model, options(LumpingMode::Compositional)).unwrap();

        // The planted copies are detected as one subtree family with
        // `copies` blocks, and the exploration is strictly smaller than the
        // flat chain (the copies always admit asymmetric role assignments).
        let stats = orbit_compiled.stats();
        prop_assert_eq!(stats.subtree_orbits.len(), 1);
        prop_assert_eq!(stats.subtree_orbits[0].blocks.len(), spec.copies);
        let flat_states = flat_compiled.stats().num_states;
        prop_assert!(
            stats.num_states < flat_states,
            "orbit frontier explored {} of {flat_states} flat states",
            stats.num_states
        );
        // The final exact pass re-verifies stability against the labels.
        let lumped = orbit_compiled.lumped().unwrap();
        lumped.lumping().verify(orbit_compiled.chain(), 1e-9).unwrap();

        let flat = Analysis::from_compiled(&model, flat_compiled);
        let orbit = Analysis::from_compiled(&model, orbit_compiled);

        let a_flat = flat.steady_state_availability().unwrap();
        let a_orbit = orbit.steady_state_availability().unwrap();
        prop_assert!((a_flat - a_orbit).abs() <= 1e-9, "availability {a_flat} vs {a_orbit}");

        let c_flat = flat.long_run_cost_rate().unwrap();
        let c_orbit = orbit.long_run_cost_rate().unwrap();
        prop_assert!((c_flat - c_orbit).abs() <= 1e-9, "cost rate {c_flat} vs {c_orbit}");

        for t in [0.5, 5.0, 50.0] {
            let r_flat = flat.reliability(t).unwrap();
            let r_orbit = orbit.reliability(t).unwrap();
            prop_assert!((r_flat - r_orbit).abs() <= 1e-9, "reliability({t}) {r_flat} vs {r_orbit}");
        }

        // Disaster-started measures exercise the canonicalised GOOD state.
        let disaster = model.disaster("first-copy").unwrap();
        for t in [0.5, 2.0, 20.0] {
            let s_flat = flat.survivability(disaster, 1.0, t).unwrap();
            let s_orbit = orbit.survivability(disaster, 1.0, t).unwrap();
            prop_assert!((s_flat - s_orbit).abs() <= 1e-9,
                "survivability({t}) {s_flat} vs {s_orbit}");
        }
        let acc_flat = flat.accumulated_cost_curve(Some(disaster), &[1.0, 10.0]).unwrap();
        let acc_orbit = orbit.accumulated_cost_curve(Some(disaster), &[1.0, 10.0]).unwrap();
        for ((t, a), (_, b)) in acc_flat.iter().zip(acc_orbit.iter()) {
            prop_assert!((a - b).abs() <= 1e-9, "accumulated cost({t}) {a} vs {b}");
        }
    }
}
