//! Property-based tests of the state-space composer on randomly generated
//! Arcade models.

use arcade_core::{
    ArcadeModel, BasicComponent, CompiledModel, ComposerOptions, Disaster, QueueEncoding,
    RepairStrategy, RepairUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ModelSpec {
    component_count: usize,
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    strategy: RepairStrategy,
    crews: usize,
    redundant: bool,
}

fn arbitrary_spec() -> impl Strategy<Value = ModelSpec> {
    (
        2usize..=5,
        proptest::collection::vec(10.0f64..5000.0, 5),
        proptest::collection::vec(0.5f64..200.0, 5),
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
            Just(RepairStrategy::FastestFailureFirst),
        ],
        1usize..=3,
        any::<bool>(),
    )
        .prop_map(
            |(component_count, mttfs, mttrs, strategy, crews, redundant)| ModelSpec {
                component_count,
                mttfs,
                mttrs,
                strategy,
                crews,
                redundant,
            },
        )
}

fn build_model(spec: &ModelSpec) -> ArcadeModel {
    let names: Vec<String> = (0..spec.component_count).map(|i| format!("c{i}")).collect();
    let children: Vec<StructureNode> = names
        .iter()
        .map(|n| StructureNode::component(n.clone()))
        .collect();
    let structure = SystemStructure::new(if spec.redundant {
        StructureNode::redundant(children)
    } else {
        StructureNode::series(children)
    });
    let mut builder = ArcadeModel::builder("random", structure);
    for (i, name) in names.iter().enumerate() {
        builder = builder.component(
            BasicComponent::from_mttf_mttr(name, spec.mttfs[i], spec.mttrs[i])
                .unwrap()
                .with_failed_cost(3.0),
        );
    }
    builder = builder.repair_unit(
        RepairUnit::new("ru", spec.strategy.clone(), spec.crews)
            .unwrap()
            .responsible_for(names.clone())
            .with_idle_cost(1.0),
    );
    builder = builder.disaster(Disaster::new("all", names).unwrap());
    builder.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn composed_chains_are_well_formed(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let compiled = CompiledModel::compile(&model).unwrap();
        let chain = compiled.chain();

        // Initial state: everything operational, service level 1, label consistency.
        prop_assert!(compiled.operational_mask()[compiled.initial_index()]);
        prop_assert!((compiled.service_levels()[compiled.initial_index()] - 1.0).abs() < 1e-12);

        // Every state has non-negative cost and a service level in [0, 1].
        for (idx, level) in compiled.service_levels().iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(level));
            prop_assert!(compiled.cost_rewards().state_rewards()[idx] >= 0.0);
        }

        // Labels partition consistently: "down" is the complement of "operational".
        let down = chain.label("down").unwrap();
        let operational = chain.label("operational").unwrap();
        for (d, o) in down.iter().zip(operational.iter()) {
            prop_assert!(d ^ o);
        }

        // Exit rates: the fully-failed state (if reachable) still has repairs
        // enabled, so no state other than none should be absorbing.
        for state in 0..chain.num_states() {
            prop_assert!(chain.exit_rates()[state] > 0.0);
        }
    }

    #[test]
    fn queue_encodings_agree_on_measures(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let canonical = CompiledModel::compile_with(
            &model,
            ComposerOptions { queue_encoding: QueueEncoding::PriorityCanonical, ..Default::default() },
        )
        .unwrap();
        let arrival = CompiledModel::compile_with(
            &model,
            ComposerOptions { queue_encoding: QueueEncoding::ArrivalOrder, ..Default::default() },
        )
        .unwrap();
        // The canonical encoding merges behaviourally equivalent states.
        prop_assert!(canonical.stats().num_states <= arrival.stats().num_states);

        // Both encodings give the same steady-state availability.
        let availability = |compiled: &CompiledModel| -> f64 {
            let analysis = arcade_core::Analysis::from_compiled(&model, compiled.clone());
            analysis.steady_state_availability().unwrap()
        };
        let a = availability(&canonical);
        let b = availability(&arrival);
        prop_assert!((a - b).abs() < 1e-6, "canonical {a} vs arrival-order {b}");
    }

    #[test]
    fn disaster_states_are_reachable_and_fully_failed(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let compiled = CompiledModel::compile(&model).unwrap();
        let disaster = model.disaster("all").unwrap();
        let index = compiled.disaster_state_index(disaster).unwrap();
        let state = &compiled.states()[index];
        prop_assert_eq!(state.num_failed(), spec.component_count);
        prop_assert!((compiled.service_levels()[index]).abs() < 1e-12);
        let good = compiled.chain_after_disaster(disaster).unwrap();
        prop_assert_eq!(good.initial_distribution()[index], 1.0);
    }

    #[test]
    fn dedicated_state_space_is_the_component_cross_product(
        mttfs in proptest::collection::vec(10.0f64..1000.0, 2..=6),
    ) {
        let names: Vec<String> = (0..mttfs.len()).map(|i| format!("c{i}")).collect();
        let structure = SystemStructure::new(StructureNode::series(
            names.iter().map(|n| StructureNode::component(n.clone())).collect(),
        ));
        let mut builder = ArcadeModel::builder("cross", structure);
        for (name, mttf) in names.iter().zip(mttfs.iter()) {
            builder = builder.component(BasicComponent::from_mttf_mttr(name, *mttf, 1.0).unwrap());
        }
        builder = builder.repair_unit(
            RepairUnit::new("ru", RepairStrategy::Dedicated, 1).unwrap().responsible_for(names.clone()),
        );
        let model = builder.build().unwrap();
        let compiled = CompiledModel::compile(&model).unwrap();
        prop_assert_eq!(compiled.stats().num_states, 1usize << names.len());
        prop_assert_eq!(compiled.stats().num_transitions, names.len() << names.len());
    }
}
