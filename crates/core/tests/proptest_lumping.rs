//! Property-based exactness tests of the lumping pipeline: for random small
//! Arcade models, every measure computed on the lumped quotient must equal the
//! same measure computed on the flat chain within 1e-9.

use arcade_core::{
    Analysis, ArcadeModel, BasicComponent, CompiledModel, ComposerOptions, Disaster, LumpingMode,
    RepairStrategy, RepairUnit, SpareManagementUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ModelSpec {
    component_count: usize,
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    /// Number of leading components sharing one MTTF/MTTR (symmetry makes the
    /// quotient strictly smaller, exercising real merges).
    identical_prefix: usize,
    strategy: RepairStrategy,
    crews: usize,
    redundant: bool,
    with_spare: bool,
}

fn arbitrary_spec() -> impl Strategy<Value = ModelSpec> {
    (
        2usize..=4,
        proptest::collection::vec(10.0f64..2000.0, 5),
        proptest::collection::vec(0.5f64..50.0, 5),
        0usize..=4,
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
            Just(RepairStrategy::FastestFailureFirst),
        ],
        1usize..=2,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(
                component_count,
                mttfs,
                mttrs,
                identical_prefix,
                strategy,
                crews,
                redundant,
                with_spare,
            )| {
                ModelSpec {
                    component_count,
                    mttfs,
                    mttrs,
                    identical_prefix,
                    strategy,
                    crews,
                    redundant,
                    with_spare,
                }
            },
        )
}

fn build_model(spec: &ModelSpec) -> ArcadeModel {
    let names: Vec<String> = (0..spec.component_count).map(|i| format!("c{i}")).collect();
    let children: Vec<StructureNode> = names
        .iter()
        .map(|n| StructureNode::component(n.clone()))
        .collect();
    let structure = SystemStructure::new(if spec.redundant {
        StructureNode::redundant(children)
    } else {
        StructureNode::series(children)
    });
    let mut builder = ArcadeModel::builder("lumping-random", structure);
    for (i, name) in names.iter().enumerate() {
        // Components in the identical prefix share rates so that genuine
        // symmetries (and therefore non-trivial lumping) occur.
        let source = if i < spec.identical_prefix { 0 } else { i };
        builder = builder.component(
            BasicComponent::from_mttf_mttr(name, spec.mttfs[source], spec.mttrs[source])
                .unwrap()
                .with_failed_cost(3.0),
        );
    }
    builder = builder.repair_unit(
        RepairUnit::new("ru", spec.strategy.clone(), spec.crews)
            .unwrap()
            .responsible_for(names.clone())
            .with_idle_cost(1.0),
    );
    if spec.with_spare && spec.component_count >= 2 {
        let spare = names.last().unwrap().clone();
        let primaries: Vec<String> = names[..spec.component_count - 1].to_vec();
        builder = builder.spare_unit(SpareManagementUnit::new("smu", primaries, [spare]).unwrap());
    }
    builder = builder.disaster(Disaster::new("all", names).unwrap());
    builder.build().unwrap()
}

fn flat_and_lumped(model: &ArcadeModel) -> (Analysis<'_>, Analysis<'_>) {
    let flat = CompiledModel::compile_with(
        model,
        ComposerOptions {
            lumping: LumpingMode::Disabled,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(flat.lumped().is_none());
    let lumped = CompiledModel::compile_with(
        model,
        ComposerOptions {
            lumping: LumpingMode::Exact,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(lumped.lumped().is_some());
    (
        Analysis::from_compiled(model, flat),
        Analysis::from_compiled(model, lumped),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quotient_measures_match_the_flat_chain(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let (flat, lumped) = flat_and_lumped(&model);

        // The partition is genuinely lumpable (engine self-check).
        let compiled = lumped.compiled();
        let lumped_model = compiled.lumped().unwrap();
        lumped_model.lumping().verify(compiled.chain(), 1e-12).unwrap();
        prop_assert!(lumped_model.num_blocks() <= compiled.stats().num_states);

        // Steady-state availability.
        let a_flat = flat.steady_state_availability().unwrap();
        let a_lumped = lumped.steady_state_availability().unwrap();
        prop_assert!((a_flat - a_lumped).abs() <= 1e-9, "availability {a_flat} vs {a_lumped}");

        // Long-run cost rate.
        let c_flat = flat.long_run_cost_rate().unwrap();
        let c_lumped = lumped.long_run_cost_rate().unwrap();
        prop_assert!((c_flat - c_lumped).abs() <= 1e-9, "cost rate {c_flat} vs {c_lumped}");

        // Transient measures at a few horizons.
        for t in [0.5, 5.0, 50.0] {
            let r_flat = flat.reliability(t).unwrap();
            let r_lumped = lumped.reliability(t).unwrap();
            prop_assert!((r_flat - r_lumped).abs() <= 1e-9, "reliability({t}) {r_flat} vs {r_lumped}");

            let p_flat = flat.point_availability(t).unwrap();
            let p_lumped = lumped.point_availability(t).unwrap();
            prop_assert!(
                (p_flat - p_lumped).abs() <= 1e-9,
                "point availability({t}) {p_flat} vs {p_lumped}"
            );
        }

        // Accumulated and instantaneous cost from the regular initial state.
        let acc_flat = flat.accumulated_cost_curve(None, &[1.0, 10.0]).unwrap();
        let acc_lumped = lumped.accumulated_cost_curve(None, &[1.0, 10.0]).unwrap();
        for ((t, a), (_, b)) in acc_flat.iter().zip(acc_lumped.iter()) {
            prop_assert!((a - b).abs() <= 1e-9, "accumulated cost({t}) {a} vs {b}");
        }
    }

    #[test]
    fn survivability_and_disaster_costs_match(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let (flat, lumped) = flat_and_lumped(&model);
        let disaster = model.disaster("all").unwrap();

        for level in [0.5, 1.0] {
            for t in [0.5, 2.0, 20.0] {
                let s_flat = flat.survivability(disaster, level, t).unwrap();
                let s_lumped = lumped.survivability(disaster, level, t).unwrap();
                prop_assert!(
                    (s_flat - s_lumped).abs() <= 1e-9,
                    "survivability({level}, {t}) {s_flat} vs {s_lumped}"
                );
            }
        }

        let inst_flat = flat.instantaneous_cost_curve(Some(disaster), &[0.0, 2.0]).unwrap();
        let inst_lumped = lumped.instantaneous_cost_curve(Some(disaster), &[0.0, 2.0]).unwrap();
        for ((t, a), (_, b)) in inst_flat.iter().zip(inst_lumped.iter()) {
            prop_assert!((a - b).abs() <= 1e-9, "instantaneous cost({t}) {a} vs {b}");
        }
    }

    #[test]
    fn symmetric_components_lump_strictly(
        mttf in 50.0f64..500.0,
        mttr in 0.5f64..5.0,
        count in 3usize..=5,
    ) {
        // `count` identical components under dedicated repair: 2^count flat
        // states must lump to count + 1 blocks (number of failed components).
        let names: Vec<String> = (0..count).map(|i| format!("c{i}")).collect();
        let structure = SystemStructure::new(StructureNode::series(
            names.iter().map(|n| StructureNode::component(n.clone())).collect(),
        ));
        let mut builder = ArcadeModel::builder("symmetric", structure);
        for name in &names {
            builder = builder
                .component(BasicComponent::from_mttf_mttr(name, mttf, mttr).unwrap().with_failed_cost(3.0));
        }
        builder = builder.repair_unit(
            RepairUnit::new("ru", RepairStrategy::Dedicated, 1).unwrap().responsible_for(names.clone()),
        );
        let model = builder.build().unwrap();
        // Flat-then-lump (Exact) materialises the full 2^count product first.
        let compiled = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                lumping: LumpingMode::Exact,
                ..Default::default()
            },
        )
        .unwrap();
        let stats = compiled.stats();
        prop_assert_eq!(stats.num_states, 1usize << count);
        prop_assert_eq!(stats.lumped_states, Some(count + 1));

        // The compositional default explores only the count + 1 canonical
        // representatives — the flat product is never materialised.
        let compositional = CompiledModel::compile(&model).unwrap();
        let stats = compositional.stats();
        prop_assert_eq!(stats.num_states, count + 1);
        prop_assert_eq!(stats.lumped_states, Some(count + 1));
        prop_assert!(stats.subchain_state_bound.unwrap() > count);
    }
}
