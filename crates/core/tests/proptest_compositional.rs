//! Property-based exactness tests of the compositional pipeline: composing
//! the per-family sub-chain quotients (canonical orbit exploration plus the
//! final exact pass) must agree with the flat chain on every measure within
//! 1e-9, while never exploring more states than the flat composition.

use arcade_core::{
    Analysis, ArcadeModel, BasicComponent, CompiledModel, ComposerOptions, Disaster, LumpingMode,
    QueueEncoding, RepairStrategy, RepairUnit, SpareManagementUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ModelSpec {
    component_count: usize,
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    /// Leading components sharing one MTTF/MTTR: these become a genuine
    /// interchangeable family, so the compositional path has real work to do.
    identical_prefix: usize,
    strategy: RepairStrategy,
    crews: usize,
    queue_encoding: QueueEncoding,
    redundant: bool,
    with_spare: bool,
}

fn arbitrary_spec() -> impl Strategy<Value = ModelSpec> {
    (
        2usize..=4,
        proptest::collection::vec(10.0f64..2000.0, 5),
        proptest::collection::vec(0.5f64..50.0, 5),
        0usize..=4,
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
            Just(RepairStrategy::FastestFailureFirst),
        ],
        1usize..=2,
        prop_oneof![
            Just(QueueEncoding::PriorityCanonical),
            Just(QueueEncoding::ArrivalOrder),
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(
                component_count,
                mttfs,
                mttrs,
                identical_prefix,
                strategy,
                crews,
                queue_encoding,
                redundant,
                with_spare,
            )| ModelSpec {
                component_count,
                mttfs,
                mttrs,
                identical_prefix,
                strategy,
                crews,
                queue_encoding,
                redundant,
                with_spare,
            },
        )
}

fn build_model(spec: &ModelSpec) -> ArcadeModel {
    let names: Vec<String> = (0..spec.component_count).map(|i| format!("c{i}")).collect();
    let children: Vec<StructureNode> = names
        .iter()
        .map(|n| StructureNode::component(n.clone()))
        .collect();
    let structure = SystemStructure::new(if spec.redundant {
        StructureNode::redundant(children)
    } else {
        StructureNode::series(children)
    });
    let mut builder = ArcadeModel::builder("compositional-random", structure);
    for (i, name) in names.iter().enumerate() {
        let source = if i < spec.identical_prefix { 0 } else { i };
        builder = builder.component(
            BasicComponent::from_mttf_mttr(name, spec.mttfs[source], spec.mttrs[source])
                .unwrap()
                .with_failed_cost(3.0),
        );
    }
    builder = builder.repair_unit(
        RepairUnit::new("ru", spec.strategy.clone(), spec.crews)
            .unwrap()
            .responsible_for(names.clone())
            .with_idle_cost(1.0),
    );
    if spec.with_spare && spec.component_count >= 2 {
        let spare = names.last().unwrap().clone();
        let primaries: Vec<String> = names[..spec.component_count - 1].to_vec();
        builder = builder.spare_unit(SpareManagementUnit::new("smu", primaries, [spare]).unwrap());
    }
    builder = builder.disaster(Disaster::new("all", names).unwrap());
    builder.build().unwrap()
}

fn options(spec: &ModelSpec, lumping: LumpingMode) -> ComposerOptions {
    ComposerOptions {
        lumping,
        queue_encoding: spec.queue_encoding,
        ..Default::default()
    }
}

fn flat_and_compositional<'a>(
    model: &'a ArcadeModel,
    spec: &ModelSpec,
) -> (Analysis<'a>, Analysis<'a>) {
    let flat = CompiledModel::compile_with(model, options(spec, LumpingMode::Disabled)).unwrap();
    let compositional =
        CompiledModel::compile_with(model, options(spec, LumpingMode::Compositional)).unwrap();
    (
        Analysis::from_compiled(model, flat),
        Analysis::from_compiled(model, compositional),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Table 2 availability measures (and the other cross-level measures)
    /// agree between lump-then-compose and compose-then-lump to <= 1e-9.
    #[test]
    fn compositional_measures_match_the_flat_chain(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let (flat, compositional) = flat_and_compositional(&model, &spec);

        // Never more states than the flat exploration, and the final quotient
        // of the canonical chain is stable against it.
        let flat_states = flat.compiled().stats().num_states;
        let compiled = compositional.compiled();
        let stats = compiled.stats();
        prop_assert!(stats.num_states <= flat_states,
            "explored {} canonical states, flat has {flat_states}", stats.num_states);
        let lumped = compiled.lumped().unwrap();
        lumped.lumping().verify(compiled.chain(), 1e-9).unwrap();

        // The per-family breakdown partitions the components.
        let covered: usize = stats.subchains.iter().map(|s| s.members.len()).sum();
        prop_assert_eq!(covered, model.components().len());

        // Steady-state availability (Table 2).
        let a_flat = flat.steady_state_availability().unwrap();
        let a_comp = compositional.steady_state_availability().unwrap();
        prop_assert!((a_flat - a_comp).abs() <= 1e-9, "availability {a_flat} vs {a_comp}");

        // Long-run cost rate.
        let c_flat = flat.long_run_cost_rate().unwrap();
        let c_comp = compositional.long_run_cost_rate().unwrap();
        prop_assert!((c_flat - c_comp).abs() <= 1e-9, "cost rate {c_flat} vs {c_comp}");

        // Transient measures at a few horizons.
        for t in [0.5, 5.0, 50.0] {
            let r_flat = flat.reliability(t).unwrap();
            let r_comp = compositional.reliability(t).unwrap();
            prop_assert!((r_flat - r_comp).abs() <= 1e-9,
                "reliability({t}) {r_flat} vs {r_comp}");

            let p_flat = flat.point_availability(t).unwrap();
            let p_comp = compositional.point_availability(t).unwrap();
            prop_assert!((p_flat - p_comp).abs() <= 1e-9,
                "point availability({t}) {p_flat} vs {p_comp}");
        }

        // Accumulated cost from the regular initial state.
        let acc_flat = flat.accumulated_cost_curve(None, &[1.0, 10.0]).unwrap();
        let acc_comp = compositional.accumulated_cost_curve(None, &[1.0, 10.0]).unwrap();
        for ((t, a), (_, b)) in acc_flat.iter().zip(acc_comp.iter()) {
            prop_assert!((a - b).abs() <= 1e-9, "accumulated cost({t}) {a} vs {b}");
        }
    }

    /// Disaster-started measures take the canonical-orbit route through
    /// `disaster_state_index`; they must agree with the flat pipeline too.
    #[test]
    fn compositional_survivability_and_disaster_costs_match(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let (flat, compositional) = flat_and_compositional(&model, &spec);
        let disaster = model.disaster("all").unwrap();

        for level in [0.5, 1.0] {
            for t in [0.5, 2.0, 20.0] {
                let s_flat = flat.survivability(disaster, level, t).unwrap();
                let s_comp = compositional.survivability(disaster, level, t).unwrap();
                prop_assert!((s_flat - s_comp).abs() <= 1e-9,
                    "survivability({level}, {t}) {s_flat} vs {s_comp}");
            }
        }

        let inst_flat = flat.instantaneous_cost_curve(Some(disaster), &[0.0, 2.0]).unwrap();
        let inst_comp = compositional
            .instantaneous_cost_curve(Some(disaster), &[0.0, 2.0])
            .unwrap();
        for ((t, a), (_, b)) in inst_flat.iter().zip(inst_comp.iter()) {
            prop_assert!((a - b).abs() <= 1e-9, "instantaneous cost({t}) {a} vs {b}");
        }
    }

    /// Compose-then-lump (Exact) and lump-then-compose (Compositional) land
    /// on the same coarsest quotient: the final block counts coincide.
    #[test]
    fn final_quotients_coincide_with_the_flat_pipeline(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        let exact =
            CompiledModel::compile_with(&model, options(&spec, LumpingMode::Exact)).unwrap();
        let compositional =
            CompiledModel::compile_with(&model, options(&spec, LumpingMode::Compositional))
                .unwrap();
        let exact_blocks = exact.lumped().unwrap().num_blocks();
        let comp_blocks = compositional.lumped().unwrap().num_blocks();
        prop_assert_eq!(exact_blocks, comp_blocks,
            "coarsest quotient must not depend on the composition order");
        // The canonical chain sits between the quotient and the flat chain.
        prop_assert!(compositional.stats().num_states >= comp_blocks);
        prop_assert!(compositional.stats().num_states <= exact.stats().num_states);
    }
}
