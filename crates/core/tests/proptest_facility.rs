//! Property tests of the facility product layer.
//!
//! * For *coupling-free* facilities (every line with its own repair unit)
//!   the product-chain availability must equal the paper's scalar formula
//!   `A = A1 + A2 − A1·A2`, and the genuine joint chain must agree.
//! * A *shared* repair unit must trigger the joint-exploration fallback, and
//!   the resulting measures must match a hand-merged joint model.

use arcade_core::{
    ArcadeModel, BasicComponent, FacilityAnalysis, FacilityModel, RepairStrategy, RepairUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct LineSpec {
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    strategy: RepairStrategy,
    crews: usize,
}

fn arbitrary_line() -> impl Strategy<Value = LineSpec> {
    (
        proptest::collection::vec((10.0f64..500.0, 0.5f64..20.0), 1..=3),
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
        ],
        1usize..=2,
    )
        .prop_map(|(rates, strategy, crews)| LineSpec {
            mttfs: rates.iter().map(|r| r.0).collect(),
            mttrs: rates.iter().map(|r| r.1).collect(),
            strategy,
            crews,
        })
}

/// Builds a redundant-group line whose components all hang off one repair
/// unit with the given name.
fn line_model(spec: &LineSpec, unit_name: &str) -> ArcadeModel {
    let names: Vec<String> = (0..spec.mttfs.len()).map(|i| format!("c{i}")).collect();
    let structure = SystemStructure::new(StructureNode::redundant(
        names
            .iter()
            .map(|n| StructureNode::component(n.clone()))
            .collect(),
    ));
    let mut builder = ArcadeModel::builder("line", structure);
    for (name, (&mttf, &mttr)) in names.iter().zip(spec.mttfs.iter().zip(spec.mttrs.iter())) {
        builder = builder.component(
            BasicComponent::from_mttf_mttr(name, mttf, mttr)
                .unwrap()
                .with_failed_cost(3.0),
        );
    }
    builder
        .repair_unit(
            RepairUnit::new(unit_name, spec.strategy.clone(), spec.crews)
                .unwrap()
                .responsible_for(names)
                .with_idle_cost(1.0),
        )
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coupling_free_product_availability_matches_the_scalar_formula(
        line1 in arbitrary_line(),
        line2 in arbitrary_line(),
    ) {
        let facility = FacilityModel::builder("random-facility")
            .line("l1", line_model(&line1, "ru1"))
            .line("l2", line_model(&line2, "ru2"))
            .build()
            .unwrap();
        prop_assert_eq!(facility.composition_tree().groups.len(), 2);

        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let a1 = analysis.line_availability(0).unwrap();
        let a2 = analysis.line_availability(1).unwrap();
        let formula = a1 + a2 - a1 * a2;
        let product_form = analysis.steady_state_availability().unwrap();
        prop_assert!(
            (product_form - formula).abs() <= 1e-9,
            "product form {product_form} vs formula {formula}"
        );
        let joint = analysis.joint_steady_state_availability().unwrap();
        prop_assert!(
            (joint.availability - formula).abs() <= 1e-9,
            "joint {} vs formula {formula}",
            joint.availability
        );
        prop_assert!(joint.residual < 1e-9, "residual {}", joint.residual);
    }

    #[test]
    fn shared_repair_unit_falls_back_to_joint_exploration(
        line1 in arbitrary_line(),
        line2 in arbitrary_line(),
    ) {
        // Same unit name in both lines: one physical crew pool. The two
        // occurrences must agree on configuration, so line 2 reuses line 1's
        // strategy and crew count.
        let mut aligned = line2.clone();
        aligned.strategy = line1.strategy.clone();
        aligned.crews = line1.crews;
        let facility = FacilityModel::builder("coupled-facility")
            .line("l1", line_model(&line1, "shared"))
            .line("l2", line_model(&aligned, "shared"))
            .build()
            .unwrap();
        let tree = facility.composition_tree();
        prop_assert_eq!(tree.groups.len(), 1, "shared unit must merge the lines");
        prop_assert!(tree.groups[0].is_joint());
        prop_assert_eq!(&tree.groups[0].shared_units, &vec!["shared".to_string()]);

        // The joint exploration must agree with a hand-merged single model:
        // all components under one unit, lines as two redundant groups.
        let analysis = FacilityAnalysis::new(&facility).unwrap();
        let coupled = analysis.steady_state_availability().unwrap();

        let mut names = Vec::new();
        let mut builder_components = Vec::new();
        for (prefix, spec) in [("l1", &line1), ("l2", &aligned)] {
            for (i, (&mttf, &mttr)) in spec.mttfs.iter().zip(spec.mttrs.iter()).enumerate() {
                let name = format!("{prefix}/c{i}");
                builder_components.push(
                    BasicComponent::from_mttf_mttr(&name, mttf, mttr)
                        .unwrap()
                        .with_failed_cost(3.0),
                );
                names.push(name);
            }
        }
        let group = |prefix: &str, spec: &LineSpec| {
            StructureNode::redundant(
                (0..spec.mttfs.len())
                    .map(|i| StructureNode::component(format!("{prefix}/c{i}")))
                    .collect(),
            )
        };
        let structure = SystemStructure::new(StructureNode::redundant(vec![
            group("l1", &line1),
            group("l2", &aligned),
        ]));
        let mut builder = ArcadeModel::builder("merged-by-hand", structure);
        for component in builder_components {
            builder = builder.component(component);
        }
        let merged = builder
            .repair_unit(
                RepairUnit::new("shared", line1.strategy.clone(), line1.crews)
                    .unwrap()
                    .responsible_for(names)
                    .with_idle_cost(1.0),
            )
            .build()
            .unwrap();

        // With a single group the facility's "genuine joint chain" IS the
        // group chain, so both paths must coincide bit-for-tolerance.
        let joint = analysis.joint_steady_state_availability().unwrap();
        prop_assert!((joint.availability - coupled).abs() <= 1e-9);

        // The joint group explores the merged namespace, not the per-line
        // product: its state count matches the hand-merged model's count.
        let merged_states = arcade_core::CompiledModel::compile(&merged)
            .unwrap()
            .stats()
            .num_states;
        prop_assert_eq!(analysis.stats().lines[0].stats.num_states, merged_states);
    }
}
