//! Property-based determinism tests of the sharded frontier: composing a
//! model with any worker count must produce *bit-identical* results to the
//! serial exploration — the same states in the same order, the same
//! transitions and rates, the same metadata — for the flat and the
//! compositional pipeline alike.

use arcade_core::{
    ArcadeModel, BasicComponent, CompiledModel, ComposerOptions, Disaster, ExecOptions,
    LumpingMode, RepairStrategy, RepairUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

#[derive(Debug, Clone)]
struct ModelSpec {
    component_count: usize,
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    /// Leading components sharing one MTTF/MTTR, forming an interchangeable
    /// family so the canonical-orbit frontier has real work to do.
    identical_prefix: usize,
    strategy: RepairStrategy,
    crews: usize,
}

fn arbitrary_spec() -> impl Strategy<Value = ModelSpec> {
    (
        5usize..=7,
        proptest::collection::vec(10.0f64..2000.0, 7),
        proptest::collection::vec(0.5f64..50.0, 7),
        0usize..=5,
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
        ],
        1usize..=2,
    )
        .prop_map(
            |(component_count, mttfs, mttrs, identical_prefix, strategy, crews)| ModelSpec {
                component_count,
                mttfs,
                mttrs,
                identical_prefix,
                strategy,
                crews,
            },
        )
}

fn build_model(spec: &ModelSpec) -> ArcadeModel {
    let names: Vec<String> = (0..spec.component_count).map(|i| format!("c{i}")).collect();
    let children: Vec<StructureNode> = names
        .iter()
        .map(|n| StructureNode::component(n.clone()))
        .collect();
    let structure = SystemStructure::new(StructureNode::redundant(children));
    let mut builder = ArcadeModel::builder("parallel-random", structure);
    for (i, name) in names.iter().enumerate() {
        let source = if i < spec.identical_prefix { 0 } else { i };
        builder = builder.component(
            BasicComponent::from_mttf_mttr(name, spec.mttfs[source], spec.mttrs[source])
                .unwrap()
                .with_failed_cost(3.0),
        );
    }
    builder = builder.repair_unit(
        RepairUnit::new("ru", spec.strategy.clone(), spec.crews)
            .unwrap()
            .responsible_for(names.clone())
            .with_idle_cost(1.0),
    );
    builder = builder.disaster(Disaster::new("all", names).unwrap());
    builder.build().unwrap()
}

fn compile(model: &ArcadeModel, lumping: LumpingMode, threads: usize) -> CompiledModel {
    CompiledModel::compile_with(
        model,
        ComposerOptions {
            lumping,
            exec: ExecOptions::with_threads(threads),
            ..Default::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_frontier_is_bit_identical_to_serial(spec in arbitrary_spec()) {
        let model = build_model(&spec);
        for lumping in [LumpingMode::Disabled, LumpingMode::Compositional] {
            let reference = compile(&model, lumping, 1);
            for threads in THREAD_COUNTS {
                let parallel = compile(&model, lumping, threads);
                // Same states in the same order (numbering is part of the
                // determinism contract), the same chain — rates, labels and
                // initial distribution — and the same per-state metadata.
                prop_assert_eq!(
                    parallel.states(), reference.states(),
                    "states, {:?}, {} threads", lumping, threads
                );
                prop_assert_eq!(
                    parallel.chain(), reference.chain(),
                    "chain, {:?}, {} threads", lumping, threads
                );
                prop_assert_eq!(
                    parallel.service_levels(), reference.service_levels(),
                    "service levels, {:?}, {} threads", lumping, threads
                );
                prop_assert_eq!(
                    parallel.operational_mask(), reference.operational_mask(),
                    "operational mask, {:?}, {} threads", lumping, threads
                );
                prop_assert_eq!(
                    parallel.cost_rewards(), reference.cost_rewards(),
                    "cost rewards, {:?}, {} threads", lumping, threads
                );
                // Disaster lookup resolves to the same index through the
                // merged seen-set.
                let disaster = model.disaster("all").unwrap();
                prop_assert_eq!(
                    parallel.disaster_state_index(disaster).unwrap(),
                    reference.disaster_state_index(disaster).unwrap()
                );
            }
        }
    }
}
