//! Tuple-level orbit machinery for products of interchangeable factors.
//!
//! A product chain over factors `(F_0, …, F_{N-1})` whose states are tuples
//! of local states admits the permutation group that exchanges *identical*
//! factors wholesale: permuting the coordinates of an interchangeability
//! class is an automorphism of the Kronecker-sum generator (the summands are
//! equal) and of every class-symmetric label and reward. The orbit of a tuple
//! is therefore characterised by the **multiset** of local states it holds in
//! each class, and the canonical representative is the tuple whose class
//! coordinates are sorted ascending.

use std::fmt;

/// Invalid class assignment: two factors of one class differ in size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidClasses {
    /// Human-readable details.
    pub reason: String,
}

impl fmt::Display for InvalidClasses {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid factor classes: {}", self.reason)
    }
}

impl std::error::Error for InvalidClasses {}

/// Number of multisets of size `positions` over `values` symbols:
/// `C(positions + values - 1, positions)` — the number of non-decreasing
/// `positions`-tuples over `0..values`, i.e. the orbit count of one class.
pub fn orbit_count(positions: usize, values: usize) -> usize {
    if values == 0 {
        return usize::from(positions == 0);
    }
    let mut result: usize = 1;
    for i in 0..positions {
        result = result.saturating_mul(values + i) / (i + 1);
    }
    result
}

/// Enumerates every non-decreasing `positions`-tuple over `0..values` — the
/// canonical orbit representatives of one interchangeability class — in
/// lexicographic order, calling `f` with the tuple and its orbit size (the
/// number of distinct permutations, `positions! / Π multᵢ!`). The
/// enumeration is lazy and strictly sequential, so callers can fold
/// [`orbit_count`]`(positions, values)` representatives without ever holding
/// more than one tuple — the workhorse of the k-line orbit-enumeration tier,
/// where the flat product is never materialised. Returns the number of
/// tuples visited.
pub fn for_each_multiset(
    positions: usize,
    values: usize,
    mut f: impl FnMut(&[usize], usize),
) -> usize {
    if values == 0 {
        if positions == 0 {
            f(&[], 1);
            return 1;
        }
        return 0;
    }
    let mut tuple = vec![0usize; positions];
    let mut visited = 0usize;
    loop {
        f(&tuple, multiset_permutations(&tuple));
        visited += 1;
        // Advance to the next non-decreasing tuple: bump the rightmost
        // coordinate with headroom and level everything after it.
        let Some(pivot) = (0..positions).rev().find(|&i| tuple[i] + 1 < values) else {
            return visited;
        };
        let bumped = tuple[pivot] + 1;
        for slot in &mut tuple[pivot..] {
            *slot = bumped;
        }
    }
}

/// Number of distinct permutations of a sorted tuple: `n! / Π multᵢ!`,
/// saturating. This is the orbit size of one class's canonical multiset.
fn multiset_permutations(sorted: &[usize]) -> usize {
    let mut permutations = 1usize;
    for k in 2..=sorted.len() {
        permutations = permutations.saturating_mul(k);
    }
    let mut run = 1usize;
    for window in sorted.windows(2) {
        if window[0] == window[1] {
            run += 1;
            permutations /= run;
        } else {
            run = 1;
        }
    }
    permutations
}

/// Sorts the coordinates of every interchangeability class ascending in
/// place, yielding the orbit's canonical representative. `classes[i]` is the
/// class id of factor `i`; coordinates of different classes never move.
pub fn canonical_tuple(classes: &[usize], tuple: &mut [usize]) {
    debug_assert_eq!(classes.len(), tuple.len());
    let num_classes = classes.iter().copied().max().map_or(0, |m| m + 1);
    for class in 0..num_classes {
        let positions: Vec<usize> = (0..classes.len())
            .filter(|&i| classes[i] == class)
            .collect();
        if positions.len() < 2 {
            continue;
        }
        let mut values: Vec<usize> = positions.iter().map(|&i| tuple[i]).collect();
        values.sort_unstable();
        for (&position, value) in positions.iter().zip(values) {
            tuple[position] = value;
        }
    }
}

/// The interchangeability classes of a product's factors, with per-factor
/// sizes: the handle for canonicalising tuples and counting orbits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorClasses {
    classes: Vec<usize>,
    sizes: Vec<usize>,
}

impl FactorClasses {
    /// Builds the class assignment. Class ids must be dense (`0..k` in first
    /// appearance order is conventional); factors sharing a class must have
    /// equal sizes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidClasses`] on a length mismatch or a size conflict
    /// within a class.
    pub fn new(classes: Vec<usize>, sizes: Vec<usize>) -> Result<Self, InvalidClasses> {
        if classes.len() != sizes.len() {
            return Err(InvalidClasses {
                reason: format!("{} class ids for {} factors", classes.len(), sizes.len()),
            });
        }
        for (i, &class) in classes.iter().enumerate() {
            for (j, &other) in classes.iter().enumerate().take(i) {
                if class == other && sizes[i] != sizes[j] {
                    return Err(InvalidClasses {
                        reason: format!(
                            "factors {j} and {i} share class {class} but have sizes {} and {}",
                            sizes[j], sizes[i]
                        ),
                    });
                }
            }
        }
        Ok(FactorClasses { classes, sizes })
    }

    /// Class id of every factor.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Size of every factor.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Whether any class holds more than one factor.
    pub fn has_symmetry(&self) -> bool {
        let mut seen = vec![false; self.classes.len()];
        for &class in &self.classes {
            if seen[class] {
                return true;
            }
            seen[class] = true;
        }
        false
    }

    /// Canonicalises a tuple in place (see [`canonical_tuple`]).
    pub fn canonicalize(&self, tuple: &mut [usize]) {
        canonical_tuple(&self.classes, tuple);
    }

    /// Whether a tuple already is its orbit's canonical representative.
    pub fn is_canonical(&self, tuple: &[usize]) -> bool {
        let mut copy = tuple.to_vec();
        self.canonicalize(&mut copy);
        copy == tuple
    }

    /// Total number of orbits: the product over classes of the multiset
    /// count, saturating.
    pub fn num_orbits(&self) -> usize {
        let num_classes = self.classes.iter().copied().max().map_or(0, |m| m + 1);
        let mut total = 1usize;
        for class in 0..num_classes {
            let positions = self.classes.iter().filter(|&&c| c == class).count();
            let size = self
                .classes
                .iter()
                .position(|&c| c == class)
                .map(|i| self.sizes[i])
                .unwrap_or(0);
            if positions > 0 {
                total = total.saturating_mul(orbit_count(positions, size));
            }
        }
        total
    }

    /// Number of tuples in the orbit of a (canonical) tuple: the product over
    /// classes of the permutation count `k! / Π mᵢ!` of its class multiset.
    pub fn orbit_size(&self, tuple: &[usize]) -> usize {
        debug_assert_eq!(tuple.len(), self.classes.len());
        let num_classes = self.classes.iter().copied().max().map_or(0, |m| m + 1);
        let mut total = 1usize;
        for class in 0..num_classes {
            let mut sorted: Vec<usize> = (0..self.classes.len())
                .filter(|&i| self.classes[i] == class)
                .map(|i| tuple[i])
                .collect();
            sorted.sort_unstable();
            total = total.saturating_mul(multiset_permutations(&sorted));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orbit_counts_match_the_multiset_closed_form() {
        assert_eq!(orbit_count(0, 5), 1);
        assert_eq!(orbit_count(1, 5), 5);
        assert_eq!(orbit_count(2, 2), 3);
        assert_eq!(orbit_count(2, 96), 96 * 97 / 2);
        assert_eq!(orbit_count(3, 3), 10);
        assert_eq!(orbit_count(2, 0), 0);
        assert_eq!(orbit_count(0, 0), 1);
    }

    #[test]
    fn multiset_enumeration_matches_the_closed_form() {
        // Every (positions, values) pair visits exactly orbit_count tuples,
        // in lexicographic order, non-decreasing, with orbit sizes that sum
        // to the raw tuple count values^positions.
        for (positions, values) in [(0, 3), (1, 4), (2, 3), (3, 3), (4, 5), (2, 0), (0, 0)] {
            let mut seen: Vec<Vec<usize>> = Vec::new();
            let mut total_size = 0usize;
            let visited = for_each_multiset(positions, values, |tuple, size| {
                assert!(tuple.windows(2).all(|w| w[0] <= w[1]), "{tuple:?}");
                seen.push(tuple.to_vec());
                total_size += size;
            });
            assert_eq!(visited, orbit_count(positions, values));
            assert_eq!(seen.len(), visited);
            let mut sorted = seen.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted, seen, "lexicographic and duplicate-free");
            if values > 0 {
                assert_eq!(total_size, values.pow(positions as u32));
            }
        }
        // The paper's pinned bound: 4 twin lines of 96 blocks.
        assert_eq!(orbit_count(4, 96), 3_764_376);
    }

    #[test]
    fn canonical_tuples_sort_within_classes_only() {
        let classes = vec![0, 1, 0, 1, 2];
        let mut tuple = vec![5, 9, 2, 3, 7];
        canonical_tuple(&classes, &mut tuple);
        assert_eq!(tuple, vec![2, 3, 5, 9, 7]);
    }

    #[test]
    fn factor_classes_validate_and_count() {
        assert!(FactorClasses::new(vec![0, 0], vec![3, 4]).is_err());
        assert!(FactorClasses::new(vec![0], vec![3, 4]).is_err());

        let classes = FactorClasses::new(vec![0, 1, 0], vec![3, 5, 3]).unwrap();
        assert!(classes.has_symmetry());
        // Class 0: multisets of 2 over 3 = 6; class 1: 5. Total 30 of the
        // 3*5*3 = 45 raw tuples.
        assert_eq!(classes.num_orbits(), 30);
        assert!(classes.is_canonical(&[1, 0, 2]));
        assert!(!classes.is_canonical(&[2, 0, 1]));

        let trivial = FactorClasses::new(vec![0, 1], vec![3, 3]).unwrap();
        assert!(!trivial.has_symmetry());
        assert_eq!(trivial.num_orbits(), 9);
    }

    #[test]
    fn orbit_sizes_sum_to_the_raw_state_count() {
        let classes = FactorClasses::new(vec![0, 0, 1], vec![3, 3, 2]).unwrap();
        let mut total = 0usize;
        let mut representatives = 0usize;
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..2 {
                    let tuple = [a, b, c];
                    if classes.is_canonical(&tuple) {
                        representatives += 1;
                        total += classes.orbit_size(&tuple);
                    }
                }
            }
        }
        assert_eq!(representatives, classes.num_orbits());
        assert_eq!(total, 3 * 3 * 2);
    }
}
