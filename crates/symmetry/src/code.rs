//! AHU-style canonical codes for attributed structure trees.
//!
//! The classic Aho–Hopcroft–Ullman tree-isomorphism argument assigns every
//! subtree a canonical code built bottom-up: a leaf's code is its attribute
//! fingerprint, a gate's code combines the gate kind with the *sorted* codes
//! of its children. Two subtrees receive equal codes **iff** they are
//! isomorphic as attributed trees. Sorting the children is sound here because
//! every Arcade gate (series → min, redundant → mean, required-of → ratio,
//! and the derived or/and/vote fault-tree gates) is a symmetric function of
//! its children.
//!
//! Codes are exact, not hashes: the canonical byte string is kept in full, so
//! equality of codes is equality of canonical forms — no collision argument
//! is needed anywhere downstream. Arcade structures are small (tens of
//! nodes), so the quadratic worst case of string concatenation is irrelevant.

use std::fmt;

use fault_tree::StructureNode;

/// The canonical code of an attributed subtree. Equal codes ⇔ isomorphic
/// attributed subtrees.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode(String);

impl CanonicalCode {
    /// The canonical form as a string (stable across runs; useful in tests
    /// and reports).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CanonicalCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a subtree permutation must preserve about one leaf, as exact
/// bit patterns. The caller (the family detector, which knows the model)
/// fills these in; the code layer never interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LeafAttributes {
    /// Failure rate, `f64::to_bits`.
    pub failure_bits: u64,
    /// Repair rate, `f64::to_bits`.
    pub repair_bits: u64,
    /// Dormancy factor, `f64::to_bits`.
    pub dormancy_bits: u64,
    /// Operational cost rate, `f64::to_bits`.
    pub operational_cost_bits: u64,
    /// Failed cost rate, `f64::to_bits`.
    pub failed_cost_bits: u64,
    /// Whether the component starts failed.
    pub initially_failed: bool,
    /// Index of the responsible repair unit (`None` when unrepaired).
    /// Swapping subtrees relabels queue entries, which is only an
    /// automorphism when corresponding leaves share their unit.
    pub repair_unit: Option<usize>,
    /// Dispatch priority under the responsible unit, `f64::to_bits`.
    pub priority_bits: u64,
    /// A unique salt makes this leaf — and every subtree containing it —
    /// unmergeable (used for spare-managed and multiply-referenced leaves,
    /// whose semantics are index-sensitive).
    pub salt: Option<u64>,
    /// Exact id of the symmetry-guard membership set containing this leaf
    /// (the caller interns membership sets into dense ids — never a hash,
    /// so distinct sets cannot collide). Guarded leaf sets must be
    /// preserved by every admissible permutation, so leaves with different
    /// guard ids never correspond.
    pub guard_bits: u64,
}

impl LeafAttributes {
    fn render(&self) -> String {
        let unit = match self.repair_unit {
            Some(u) => format!("u{u}"),
            None => "u-".to_string(),
        };
        let salt = match self.salt {
            Some(s) => format!("!{s:x}"),
            None => String::new(),
        };
        format!(
            "{:x}.{:x}.{:x}.{:x}.{:x}.{}.{unit}.{:x}.{:x}{salt}",
            self.failure_bits,
            self.repair_bits,
            self.dormancy_bits,
            self.operational_cost_bits,
            self.failed_cost_bits,
            u8::from(self.initially_failed),
            self.priority_bits,
            self.guard_bits,
        )
    }
}

/// A subtree together with its canonical code and its leaves in **canonical
/// traversal order**: children are visited in sorted-code order, so position
/// `k` of one subtree's leaf list corresponds to position `k` of any
/// isomorphic subtree's list under the isomorphism. This alignment is what
/// lets a subtree swap move leaf roles pairwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedSubtree {
    /// The canonical code.
    pub code: CanonicalCode,
    /// Leaf component names in canonical traversal order.
    pub leaves: Vec<String>,
}

/// Codes one subtree (see [`CodedSubtree`]). `attributes` supplies the exact
/// fingerprint of each leaf by component name.
pub fn subtree_code(
    node: &StructureNode,
    attributes: &impl Fn(&str) -> LeafAttributes,
) -> CodedSubtree {
    match node {
        StructureNode::Component(name) => CodedSubtree {
            code: CanonicalCode(format!("c({})", attributes(name).render())),
            leaves: vec![name.clone()],
        },
        StructureNode::Series(children) => gate_code("S", None, children, attributes),
        StructureNode::Redundant(children) => gate_code("R", None, children, attributes),
        StructureNode::RequiredOf { required, children } => {
            gate_code("K", Some(*required), children, attributes)
        }
    }
}

fn gate_code(
    tag: &str,
    parameter: Option<usize>,
    children: &[StructureNode],
    attributes: &impl Fn(&str) -> LeafAttributes,
) -> CodedSubtree {
    let mut coded: Vec<CodedSubtree> = children
        .iter()
        .map(|child| subtree_code(child, attributes))
        .collect();
    // Stable sort by code: equal-code siblings keep their definition order,
    // so the canonical traversal (and with it the leaf alignment) is
    // deterministic.
    coded.sort_by(|a, b| a.code.cmp(&b.code));
    let mut body = String::new();
    let mut leaves = Vec::new();
    for (i, child) in coded.into_iter().enumerate() {
        if i > 0 {
            body.push('|');
        }
        body.push_str(child.code.as_str());
        leaves.extend(child.leaves);
    }
    let code = match parameter {
        Some(p) => CanonicalCode(format!("{tag}{p}({body})")),
        None => CanonicalCode(format!("{tag}({body})")),
    };
    CodedSubtree { code, leaves }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(_: &str) -> LeafAttributes {
        LeafAttributes::default()
    }

    fn leaf(name: &str) -> StructureNode {
        StructureNode::component(name)
    }

    #[test]
    fn isomorphic_subtrees_share_codes_regardless_of_child_order() {
        let left = StructureNode::redundant(vec![
            leaf("a"),
            StructureNode::series(vec![leaf("b"), leaf("c")]),
        ]);
        let right = StructureNode::redundant(vec![
            StructureNode::series(vec![leaf("x"), leaf("y")]),
            leaf("z"),
        ]);
        let l = subtree_code(&left, &plain);
        let r = subtree_code(&right, &plain);
        assert_eq!(l.code, r.code);
        // Canonical leaf order aligns: the lone leaf sorts relative to the
        // series gate the same way in both trees.
        assert_eq!(l.leaves.len(), 3);
        assert_eq!(r.leaves.len(), 3);
        let lone_left = l.leaves.iter().position(|n| n == "a").unwrap();
        let lone_right = r.leaves.iter().position(|n| n == "z").unwrap();
        assert_eq!(lone_left, lone_right);
    }

    #[test]
    fn gate_kind_and_parameter_distinguish_codes() {
        let children = vec![leaf("a"), leaf("b")];
        let series = subtree_code(&StructureNode::series(children.clone()), &plain);
        let redundant = subtree_code(&StructureNode::redundant(children.clone()), &plain);
        let one_of = subtree_code(&StructureNode::required_of(1, children.clone()), &plain);
        let two_of = subtree_code(&StructureNode::required_of(2, children), &plain);
        assert_ne!(series.code, redundant.code);
        assert_ne!(one_of.code, two_of.code);
        assert_ne!(series.code, one_of.code);
    }

    #[test]
    fn leaf_attributes_split_codes() {
        let attrs = |name: &str| LeafAttributes {
            failure_bits: if name == "fast" { 1 } else { 2 },
            ..LeafAttributes::default()
        };
        let fast = subtree_code(&leaf("fast"), &attrs);
        let slow = subtree_code(&leaf("slow"), &attrs);
        assert_ne!(fast.code, slow.code);

        let salted = |_: &str| LeafAttributes {
            salt: Some(7),
            ..LeafAttributes::default()
        };
        assert_ne!(
            subtree_code(&leaf("a"), &plain).code,
            subtree_code(&leaf("a"), &salted).code
        );
    }

    #[test]
    fn codes_are_stable_and_displayable() {
        let tree = StructureNode::series(vec![leaf("a"), leaf("b")]);
        let coded = subtree_code(&tree, &plain);
        assert_eq!(coded.code.as_str(), format!("{}", coded.code));
        assert!(coded.code.as_str().starts_with("S("));
    }
}
