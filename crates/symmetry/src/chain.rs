//! Presentation codes for labelled CTMCs: recognising interchangeable
//! product factors.
//!
//! Two factors of a product are interchangeable when swapping their
//! coordinates is an automorphism of the joint chain. Deciding chain
//! *isomorphism* (equality up to a state renumbering) is graph-isomorphism
//! hard in general, but the deterministic composer maps isomorphic models to
//! **identical presentations** — same state numbering, same CSR transition
//! order, same labels — so structural equality of the presentations is the
//! sound and complete-in-practice test. The code here is a deterministic
//! fingerprint used for grouping; every match is confirmed by exact
//! comparison, so hash collisions cannot cause an unsound merge.

use std::hash::{Hash, Hasher};

use ctmc::Ctmc;

/// A deterministic fingerprint of a chain's exact presentation: state count,
/// CSR transition structure with rate bit patterns, initial-distribution bit
/// patterns, and the sorted labels with their masks. Equal chains get equal
/// codes; unequal chains collide only with hash probability (and are told
/// apart by [`group_identical_chains`]'s confirming comparison).
pub fn chain_presentation_code(chain: &Ctmc) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    chain.num_states().hash(&mut hasher);
    for state in 0..chain.num_states() {
        let (cols, values) = chain.rate_matrix().row(state);
        cols.hash(&mut hasher);
        for value in values {
            value.to_bits().hash(&mut hasher);
        }
    }
    for probability in chain.initial_distribution() {
        probability.to_bits().hash(&mut hasher);
    }
    let mut labels: Vec<&str> = chain.label_names().collect();
    labels.sort_unstable();
    for name in labels {
        name.hash(&mut hasher);
        chain
            .label(name)
            .expect("name came from the chain")
            .hash(&mut hasher);
    }
    hasher.finish()
}

/// Exact interchangeability of two presentations (see module docs). This is
/// the confirming comparison behind [`group_identical_chains`], exposed so
/// that caches keyed by [`chain_presentation_code`] can rule out hash
/// collisions before treating two chains as the same artifact.
pub fn chains_identical(a: &Ctmc, b: &Ctmc) -> bool {
    if a.num_states() != b.num_states() {
        return false;
    }
    if a.rate_matrix() != b.rate_matrix() {
        return false;
    }
    if a.initial_distribution()
        .iter()
        .zip(b.initial_distribution())
        .any(|(x, y)| x.to_bits() != y.to_bits())
    {
        return false;
    }
    let mut a_labels: Vec<&str> = a.label_names().collect();
    let mut b_labels: Vec<&str> = b.label_names().collect();
    a_labels.sort_unstable();
    b_labels.sort_unstable();
    if a_labels != b_labels {
        return false;
    }
    a_labels.iter().all(|name| a.label(name) == b.label(name))
}

/// Partitions chains into interchangeability classes, returning one class id
/// per chain in first-appearance order (`0..k`). Candidate matches are found
/// through [`chain_presentation_code`] and confirmed by exact comparison.
pub fn group_identical_chains(chains: &[&Ctmc]) -> Vec<usize> {
    let codes: Vec<u64> = chains
        .iter()
        .map(|chain| chain_presentation_code(chain))
        .collect();
    let mut classes = Vec::with_capacity(chains.len());
    let mut representatives: Vec<usize> = Vec::new();
    for (index, chain) in chains.iter().enumerate() {
        let class = representatives
            .iter()
            .position(|&r| codes[r] == codes[index] && chains_identical(chains[r], chain));
        match class {
            Some(id) => classes.push(id),
            None => {
                classes.push(representatives.len());
                representatives.push(index);
            }
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use ctmc::CtmcBuilder;

    use super::*;

    fn component(lambda: f64, mu: f64) -> Ctmc {
        let mut builder = CtmcBuilder::new(2);
        builder.add_transition(0, 1, lambda).unwrap();
        builder.add_transition(1, 0, mu).unwrap();
        builder.set_initial_state(0).unwrap();
        builder.add_label_mask("up", vec![true, false]).unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn identical_presentations_share_a_class() {
        let a = component(0.1, 1.0);
        let b = component(0.1, 1.0);
        let c = component(0.2, 1.0);
        assert_eq!(chain_presentation_code(&a), chain_presentation_code(&b));
        assert_ne!(chain_presentation_code(&a), chain_presentation_code(&c));
        assert_eq!(group_identical_chains(&[&a, &c, &b, &c]), vec![0, 1, 0, 1]);
    }

    #[test]
    fn labels_and_initials_distinguish_presentations() {
        let plain = component(0.1, 1.0);
        let mut relabeled = component(0.1, 1.0);
        relabeled.set_label("down", vec![false, true]).unwrap();
        assert_eq!(group_identical_chains(&[&plain, &relabeled]), vec![0, 1]);

        let restarted = plain.with_initial_state(1).unwrap();
        assert_eq!(group_identical_chains(&[&plain, &restarted]), vec![0, 1]);
    }
}
