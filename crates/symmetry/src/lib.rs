//! # arcade-symmetry — isomorphic-subtree symmetry for Arcade structures
//!
//! Compositional lumping (the `arcade-lumping` crate) exploits the
//! interchangeability of *sibling leaves*: identical components under one
//! symmetric gate can be permuted without changing any measure, so only their
//! status multiset matters. This crate generalises that observation from
//! leaves to whole **subtrees** and from one chain to **products of chains**:
//!
//! * [`code`] computes AHU-style canonical codes for attributed structure
//!   trees: two subtrees carry the same code iff they are isomorphic as
//!   attributed trees (same gates, same leaf attributes — rates, costs,
//!   repair-unit identity, dispatch priority, spare involvement). All Arcade
//!   gates are symmetric functions of their children, so child codes are
//!   sorted before hashing.
//! * [`automorphism`] turns equal sibling codes into an explicit generator
//!   set of the structure's automorphism group: each generator is a
//!   *subtree swap* exchanging two isomorphic siblings leaf-by-leaf (in
//!   canonical traversal order, so swapped leaves correspond under the
//!   isomorphism).
//! * [`orbit`] supplies the tuple-level orbit machinery for products of
//!   interchangeable factors: canonical (sorted) tuples, orbit counting via
//!   the multiset closed form, and deterministic representative enumeration.
//! * [`chain`] fingerprints labelled CTMCs so a product layer can recognise
//!   factors that are interchangeable *as chains* (identical presentations —
//!   the sound, deterministic under-approximation of chain isomorphism that
//!   the deterministic composer actually produces for isomorphic models).
//!
//! The quotients induced by these orbits are ordinarily lumpable — the
//! permutations are chain automorphisms — so every measure evaluated on orbit
//! representatives equals its unreduced counterpart exactly (up to solver
//! tolerance). The consumers are `arcade_core::families` (subtree orbit
//! families explored directly by the canonical frontier) and
//! `arcade_lumping::product` (sorted-tuple folding of interchangeable product
//! factors before materialisation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automorphism;
pub mod chain;
pub mod code;
pub mod orbit;

pub use automorphism::{detect_automorphisms, StructureAutomorphisms, SubtreeSwap};
pub use chain::{chain_presentation_code, chains_identical, group_identical_chains};
pub use code::{subtree_code, CanonicalCode, LeafAttributes};
pub use orbit::{canonical_tuple, for_each_multiset, orbit_count, FactorClasses};
