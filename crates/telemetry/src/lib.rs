//! # arcade-telemetry — observability substrate for the Arcade pipeline
//!
//! Three instruments, all hand-rolled on `std` alone (like the server's
//! `json` module — no external dependencies):
//!
//! * **Span tracing** ([`Recorder`]/[`Span`]) — a cheap cloneable handle
//!   that the compile → solve → simulate → serve layers report nested,
//!   monotonically-timed spans into, each carrying domain counters (states,
//!   blocks, iterations, operator applies, replications). A trace exports as
//!   Chrome trace-event JSON ([`Recorder::chrome_trace`]) loadable in
//!   `chrome://tracing` / Perfetto.
//! * **Convergence probes** ([`Probe`]/[`ProbeSeries`]) — an opt-in observer
//!   the iterative solvers feed their per-iteration (or per-restart)
//!   residual norms into, and the quotient simulator its per-batch
//!   likelihood-ratio certificate trajectory. Probes only *read* values the
//!   solvers already compute, so attaching one never perturbs numerics.
//! * **Latency histograms** ([`Histogram`]) — lock-free log-bucketed
//!   atomic counters with p50/p90/p99/max snapshots, used by the analysis
//!   daemon for per-op query latency, solve iteration counts and
//!   replication batches.
//!
//! ## The null-object contract
//!
//! A disabled [`Recorder`] (the default everywhere) is a null object: every
//! span/probe call reduces to one branch on an `Option` that is `None`, with
//! no allocation and no clock read. The `telemetry_overhead` criterion bench
//! gates the disabled-path overhead on a full availability solve at ≤2%.
//!
//! An *enabled* recorder must never perturb numerics either: it observes
//! values the instrumented code already computes and touches no float state,
//! so all solver and simulator outputs are bit-identical with tracing on or
//! off, at any thread count (pinned by the `telemetry_neutrality` tests).
//!
//! ## Plumbing
//!
//! The handle travels the same way `ExecOptions` does — explicitly where a
//! signature carries it (solver builders, the traced `CompiledQuotient`
//! methods, the analysis service) and via a scoped thread-local default
//! ([`Recorder::enter`] / [`Recorder::current`]) across the `Copy` options
//! structs (`ComposerOptions`, `TransientOptions`, `SimulationOptions`),
//! which cannot hold an `Arc` without breaking their copy semantics. A
//! process-global fallback ([`Recorder::install_global`]) lets
//! `wt_experiments --trace out.json` wrap any command without threading a
//! handle through every experiment signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod recorder;

pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{Probe, ProbeSeries, Recorder, ScopeGuard, Span, SpanRecord};
