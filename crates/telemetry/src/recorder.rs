//! The span tracer and convergence probes.
//!
//! A [`Recorder`] is a handle to a shared trace buffer (or to nothing: the
//! disabled recorder is a null object). Instrumented code opens a [`Span`]
//! around a phase, attaches domain counters to it, and lets the guard's
//! `Drop` commit the timing; iterative solvers additionally open a
//! [`Probe`] and feed it the residual norm they already compute each
//! iteration. Spans and probe series are buffered under a mutex — they are
//! created at phase granularity (a handful per query), never per iteration,
//! so the lock is uncontended; the per-iteration path is the lock-free
//! `Vec::push` inside the probe guard.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One completed span: a named phase with monotonic timing, the thread it
/// ran on and its domain counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (`compose`, `lump`, `solve`, `measure`, …).
    pub name: &'static str,
    /// Start offset from the recorder's epoch, in microseconds.
    pub start_us: u64,
    /// Duration, in microseconds.
    pub duration_us: u64,
    /// Small dense id of the recording thread (stable per thread, assigned
    /// on first use; Chrome groups same-thread spans into one nested track).
    pub thread: u64,
    /// Domain counters attached with [`Span::count`], in insertion order.
    pub counters: Vec<(&'static str, u64)>,
}

/// One convergence series captured by a [`Probe`]: the per-iteration (or
/// per-restart, or per-batch) values of one solve or simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSeries {
    /// What the values are (`residual` for solvers, `lr-certificate` for
    /// the simulator's per-batch likelihood-ratio trajectory).
    pub kind: &'static str,
    /// The solver tier that produced the series (`gauss-seidel`,
    /// `krylov-operator`, …) — the `tier_name()` of the engine probed.
    pub tier: &'static str,
    /// The captured values, in iteration order.
    pub values: Vec<f64>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    probes_on: bool,
    spans: Mutex<Vec<SpanRecord>>,
    series: Mutex<Vec<ProbeSeries>>,
}

/// A cheap cloneable tracing handle; [`Recorder::disabled`] is a null
/// object whose every operation is a no-op without allocation.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

/// Pops the scoped recorder installed by [`Recorder::enter`] when dropped.
#[must_use = "the scope ends when the guard drops"]
pub struct ScopeGuard {
    _private: (),
}

thread_local! {
    static SCOPE: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// Dense per-thread ids for span records (u64 hashes of `ThreadId` would be
/// unstable across runs; a counter keeps traces small and diffable).
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|id| *id)
}

impl Recorder {
    /// The null-object recorder: every span and probe is a no-op.
    pub const fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder capturing spans and counters (no convergence
    /// probes).
    pub fn enabled() -> Recorder {
        Recorder::live(false)
    }

    /// A live recorder that additionally activates convergence probes —
    /// per-iteration residual series on the solvers, the per-batch LR
    /// trajectory on the simulator.
    pub fn with_probes() -> Recorder {
        Recorder::live(true)
    }

    fn live(probes_on: bool) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                probes_on,
                spans: Mutex::new(Vec::new()),
                series: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether convergence probes are active.
    pub fn probes_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|inner| inner.probes_on)
    }

    /// Installs this recorder as the calling thread's scoped default —
    /// [`Recorder::current`] returns it until the guard drops. Scopes nest;
    /// the innermost wins.
    pub fn enter(&self) -> ScopeGuard {
        SCOPE.with(|stack| stack.borrow_mut().push(self.clone()));
        ScopeGuard { _private: () }
    }

    /// The recorder instrumented code should report to when no handle was
    /// threaded explicitly: the innermost [`Recorder::enter`] scope on this
    /// thread, else the process-global recorder, else the disabled null
    /// object. The miss path is one thread-local read and one `OnceLock`
    /// load — cheap enough to call once per solve, never per iteration.
    pub fn current() -> Recorder {
        let scoped = SCOPE.with(|stack| stack.borrow().last().cloned());
        if let Some(recorder) = scoped {
            return recorder;
        }
        GLOBAL.get().cloned().unwrap_or_default()
    }

    /// Installs the process-global fallback recorder (used by
    /// `wt_experiments --trace` so one flag traces any command). The first
    /// installation wins; returns whether this call installed it.
    pub fn install_global(recorder: Recorder) -> bool {
        GLOBAL.set(recorder).is_ok()
    }

    /// Opens a span; the guard records on drop. On a disabled recorder this
    /// is one branch — no clock read, no allocation.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            active: self.inner.as_ref().map(|inner| ActiveSpan {
                inner: Arc::clone(inner),
                name,
                started: Instant::now(),
                counters: Vec::new(),
            }),
        }
    }

    /// Opens a convergence probe for a solver tier. Inactive (a no-op
    /// guard) unless this recorder was built with [`Recorder::with_probes`]
    /// — spans-only tracing never pays the per-iteration push.
    pub fn probe(&self, kind: &'static str, tier: &'static str) -> Probe {
        Probe {
            active: self
                .inner
                .as_ref()
                .filter(|inner| inner.probes_on)
                .map(|inner| ActiveProbe {
                    inner: Arc::clone(inner),
                    kind,
                    tier,
                    values: Vec::new(),
                }),
        }
    }

    /// Snapshot of every completed span, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().expect("span buffer poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of every committed probe series, in completion order.
    pub fn series(&self) -> Vec<ProbeSeries> {
        match &self.inner {
            Some(inner) => inner.series.lock().expect("probe buffer poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Sum of counter `key` over all completed spans named `name` — the
    /// aggregate the service counters must agree with (`solve` /
    /// `iterations` totals, `simulate` / `replications`, …).
    pub fn counter_total(&self, name: &str, key: &str) -> u64 {
        self.spans()
            .iter()
            .filter(|span| span.name == name)
            .flat_map(|span| span.counters.iter())
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Number of completed spans named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans().iter().filter(|span| span.name == name).count()
    }

    /// Exports the trace as Chrome trace-event JSON (the `traceEvents`
    /// array of `X` complete events; same-thread spans nest by timing in
    /// `chrome://tracing` / Perfetto). Probe series ride along under a
    /// `probes` key, which trace viewers ignore.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, span) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"arcade\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{",
                escape(span.name),
                span.start_us,
                span.duration_us,
                span.thread,
            ));
            for (j, (key, value)) in span.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape(key), value));
            }
            out.push_str("}}");
        }
        out.push_str("],\"probes\":[");
        for (i, series) in self.series().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"tier\":\"{}\",\"values\":[",
                escape(series.kind),
                escape(series.tier),
            ));
            for (j, value) in series.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_number(*value));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Formats a probe value as a JSON number (`null` for non-finite values,
/// which JSON cannot carry).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        // `{:?}` is the shortest representation that round-trips the bits.
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

fn escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    started: Instant,
    counters: Vec<(&'static str, u64)>,
}

/// A span guard: commits the timed record when dropped. The disabled guard
/// holds nothing.
#[derive(Debug)]
#[must_use = "the span is timed until the guard drops"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// Attaches (or accumulates into) a domain counter. A no-op on the
    /// disabled guard.
    pub fn count(&mut self, key: &'static str, value: u64) {
        if let Some(active) = &mut self.active {
            match active.counters.iter_mut().find(|(k, _)| *k == key) {
                Some((_, total)) => *total += value,
                None => active.counters.push((key, value)),
            }
        }
    }

    /// Whether the guard is live (so callers can skip preparing counter
    /// values that are expensive to compute).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let start_us = active
                .started
                .duration_since(active.inner.epoch)
                .as_micros() as u64;
            let duration_us = active.started.elapsed().as_micros() as u64;
            let record = SpanRecord {
                name: active.name,
                start_us,
                duration_us,
                thread: thread_ordinal(),
                counters: active.counters,
            };
            active
                .inner
                .spans
                .lock()
                .expect("span buffer poisoned")
                .push(record);
        }
    }
}

#[derive(Debug)]
struct ActiveProbe {
    inner: Arc<Inner>,
    kind: &'static str,
    tier: &'static str,
    values: Vec<f64>,
}

/// A convergence-probe guard: buffers values locally (no locks on the hot
/// path) and commits the series when dropped. The inactive guard's
/// [`Probe::record`] is a single branch.
#[derive(Debug)]
pub struct Probe {
    active: Option<ActiveProbe>,
}

impl Probe {
    /// Records one observation (a residual norm, a running LR mean). Only
    /// *reads* the value — attaching a probe can never perturb the
    /// iteration it watches.
    #[inline]
    pub fn record(&mut self, value: f64) {
        if let Some(active) = &mut self.active {
            active.values.push(value);
        }
    }

    /// Whether observations are being captured.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Probe {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let series = ProbeSeries {
                kind: active.kind,
                tier: active.tier,
                values: active.values,
            };
            active
                .inner
                .series
                .lock()
                .expect("probe buffer poisoned")
                .push(series);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let recorder = Recorder::disabled();
        assert!(!recorder.is_enabled());
        assert!(!recorder.probes_enabled());
        let mut span = recorder.span("solve");
        span.count("states", 10);
        assert!(!span.is_recording());
        drop(span);
        let mut probe = recorder.probe("residual", "gauss-seidel");
        probe.record(1e-9);
        assert!(!probe.is_active());
        drop(probe);
        assert!(recorder.spans().is_empty());
        assert!(recorder.series().is_empty());
    }

    #[test]
    fn spans_record_counters_and_nesting_order() {
        let recorder = Recorder::enabled();
        {
            let mut outer = recorder.span("measure");
            outer.count("points", 3);
            {
                let mut inner = recorder.span("solve");
                inner.count("iterations", 17);
                inner.count("iterations", 3);
            }
        }
        let spans = recorder.spans();
        assert_eq!(spans.len(), 2);
        // Inner drops (and therefore records) first.
        assert_eq!(spans[0].name, "solve");
        assert_eq!(spans[0].counters, vec![("iterations", 20)]);
        assert_eq!(spans[1].name, "measure");
        assert_eq!(spans[1].counters, vec![("points", 3)]);
        // The inner span starts no earlier and ends no later than the outer.
        assert!(spans[0].start_us >= spans[1].start_us);
        assert!(
            spans[0].start_us + spans[0].duration_us
                <= spans[1].start_us + spans[1].duration_us + 1
        );
        assert_eq!(recorder.counter_total("solve", "iterations"), 20);
        assert_eq!(recorder.span_count("solve"), 1);
    }

    #[test]
    fn probes_activate_only_with_probes_on() {
        let spans_only = Recorder::enabled();
        assert!(!spans_only.probe("residual", "power").is_active());

        let probed = Recorder::with_probes();
        assert!(probed.probes_enabled());
        {
            let mut probe = probed.probe("residual", "power");
            probe.record(0.5);
            probe.record(0.25);
        }
        let series = probed.series();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].kind, "residual");
        assert_eq!(series[0].tier, "power");
        assert_eq!(series[0].values, vec![0.5, 0.25]);
    }

    #[test]
    fn scoped_current_nests_and_pops() {
        assert!(!Recorder::current().is_enabled(), "no ambient recorder");
        let outer = Recorder::enabled();
        let _outer_guard = outer.enter();
        assert!(Recorder::current().is_enabled());
        {
            let inner = Recorder::with_probes();
            let _inner_guard = inner.enter();
            assert!(Recorder::current().probes_enabled(), "innermost wins");
        }
        assert!(!Recorder::current().probes_enabled(), "inner scope popped");
        Recorder::current().span("scoped").count("n", 1);
        assert_eq!(outer.span_count("scoped"), 1);
    }

    #[test]
    fn chrome_trace_has_the_expected_shape() {
        let recorder = Recorder::with_probes();
        {
            let mut span = recorder.span("solve");
            span.count("iterations", 42);
            let mut probe = recorder.probe("residual", "gauss-seidel");
            probe.record(1e-3);
            probe.record(f64::INFINITY);
        }
        let trace = recorder.chrome_trace();
        assert!(trace.starts_with('{') && trace.ends_with('}'));
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"solve\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"iterations\":42"));
        assert!(trace.contains("\"kind\":\"residual\""));
        assert!(trace.contains("0.001"));
        assert!(trace.contains("null"), "non-finite values become null");
        assert!(!trace.contains('\n'), "one line, embeddable in NDJSON logs");
    }

    #[test]
    fn escaping_handles_quotes_and_control_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("tab\there"), "tab\\u0009here");
    }
}
