//! Lock-free log-bucketed histograms.
//!
//! A [`Histogram`] holds one atomic counter per power-of-two bucket: value
//! `v` lands in the bucket indexed by its bit length (`v = 0` → bucket 0,
//! `v ∈ [2^(i-1), 2^i)` → bucket `i`). Recording is two relaxed atomic adds
//! and one atomic max — safe from any number of threads with no locking —
//! which is what lets the analysis daemon time every query on the hot path.
//! Quantiles come from a [`HistogramSnapshot`]: the reported percentile is
//! the inclusive upper bound of the bucket where the cumulative count
//! crosses the rank, so it is an overestimate by at most 2× (the bucket
//! width), which is the standard precision trade of log-bucketed latency
//! histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bit lengths 0..=63 (the top bucket also absorbs the
/// handful of values with bit length 64).
pub const NUM_BUCKETS: usize = 64;

/// The bucket index of a value: its bit length, clamped to the top bucket.
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// The inclusive upper bound of a bucket (`0` for bucket 0, `2^i - 1`
/// otherwise; the top bucket reports `u64::MAX`).
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A lock-free log-bucketed histogram of `u64` observations (microseconds,
/// iteration counts, batch counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation (relaxed atomics; never blocks).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy (buckets trimmed to the highest non-empty one).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile accessors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations (for means).
    pub sum: u64,
    /// Largest observation (exact, not bucketed).
    pub max: u64,
    /// Per-bucket counts, index = bit length of the value; trailing empty
    /// buckets trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// where the cumulative count reaches `ceil(q · count)` (the exact
    /// `max` for the top non-empty bucket). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        let top = self.buckets.len().saturating_sub(1);
        for (bucket, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank && n > 0 {
                // The max lives in the top non-empty bucket; report it
                // exactly instead of the (possibly huge) bucket bound.
                return Some(if bucket == top {
                    self.max
                } else {
                    bucket_upper_bound(bucket)
                });
            }
        }
        Some(self.max)
    }

    /// Median (upper bucket bound).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile (upper bucket bound).
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile (upper bucket bound).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        // Every bucket's upper bound maps back into that bucket.
        for bucket in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_upper_bound(bucket)), bucket, "{bucket}");
        }
        // The boundary value 2^i is the first value of bucket i+1.
        for i in 1..62 {
            assert_eq!(bucket_of((1u64 << i) - 1), i);
            assert_eq!(bucket_of(1u64 << i), i + 1);
        }
    }

    #[test]
    fn snapshot_counts_sum_and_max() {
        let hist = Histogram::new();
        for v in [0, 1, 1, 3, 100, 1000] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1105);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.buckets[0], 1, "one zero");
        assert_eq!(snap.buckets[1], 2, "two ones");
        assert_eq!(snap.buckets[2], 1, "one three");
        assert_eq!(snap.buckets[7], 1, "100 has bit length 7");
        assert_eq!(snap.buckets[10], 1, "1000 has bit length 10");
        assert_eq!(snap.buckets.len(), 11, "trailing zeros trimmed");
        assert_eq!(snap.mean(), Some(1105.0 / 6.0));
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let hist = Histogram::new();
        // 90 fast observations (≤ 127 µs), 10 slow (≈ 4000 µs).
        for _ in 0..90 {
            hist.record(100);
        }
        for _ in 0..10 {
            hist.record(4000);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.p50(), Some(127), "bucket [64, 127] holds the median");
        assert_eq!(snap.p90(), Some(127));
        assert_eq!(snap.p99(), Some(4000), "top bucket reports the exact max");
        assert_eq!(snap.quantile(1.0), Some(4000));
        assert_eq!(snap.max, 4000);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), None);
        assert_eq!(snap.mean(), None);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = std::sync::Arc::new(Histogram::new());
        let workers: Vec<_> = (0..8)
            .map(|w| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        hist.record(w * 1000 + i);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.max, 7999);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8000);
    }
}
