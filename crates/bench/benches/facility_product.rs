//! Product-of-quotients engine: construction and solve timings.
//!
//! Tracks the two-line facility pipeline end to end at 1 and 4 threads:
//!
//! * **construct** — compile both lines compositionally, lump them, build
//!   the `QuotientProduct` and materialise the joint FRF-1 × FRF-1 chain
//!   (449 × 257 = 115,393 blocks, ≈ 1.2M transitions) through the sharded
//!   row enumeration;
//! * **availability** — the `table_facility` validation solve: per-line
//!   availabilities, the product form, and the genuine joint-chain
//!   stationary solve (warm started, residual-certified).
//!
//! Every thread count must produce bit-identical results before timing — the
//! sweep asserts this up front, mirroring `compositional_parallel`.

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments;
use watertreatment::{facility, strategies};

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn options(threads: usize) -> ComposerOptions {
    ComposerOptions {
        exec: ExecOptions::with_threads(threads),
        ..ComposerOptions::default()
    }
}

fn bench_product_construction(c: &mut Criterion) {
    // Determinism gate: the materialised joint chain must be identical for
    // every thread count.
    let reference = {
        let model = facility::facility_model(&strategies::frf(1), &strategies::frf(1)).unwrap();
        let analysis = FacilityAnalysis::with_options(&model, options(1)).unwrap();
        analysis
            .quotient_product()
            .unwrap()
            .materialize(&ExecOptions::with_threads(1))
            .unwrap()
    };
    assert_eq!(reference.num_states(), 449 * 257);
    for threads in THREAD_COUNTS {
        let model = facility::facility_model(&strategies::frf(1), &strategies::frf(1)).unwrap();
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
        let joint = analysis
            .quotient_product()
            .unwrap()
            .materialize(&ExecOptions::with_threads(threads))
            .unwrap();
        assert_eq!(joint, reference, "materialisation at {threads} threads");
    }

    let mut group = c.benchmark_group("facility_product_construct");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("frf1_pair/threads_{threads}"), |b| {
            b.iter(|| {
                let model =
                    facility::facility_model(&strategies::frf(1), &strategies::frf(1)).unwrap();
                let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
                analysis
                    .quotient_product()
                    .unwrap()
                    .materialize(&ExecOptions::with_threads(threads))
                    .unwrap()
                    .num_transitions()
            })
        });
    }
    group.finish();
}

fn bench_joint_availability(c: &mut Criterion) {
    // Determinism gate for the full validation solve.
    let pair = [(strategies::frf(1), strategies::frf(1))];
    let reference = experiments::table_facility_with(&pair, ExecOptions::with_threads(1)).unwrap();
    for threads in THREAD_COUNTS {
        let rows =
            experiments::table_facility_with(&pair, ExecOptions::with_threads(threads)).unwrap();
        assert_eq!(rows, reference, "solve at {threads} threads");
        assert!(rows[0].difference <= 1e-9);
    }

    let mut group = c.benchmark_group("facility_product_availability");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("table_facility_frf1/threads_{threads}"), |b| {
            b.iter(|| {
                experiments::table_facility_with(&pair, ExecOptions::with_threads(threads)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_product_construction,
    bench_joint_availability
);
criterion_main!(benches);
