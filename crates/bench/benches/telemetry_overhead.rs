//! Telemetry overhead: the disabled recorder must be free.
//!
//! Times the full availability pipeline — compose, lump, solve on the
//! quotient — for the paper's Line 2 model under three recorder regimes:
//!
//! * `baseline`        — no recorder anywhere (the null object throughout);
//! * `disabled_scope`  — an explicitly entered *disabled* recorder, the
//!   worst case of the scoped-lookup plumbing with recording off;
//! * `recording`       — a live recorder with convergence probes, the full
//!   tracing cost.
//!
//! The acceptance criterion for the telemetry layer is that `disabled_scope`
//! is within 2% of `baseline` (a disabled span is one branch — no clock
//! read, no allocation). `recording` is reported for context; its cost is
//! the price of the trace, paid only when asked for.

use arcade_core::{Analysis, ArcadeModel, CompiledModel, ComposerOptions};
use arcade_telemetry::Recorder;
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::{facility, strategies, Line};

fn solve_availability(model: &ArcadeModel) -> f64 {
    let compiled = CompiledModel::compile_with(model, ComposerOptions::default()).unwrap();
    let analysis = Analysis::from_compiled(model, compiled);
    analysis.steady_state_availability().unwrap()
}

fn bench_overhead(c: &mut Criterion) {
    let model =
        facility::line_model(Line::Line2, &strategies::dedicated()).expect("paper model builds");

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(30);

    group.bench_function("line2_ded_availability/baseline", |b| {
        b.iter(|| solve_availability(&model))
    });

    group.bench_function("line2_ded_availability/disabled_scope", |b| {
        let recorder = Recorder::disabled();
        b.iter(|| {
            let _scope = recorder.enter();
            solve_availability(&model)
        })
    });

    group.bench_function("line2_ded_availability/recording", |b| {
        b.iter(|| {
            let recorder = Recorder::with_probes();
            let _scope = recorder.enter();
            solve_availability(&model)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
