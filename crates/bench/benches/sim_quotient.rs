//! The per-replication cost ladder of the two Monte-Carlo engines on the
//! flagship Line 1 FRF-1 model (flat chain: 111,809 states; solver quotient:
//! 449 blocks):
//!
//! * **flat** — the component-level discrete-event engine
//!   ([`arcade_sim::Simulator`]): every jump re-dispatches crews, re-evaluates
//!   the fault/service trees and scans the enabled-event CDF;
//! * **quotient** — the quotient-resident engine
//!   ([`arcade_sim::QuotientSimulator`]): every jump is one uniform draw
//!   through a per-block Walker/Vose alias table.
//!
//! Before any timing, the determinism contracts are asserted: the quotient
//! run is bit-identical across 1/2/4/8 worker threads (biased and unbiased),
//! and both engines agree on the estimated unavailability within their
//! confidence intervals.
//!
//! Measured on the dev box (min-of-10, 50 replications, 1000 h horizon): the
//! quotient engine runs a replication in ~0.28 µs vs ~7 µs flat — a ~25×
//! per-replication speedup (~31× on the post-disaster survivability
//! transient, where the flat engine re-evaluates the service tree per
//! event). The per-jump gap is ~10 ns vs ~290 ns. The biased ladder rides
//! along for context: at bias 50 the biased run costs ~18× the natural
//! quotient run — not from likelihood-ratio bookkeeping but because biasing
//! multiplies the failure-jump density, which is exactly its purpose.

use arcade_core::{CompiledQuotient, ComposerOptions};
use arcade_sim::{QuotientSimulator, SimulationOptions, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use ctmc::ExecOptions;
use watertreatment::{facility, strategies, Line};

const HORIZON: f64 = 1000.0;
const SEED: u64 = 0x51AB;

fn options(replications: usize, threads: usize) -> SimulationOptions {
    SimulationOptions {
        replications,
        seed: SEED,
        exec: ExecOptions::with_threads(threads),
        ..Default::default()
    }
}

fn sim_quotient_benchmarks(c: &mut Criterion) {
    let model = facility::line_model(Line::Line1, &strategies::frf(1)).unwrap();
    let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
    assert_eq!(quotient.chain().num_states(), 449, "Line 1 FRF-1 quotient");
    let flat = Simulator::new(&model).unwrap();
    let lumped = QuotientSimulator::new(&quotient);

    // Determinism gates before timing: bit-identical across thread counts,
    // with and without failure biasing.
    for bias in [1.0, 50.0] {
        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let mut opts = options(200, threads);
            opts.bias = bias;
            let report = lumped.unavailability(HORIZON, &opts).unwrap();
            let bits = (
                report.estimate.mean.to_bits(),
                report.estimate.half_width.to_bits(),
            );
            match &reference {
                None => reference = Some(bits),
                Some(expected) => {
                    assert_eq!(*expected, bits, "bias {bias}, threads {threads}")
                }
            }
        }
    }
    // Cross-engine agreement: the two independent implementations estimate
    // the same unavailability.
    let exact_check = flat
        .steady_state_availability(HORIZON, &options(400, 4))
        .unwrap();
    let quotient_check = lumped.unavailability(HORIZON, &options(400, 4)).unwrap();
    let flat_unavail = 1.0 - exact_check.mean;
    assert!(
        (quotient_check.estimate.mean - flat_unavail).abs()
            <= quotient_check.estimate.half_width + exact_check.half_width + 0.01,
        "flat {flat_unavail} vs quotient {:?}",
        quotient_check.estimate
    );

    let mut group = c.benchmark_group("sim_line1_frf1");
    group.sample_size(10);

    // The per-replication ladder: identical measure, horizon and replication
    // count on both engines, single-threaded so the timing is the raw
    // per-replication cost, then the parallel quotient run on 8 threads.
    const REPLICATIONS: usize = 50;
    group.bench_function("flat_50_replications_1_thread", |b| {
        b.iter(|| {
            flat.steady_state_availability(HORIZON, &options(REPLICATIONS, 1))
                .unwrap()
        })
    });
    group.bench_function("quotient_50_replications_1_thread", |b| {
        b.iter(|| {
            lumped
                .unavailability(HORIZON, &options(REPLICATIONS, 1))
                .unwrap()
        })
    });
    group.bench_function("quotient_biased_50_replications_1_thread", |b| {
        let mut opts = options(REPLICATIONS, 1);
        opts.bias = 50.0;
        b.iter(|| lumped.unavailability(HORIZON, &opts).unwrap())
    });
    // Parallel replication batches: batch 125 so all eight workers get work.
    // The cost includes spawning the scoped worker pool, which a long-running
    // caller (the analysis daemon) pays once per request.
    group.bench_function("quotient_2000_replications_8_threads", |b| {
        let mut opts = options(2000, 8);
        opts.batch = 125;
        b.iter(|| lumped.unavailability(HORIZON, &opts).unwrap())
    });
    // Table construction is the quotient engine's only setup cost; pin it so
    // the O(transitions) claim stays honest.
    group.bench_function("alias_table_construction_449_blocks", |b| {
        b.iter(|| QuotientSimulator::new(&quotient))
    });
    // Survivability after disaster 1 (the paper's flagship transient): the
    // post-disaster repair queue drives the flat engine through its dispatch
    // and tree-evaluation paths every event.
    let disaster = model.disaster(facility::DISASTER_ALL_PUMPS).unwrap();
    group.bench_function("flat_surv_50_replications_1_thread", |b| {
        b.iter(|| {
            flat.survivability(disaster, 1.0, 100.0, &options(REPLICATIONS, 1))
                .unwrap()
        })
    });
    group.bench_function("quotient_surv_50_replications_1_thread", |b| {
        b.iter(|| {
            lumped
                .survivability(
                    facility::DISASTER_ALL_PUMPS,
                    1.0,
                    100.0,
                    &options(REPLICATIONS, 1),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, sim_quotient_benchmarks);
criterion_main!(benches);
