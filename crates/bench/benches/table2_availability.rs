//! Table 2: steady-state availability per repair strategy.
//!
//! Regenerates the table (printed to stdout) and benchmarks the steady-state
//! solver on the Line 2 models.

use arcade_core::Analysis;
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::{experiments, facility, strategies, Line};

fn regenerate_and_bench(c: &mut Criterion) {
    let rows = experiments::table2().expect("table 2 regenerates");
    wt_bench::print_table(
        "Table 2 (steady-state availability)",
        &experiments::format_table2(&rows),
    );
    wt_bench::print_table(
        "Table 2 (paper reference)",
        &experiments::format_table2(&experiments::table2_paper_reference()),
    );

    let mut group = c.benchmark_group("table2_availability");
    group.sample_size(10);
    for spec in [
        strategies::dedicated(),
        strategies::frf(1),
        strategies::frf(2),
    ] {
        let model = facility::line_model(Line::Line2, &spec).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        group.bench_function(format!("line2_{}", spec.label), |b| {
            b.iter(|| analysis.steady_state_availability().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
