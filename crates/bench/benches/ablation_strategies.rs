//! Ablation study beyond the paper's tables:
//!
//! * queue encodings — the canonical (priority-sorted) encoding used for the
//!   reproduction versus the arrival-order encoding closer to the paper's PRISM
//!   models, on Line 2;
//! * FCFS as a first-class strategy (the paper uses it only as tie-break);
//! * the availability / cost trade-off across all strategies and crew counts.

use arcade_core::{Analysis, CompiledModel, ComposerOptions, QueueEncoding};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::{facility, strategies, Line};

fn ablation(c: &mut Criterion) {
    // --- Queue-encoding ablation (printed) ---
    // The arrival-order encoding keeps the full arrival permutation of waiting
    // components (closest to the paper's PRISM models) and is considerably
    // larger, so it is only built for the single-crew FRF configuration here.
    println!("\n===== ablation: queue encodings on Line 2 =====");
    println!("strategy  encoding           states   transitions");
    for (spec, encodings) in [
        (
            strategies::fcfs(1),
            vec![("priority-canonical", QueueEncoding::PriorityCanonical)],
        ),
        (
            strategies::frf(1),
            vec![
                ("priority-canonical", QueueEncoding::PriorityCanonical),
                ("arrival-order", QueueEncoding::ArrivalOrder),
            ],
        ),
        (
            strategies::frf(2),
            vec![("priority-canonical", QueueEncoding::PriorityCanonical)],
        ),
        (
            strategies::fff(2),
            vec![("priority-canonical", QueueEncoding::PriorityCanonical)],
        ),
    ] {
        let model = facility::line_model(Line::Line2, &spec).unwrap();
        for (label, encoding) in encodings {
            let compiled = CompiledModel::compile_with(
                &model,
                ComposerOptions {
                    queue_encoding: encoding,
                    ..Default::default()
                },
            )
            .unwrap();
            let stats = compiled.stats();
            println!(
                "{:<9} {:<18} {:<8} {}",
                spec.label, label, stats.num_states, stats.num_transitions
            );
        }
    }

    // --- Strategy trade-off table including FCFS and the preemptive extension ---
    println!("\n===== ablation: availability vs long-run cost on Line 2 =====");
    println!("strategy  availability  long-run cost rate  states");
    for spec in [
        strategies::dedicated(),
        strategies::fcfs(1),
        strategies::fcfs(2),
        strategies::frf(1),
        strategies::frf(2),
        strategies::fff(1),
        strategies::fff(2),
        strategies::frf_preemptive(1),
        strategies::frf_preemptive(2),
        strategies::fff_preemptive(1),
        strategies::fff_preemptive(2),
    ] {
        let model = facility::line_model(Line::Line2, &spec).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        println!(
            "{:<9} {:<13.7} {:<19.4} {}",
            spec.label,
            analysis.steady_state_availability().unwrap(),
            analysis.long_run_cost_rate().unwrap(),
            analysis.state_space_stats().num_states
        );
    }

    // --- Timed kernels (canonical encoding only; the arrival-order encoding is
    // reported above but is too large to re-build inside a sampling loop) ---
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let model = facility::line_model(Line::Line2, &strategies::frf(1)).unwrap();
    group.bench_function("compile_line2_frf1_canonical", |b| {
        b.iter(|| {
            CompiledModel::compile_with(
                &model,
                ComposerOptions {
                    queue_encoding: QueueEncoding::PriorityCanonical,
                    ..Default::default()
                },
            )
            .unwrap()
            .stats()
        })
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
