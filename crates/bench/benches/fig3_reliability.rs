//! Fig. 3: reliability of both process lines over the mission time.

use arcade_core::Analysis;
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::{self, grids};
use watertreatment::{facility, strategies, Line};

fn regenerate_and_bench(c: &mut Criterion) {
    let figure = experiments::fig3_reliability(&grids::step_grid(0.0, 1000.0, 50.0))
        .expect("fig 3 regenerates");
    wt_bench::print_figure(&figure);

    let mut group = c.benchmark_group("fig3_reliability");
    group.sample_size(10);
    for line in Line::both() {
        let model = facility::line_model(line, &strategies::dedicated()).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        group.bench_function(format!("{}_reliability_1000h", line.id()), |b| {
            b.iter(|| analysis.reliability(1000.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
