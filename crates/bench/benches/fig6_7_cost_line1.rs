//! Figs. 6 and 7: instantaneous and accumulated repair cost of Line 1 after
//! Disaster 1, for DED / FRF-1 / FRF-2.

use arcade_core::Analysis;
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::{self, grids};
use watertreatment::{facility, strategies, Line};

fn regenerate_and_bench(c: &mut Criterion) {
    // Coarser grids than the paper's plots keep the bench run short; the
    // full-resolution curves come from `wt-experiments fig6 fig7`.
    let (fig6, fig7) = experiments::fig6_7_cost_line1(
        &grids::step_grid(0.0, 4.5, 0.45),
        &grids::step_grid(0.0, 10.0, 1.0),
    )
    .expect("figs 6-7 regenerate");
    wt_bench::print_figure(&fig6);
    wt_bench::print_figure(&fig7);

    let model = facility::line_model(Line::Line1, &strategies::frf(2)).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let disaster = model.disaster(facility::DISASTER_ALL_PUMPS).unwrap();
    let mut group = c.benchmark_group("fig6_7_costs");
    group.sample_size(10);
    group.bench_function("line1_frf2_accumulated_cost_10h", |b| {
        b.iter(|| {
            analysis
                .accumulated_cost_curve(Some(disaster), &[10.0])
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
