//! Matrix-free vs materialised steady state on the flagship FRF-1 × FRF-1
//! facility product (449 × 257 = 115,393 joint blocks).
//!
//! The acceptance race of the operator tier: **materialise+solve** builds the
//! joint `SparseMatrix` through the sharded row enumeration and Gauss–Seidels
//! it, while **operator-solve** hands the Kronecker-sum operator straight to
//! the Krylov solver — no `materialize()` call anywhere on that path, so its
//! peak allocation is a handful of product-length vectors instead of the
//! ≈ 1.2M-entry joint matrix. Both are warm started from the product form and
//! certified by the matrix-free balance residual.
//!
//! Before any timing, the gate asserts the two paths agree to ≤ 1e-10 and
//! that the operator solve is bit-identical at 1, 2, 4 and 8 threads.

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis, FacilityModel};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::{facility, strategies};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn options(threads: usize) -> ComposerOptions {
    ComposerOptions {
        exec: ExecOptions::with_threads(threads),
        ..ComposerOptions::default()
    }
}

fn frf1_model() -> FacilityModel {
    facility::facility_model(&strategies::frf(1), &strategies::frf(1)).unwrap()
}

fn bench_matrix_free_steady_state(c: &mut Criterion) {
    let model = frf1_model();

    // Acceptance gate: operator ≡ materialised ≤ 1e-10, certified, and the
    // operator path is bit-identical for every thread count.
    let reference_analysis = FacilityAnalysis::with_options(&model, options(1)).unwrap();
    let materialised = reference_analysis
        .joint_steady_state_availability()
        .unwrap();
    assert_eq!(materialised.solver_tier, "gs-materialised");
    assert_eq!(materialised.joint_states, 449 * 257);
    let reference = reference_analysis
        .matrix_free_steady_state_availability()
        .unwrap();
    assert_eq!(reference.solver_tier, "krylov-operator");
    assert!(
        (reference.availability - materialised.availability).abs() <= 1e-10,
        "operator {} vs materialised {}",
        reference.availability,
        materialised.availability
    );
    assert!(reference.residual < 1e-9, "residual {}", reference.residual);
    for threads in THREAD_COUNTS {
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
        let row = analysis.matrix_free_steady_state_availability().unwrap();
        assert!(
            row.availability.to_bits() == reference.availability.to_bits()
                && row.iterations == reference.iterations,
            "operator solve differs at {threads} threads"
        );
    }

    let mut group = c.benchmark_group("matrix_free_steady_state");
    group.sample_size(10);
    for threads in [1usize, 4] {
        // A fresh analysis per iteration so neither lap reuses the cached
        // joint chain or group solves: both race end to end from compilation.
        // The matrix-free lap never calls materialize().
        group.bench_function(format!("materialise_plus_gs/threads_{threads}"), |b| {
            b.iter(|| {
                FacilityAnalysis::with_options(&model, options(threads))
                    .unwrap()
                    .joint_steady_state_availability()
                    .unwrap()
                    .availability
            })
        });
        group.bench_function(format!("operator_krylov/threads_{threads}"), |b| {
            b.iter(|| {
                FacilityAnalysis::with_options(&model, options(threads))
                    .unwrap()
                    .matrix_free_steady_state_availability()
                    .unwrap()
                    .availability
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matrix_free_steady_state);
criterion_main!(benches);
