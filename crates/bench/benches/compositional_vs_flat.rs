//! Compositional aggregation vs. flat composition, end to end.
//!
//! Prints the per-line sub-chain breakdown for the paper's models, then times
//! three pipelines on the heavy Line 1 / Line 2 queueing models:
//!
//! * `flat`                 — compose the full product chain, solve on it;
//! * `flat_then_lump`       — compose the full product, lump, solve on the
//!   quotient (the default pipeline of PR 1);
//! * `compositional`        — lump each per-line sub-chain first and compose
//!   the canonical quotient product directly (the default pipeline now): the
//!   flat chain is never materialised.
//!
//! The acceptance criterion for the compositional subsystem is that the
//! Fig. 8/9 survivability curves (and the Table 2 availability solve) beat the
//! flat-then-lump baseline end to end, because composition itself — formerly
//! ~450 ms on Line 1 FRF — now visits only the canonical states.

use arcade_core::{Analysis, CompiledModel, ComposerOptions, LumpingMode};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::{grids, service_levels};
use watertreatment::{facility, strategies, Line};

fn options(lumping: LumpingMode) -> ComposerOptions {
    ComposerOptions {
        lumping,
        ..Default::default()
    }
}

fn print_subchain_breakdown() {
    println!("\n===== compositional aggregation (per-line sub-chains) =====");
    for (line, spec) in [
        (Line::Line1, strategies::frf(1)),
        (Line::Line2, strategies::frf(1)),
    ] {
        let model = facility::line_model(line, &spec).expect("paper model builds");
        let compiled = CompiledModel::compile(&model).expect("paper model compiles");
        let stats = compiled.stats();
        println!(
            "{} {}: explored {} canonical states (bound {}), final quotient {}",
            line.id(),
            spec.label,
            stats.num_states,
            stats.subchain_state_bound.expect("compositional default"),
            stats.lumped_states.expect("final pass enabled"),
        );
        for subchain in &stats.subchains {
            println!(
                "  sub-chain {:?}: {} local states -> {} blocks",
                subchain.members, subchain.local_states, subchain.local_blocks
            );
        }
    }
}

fn bench_availability(c: &mut Criterion, line: Line, spec: watertreatment::StrategySpec) {
    let model = facility::line_model(line, &spec).expect("paper model builds");
    let label = format!("{}_{}", line.id(), spec.label);

    let mut group = c.benchmark_group("compositional_vs_flat_availability");
    group.sample_size(10);
    for (name, mode) in [
        ("flat", LumpingMode::Disabled),
        ("flat_then_lump", LumpingMode::Exact),
        ("compositional", LumpingMode::Compositional),
    ] {
        group.bench_function(format!("{label}/{name}"), |b| {
            b.iter(|| {
                let compiled = CompiledModel::compile_with(&model, options(mode)).unwrap();
                let analysis = Analysis::from_compiled(&model, compiled);
                analysis.steady_state_availability().unwrap()
            })
        });
    }
    group.finish();
}

/// The paper's heavy measure: a full Fig. 8/9 survivability curve from
/// composition to the last time point.
fn bench_survivability(c: &mut Criterion, line: Line, spec: watertreatment::StrategySpec) {
    let model = facility::line_model(line, &spec).expect("paper model builds");
    let disaster = model
        .disaster(facility::DISASTER_LINE2_MIXED)
        .expect("disaster 2 is defined for line 2");
    let times = grids::fig8_9();
    let label = format!("{}_{}", line.id(), spec.label);

    let mut group = c.benchmark_group("compositional_vs_flat_survivability");
    group.sample_size(10);
    for (name, mode) in [
        ("flat_then_lump", LumpingMode::Exact),
        ("compositional", LumpingMode::Compositional),
    ] {
        group.bench_function(format!("{label}/{name}"), |b| {
            b.iter(|| {
                let compiled = CompiledModel::compile_with(&model, options(mode)).unwrap();
                let analysis = Analysis::from_compiled(&model, compiled);
                analysis
                    .survivability_curve(disaster, service_levels::LINE2_X1, &times)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn compositional_vs_flat(c: &mut Criterion) {
    print_subchain_breakdown();
    bench_availability(c, Line::Line1, strategies::frf(1));
    bench_availability(c, Line::Line2, strategies::frf(1));
    bench_survivability(c, Line::Line2, strategies::frf(1));
    bench_survivability(c, Line::Line2, strategies::fff(2));
}

criterion_group!(benches, compositional_vs_flat);
criterion_main!(benches);
