//! Thread-count scaling of the parallel execution layer.
//!
//! The tracked workload is the Fig. 8/9-style survivability sweep: all five
//! paper strategies on Line 2, each compiled compositionally and evaluated on
//! two service-level curves over the full time grid. The five strategy tasks
//! are independent, so the experiment layer fans them out across the worker
//! pool; inside each task the curves batch all time points over one
//! Fox–Glynn pass. The acceptance target of the parallel-execution subsystem
//! is a ≥ 2× wall-clock improvement at 4 threads over 1 thread on this
//! sweep, with bit-identical curve values.
//!
//! A second group scales the *flat* Line 2 composition + availability solve,
//! which exercises the sharded frontier and the row-parallel kernels on a
//! state space large enough (8129 states) to clear the work thresholds.

use arcade_core::{Analysis, CompiledModel, ComposerOptions, ExecOptions, LumpingMode};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::{self, grids};
use watertreatment::{facility, strategies, Line};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_survivability_sweep(c: &mut Criterion) {
    let times = grids::fig8_9();

    // The sweep is deterministic: every thread count must reproduce the
    // serial curves exactly before it is worth timing.
    let (reference, _) =
        experiments::fig8_9_survivability_line2_with(&times, ExecOptions::serial())
            .expect("paper sweep runs");
    for threads in THREAD_COUNTS {
        let (fig8, _) = experiments::fig8_9_survivability_line2_with(
            &times,
            ExecOptions::with_threads(threads),
        )
        .expect("paper sweep runs");
        assert_eq!(
            fig8, reference,
            "sweep must not depend on {threads} threads"
        );
    }

    let mut group = c.benchmark_group("compositional_parallel_survivability_sweep");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("fig8_9_sweep/threads_{threads}"), |b| {
            b.iter(|| {
                experiments::fig8_9_survivability_line2_with(
                    &times,
                    ExecOptions::with_threads(threads),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_flat_composition(c: &mut Criterion) {
    let model = facility::line_model(Line::Line2, &strategies::frf(1)).expect("paper model");
    let mut group = c.benchmark_group("compositional_parallel_flat_frontier");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        let options = ComposerOptions {
            lumping: LumpingMode::Disabled,
            exec: ExecOptions::with_threads(threads),
            ..Default::default()
        };
        group.bench_function(format!("flat_compose_solve/threads_{threads}"), |b| {
            b.iter(|| {
                let compiled = CompiledModel::compile_with(&model, options).unwrap();
                let analysis = Analysis::from_compiled(&model, compiled);
                analysis.steady_state_availability().unwrap()
            })
        });
    }
    group.finish();
}

fn compositional_parallel(c: &mut Criterion) {
    bench_survivability_sweep(c);
    bench_flat_composition(c);
}

criterion_group!(benches, compositional_parallel);
criterion_main!(benches);
