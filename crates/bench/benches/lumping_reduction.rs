//! Lumping reduction: refinement cost and end-to-end solver speedup.
//!
//! Prints the pre/post-lumping state-space sizes for the paper's Line 1 and
//! Line 2 models, then times three pipelines per model:
//!
//! * `compose_solve_flat`   — compose and solve steady state on the flat chain;
//! * `compose_lump_solve`   — compose, lump, solve on the quotient (the
//!   default pipeline since lumping landed);
//! * `lump_only`            — the refinement itself on a pre-composed chain.
//!
//! The acceptance criterion for the lumping subsystem is that
//! `compose_lump_solve` beats `compose_solve_flat` end to end on at least one
//! paper model; in practice the quotients are 2–3 orders of magnitude smaller
//! and every transient/steady-state measure gets faster.

use arcade_core::{Analysis, CompiledModel, ComposerOptions, LumpingMode};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::{facility, strategies, Line};

fn flat_options() -> ComposerOptions {
    ComposerOptions {
        lumping: LumpingMode::Disabled,
        ..Default::default()
    }
}

fn lumped_options() -> ComposerOptions {
    ComposerOptions {
        lumping: LumpingMode::Exact,
        ..Default::default()
    }
}

fn print_reduction_table() {
    println!("\n===== lumping reduction (states / transitions) =====");
    println!("model            flat                lumped");
    for (line, spec) in [
        (Line::Line1, strategies::dedicated()),
        (Line::Line1, strategies::frf(1)),
        (Line::Line2, strategies::dedicated()),
        (Line::Line2, strategies::frf(1)),
        (Line::Line2, strategies::fff(2)),
    ] {
        let model = facility::line_model(line, &spec).expect("paper model builds");
        let compiled =
            CompiledModel::compile_with(&model, lumped_options()).expect("paper model compiles");
        let stats = compiled.stats();
        println!(
            "{:<7}{:<9} {:>8} / {:<9} {:>6} / {:<6}",
            line.id(),
            spec.label,
            stats.num_states,
            stats.num_transitions,
            stats.lumped_states.expect("lumping enabled"),
            stats.lumped_transitions.expect("lumping enabled"),
        );
    }
}

fn bench_line(c: &mut Criterion, line: Line, spec: watertreatment::StrategySpec) {
    let model = facility::line_model(line, &spec).expect("paper model builds");
    let label = format!("{}_{}", line.id(), spec.label);

    let mut group = c.benchmark_group("lumping_reduction");
    group.sample_size(10);

    group.bench_function(format!("{label}/compose_solve_flat"), |b| {
        b.iter(|| {
            let compiled = CompiledModel::compile_with(&model, flat_options()).unwrap();
            let analysis = Analysis::from_compiled(&model, compiled);
            analysis.steady_state_availability().unwrap()
        })
    });

    group.bench_function(format!("{label}/compose_lump_solve"), |b| {
        b.iter(|| {
            let compiled = CompiledModel::compile_with(&model, lumped_options()).unwrap();
            let analysis = Analysis::from_compiled(&model, compiled);
            analysis.steady_state_availability().unwrap()
        })
    });

    let precomposed = CompiledModel::compile_with(&model, flat_options()).unwrap();
    group.bench_function(format!("{label}/lump_only"), |b| {
        b.iter(|| precomposed.lump().unwrap().num_blocks())
    });

    group.finish();
}

/// The paper's heavy measure: a full survivability curve (Figs. 8/9) from
/// composition to the last time point, flat vs. compose+lump+solve.
fn bench_survivability_pipeline(c: &mut Criterion, line: Line, spec: watertreatment::StrategySpec) {
    use watertreatment::experiments::{grids, service_levels};

    let model = facility::line_model(line, &spec).expect("paper model builds");
    let disaster = model
        .disaster(facility::DISASTER_LINE2_MIXED)
        .expect("disaster 2 is defined for line 2");
    let times = grids::fig8_9();
    let label = format!("{}_{}", line.id(), spec.label);

    let mut group = c.benchmark_group("lumping_survivability_curve");
    group.sample_size(10);
    group.bench_function(format!("{label}/flat"), |b| {
        b.iter(|| {
            let compiled = CompiledModel::compile_with(&model, flat_options()).unwrap();
            let analysis = Analysis::from_compiled(&model, compiled);
            analysis
                .survivability_curve(disaster, service_levels::LINE2_X1, &times)
                .unwrap()
        })
    });
    group.bench_function(format!("{label}/compose_lump_solve"), |b| {
        b.iter(|| {
            let compiled = CompiledModel::compile_with(&model, lumped_options()).unwrap();
            let analysis = Analysis::from_compiled(&model, compiled);
            analysis
                .survivability_curve(disaster, service_levels::LINE2_X1, &times)
                .unwrap()
        })
    });
    group.finish();
}

fn lumping_reduction(c: &mut Criterion) {
    print_reduction_table();
    bench_line(c, Line::Line2, strategies::frf(1));
    bench_line(c, Line::Line1, strategies::frf(1));
    bench_survivability_pipeline(c, Line::Line2, strategies::frf(1));
    bench_survivability_pipeline(c, Line::Line2, strategies::fff(2));
}

criterion_group!(benches, lumping_reduction);
criterion_main!(benches);
