//! Micro-benchmarks of the numerical engine underneath the case study:
//! Fox–Glynn weights, transient analysis, bounded reachability, steady-state
//! solves, SpMV kernels (blocked vs unblocked CSR, Kronecker-sum apply) and
//! Monte-Carlo simulation throughput.

use arcade_core::{CompiledModel, FacilityAnalysis};
use arcade_sim::{SimulationOptions, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use ctmc::{
    ExecOptions, FoxGlynn, LinearOperator, SteadyStateMethod, SteadyStateSolver, TransientSolver,
};
use watertreatment::{facility, strategies, Line};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Asserts two vectors are bit-identical — every SpMV gate below proves its
/// thread-count determinism contract before any timing runs.
fn assert_bit_identical(reference: &[f64], candidate: &[f64], what: &str) {
    assert_eq!(reference.len(), candidate.len(), "{what}: length");
    for (index, (a, b)) in reference.iter().zip(candidate.iter()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{what}: component {index} differs ({a} vs {b})"
        );
    }
}

fn engine_benchmarks(c: &mut Criterion) {
    let model = facility::line_model(Line::Line2, &strategies::frf(1)).unwrap();
    let compiled = CompiledModel::compile(&model).unwrap();
    let chain = compiled.chain();

    let mut group = c.benchmark_group("engine");
    group.sample_size(20);

    group.bench_function("fox_glynn_lambda_1e3", |b| {
        b.iter(|| FoxGlynn::new(1000.0, 1e-12).unwrap().len())
    });
    group.bench_function("fox_glynn_lambda_1e5", |b| {
        b.iter(|| FoxGlynn::new(100_000.0, 1e-10).unwrap().len())
    });

    group.bench_function("transient_line2_frf1_t100", |b| {
        b.iter(|| TransientSolver::new(chain).probabilities_at(100.0).unwrap())
    });

    // The CSR→CSC counting-pass transpose (used by Gauss–Seidel/Jacobi setup
    // and the backward reachability kernels), on the flat Line 2 FRF chain so
    // the matrix is large enough to be representative.
    let flat = CompiledModel::compile_with(
        &model,
        arcade_core::ComposerOptions {
            lumping: arcade_core::LumpingMode::Disabled,
            ..Default::default()
        },
    )
    .unwrap();
    group.bench_function("transpose_line2_frf1_flat", |b| {
        let rates = flat.chain().rate_matrix();
        b.iter(|| rates.transpose().num_entries())
    });

    // SpMV gates. Determinism first: the blocked kernel and every sharded
    // thread count must reproduce the plain serial scatter bit for bit.
    {
        let rates = flat.chain().rate_matrix();
        let n = rates.num_rows();
        let x: Vec<f64> = (0..n).map(|s| 1.0 / (1.0 + s as f64)).collect();
        let mut reference = vec![0.0; n];
        rates.left_multiply(&x, &mut reference).unwrap();
        let mut blocked = vec![0.0; n];
        rates.left_multiply_blocked(&x, &mut blocked).unwrap();
        assert_bit_identical(&reference, &blocked, "blocked left multiply");
        let mut right_reference = vec![0.0; n];
        rates.right_multiply(&x, &mut right_reference).unwrap();
        for threads in THREAD_COUNTS {
            let exec = ExecOptions::with_threads(threads);
            let mut sharded = vec![0.0; n];
            rates.left_multiply_exec(&x, &mut sharded, &exec).unwrap();
            assert_bit_identical(&reference, &sharded, "sharded left multiply");
            let mut right_sharded = vec![0.0; n];
            rates
                .right_multiply_exec(&x, &mut right_sharded, &exec)
                .unwrap();
            assert_bit_identical(&right_reference, &right_sharded, "sharded right multiply");
        }

        group.bench_function("spmv_left_unblocked_line2_frf1_flat", |b| {
            let mut y = vec![0.0; n];
            b.iter(|| rates.left_multiply(&x, &mut y).unwrap())
        });
        group.bench_function("spmv_left_blocked_line2_frf1_flat", |b| {
            let mut y = vec![0.0; n];
            b.iter(|| rates.left_multiply_blocked(&x, &mut y).unwrap())
        });
        group.bench_function("spmv_right_line2_frf1_flat", |b| {
            let mut y = vec![0.0; n];
            b.iter(|| rates.right_multiply(&x, &mut y).unwrap())
        });
    }

    // Kronecker-sum apply on the FRF-1 × FRF-1 facility product
    // (449 × 257 = 115,393 joint states), matrix-free: the operator is the
    // joint generator that the steady-state tiers apply without ever
    // materialising it.
    {
        let facility_model =
            facility::facility_model(&strategies::frf(1), &strategies::frf(1)).unwrap();
        let analysis = FacilityAnalysis::new(&facility_model).unwrap();
        let product = analysis.quotient_product().unwrap();
        let operator = product.operator();
        let n = operator.num_rows();
        let x: Vec<f64> = (0..n).map(|s| 1.0 / (1.0 + s as f64)).collect();
        let serial = ExecOptions::serial();
        let mut reference = vec![0.0; n];
        operator
            .left_multiply_exec(&x, &mut reference, &serial)
            .unwrap();
        for threads in THREAD_COUNTS {
            let mut sharded = vec![0.0; n];
            operator
                .left_multiply_exec(&x, &mut sharded, &ExecOptions::with_threads(threads))
                .unwrap();
            assert_bit_identical(&reference, &sharded, "Kronecker-sum apply");
        }
        group.bench_function("kronecker_sum_apply_frf1_frf1", |b| {
            let mut y = vec![0.0; n];
            b.iter(|| operator.left_multiply_exec(&x, &mut y, &serial).unwrap())
        });
    }
    group.bench_function("bounded_reachability_line2_frf1", |b| {
        let goal = compiled.service_at_least_mask(1.0);
        let safe = vec![true; chain.num_states()];
        b.iter(|| {
            TransientSolver::new(chain)
                .bounded_until(&safe, &goal, 50.0)
                .unwrap()
        })
    });

    // Gauss-Seidel is the production solver; the Jacobi and power iterations are
    // exercised by the unit and property tests but converge too slowly on this
    // stiff chain (repair rates ~10^4 times the failure rates) to benchmark.
    group.bench_function(
        format!("steady_state_{:?}", SteadyStateMethod::GaussSeidel),
        |b| {
            b.iter(|| {
                SteadyStateSolver::new(chain)
                    .method(SteadyStateMethod::GaussSeidel)
                    .solve()
                    .unwrap()
            })
        },
    );

    group.bench_function("simulation_1000_replications_reliability", |b| {
        let simulator = Simulator::new(&model).unwrap();
        let options = SimulationOptions {
            replications: 1000,
            seed: 1,
            ..SimulationOptions::with_threads(4)
        };
        b.iter(|| simulator.reliability(100.0, &options).unwrap())
    });

    group.finish();
}

criterion_group!(benches, engine_benchmarks);
criterion_main!(benches);
