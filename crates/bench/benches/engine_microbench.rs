//! Micro-benchmarks of the numerical engine underneath the case study:
//! Fox–Glynn weights, transient analysis, bounded reachability, steady-state
//! solves and Monte-Carlo simulation throughput.

use arcade_core::CompiledModel;
use arcade_sim::{SimulationOptions, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use ctmc::{FoxGlynn, SteadyStateMethod, SteadyStateSolver, TransientSolver};
use watertreatment::{facility, strategies, Line};

fn engine_benchmarks(c: &mut Criterion) {
    let model = facility::line_model(Line::Line2, &strategies::frf(1)).unwrap();
    let compiled = CompiledModel::compile(&model).unwrap();
    let chain = compiled.chain();

    let mut group = c.benchmark_group("engine");
    group.sample_size(20);

    group.bench_function("fox_glynn_lambda_1e3", |b| {
        b.iter(|| FoxGlynn::new(1000.0, 1e-12).unwrap().len())
    });
    group.bench_function("fox_glynn_lambda_1e5", |b| {
        b.iter(|| FoxGlynn::new(100_000.0, 1e-10).unwrap().len())
    });

    group.bench_function("transient_line2_frf1_t100", |b| {
        b.iter(|| TransientSolver::new(chain).probabilities_at(100.0).unwrap())
    });

    // The CSR→CSC counting-pass transpose (used by Gauss–Seidel/Jacobi setup
    // and the backward reachability kernels), on the flat Line 2 FRF chain so
    // the matrix is large enough to be representative.
    let flat = CompiledModel::compile_with(
        &model,
        arcade_core::ComposerOptions {
            lumping: arcade_core::LumpingMode::Disabled,
            ..Default::default()
        },
    )
    .unwrap();
    group.bench_function("transpose_line2_frf1_flat", |b| {
        let rates = flat.chain().rate_matrix();
        b.iter(|| rates.transpose().num_entries())
    });
    group.bench_function("bounded_reachability_line2_frf1", |b| {
        let goal = compiled.service_at_least_mask(1.0);
        let safe = vec![true; chain.num_states()];
        b.iter(|| {
            TransientSolver::new(chain)
                .bounded_until(&safe, &goal, 50.0)
                .unwrap()
        })
    });

    // Gauss-Seidel is the production solver; the Jacobi and power iterations are
    // exercised by the unit and property tests but converge too slowly on this
    // stiff chain (repair rates ~10^4 times the failure rates) to benchmark.
    group.bench_function(
        format!("steady_state_{:?}", SteadyStateMethod::GaussSeidel),
        |b| {
            b.iter(|| {
                SteadyStateSolver::new(chain)
                    .method(SteadyStateMethod::GaussSeidel)
                    .solve()
                    .unwrap()
            })
        },
    );

    group.bench_function("simulation_1000_replications_reliability", |b| {
        let simulator = Simulator::new(&model).unwrap();
        let options = SimulationOptions {
            replications: 1000,
            seed: 1,
            threads: 4,
        };
        b.iter(|| simulator.reliability(100.0, &options).unwrap())
    });

    group.finish();
}

criterion_group!(benches, engine_benchmarks);
criterion_main!(benches);
