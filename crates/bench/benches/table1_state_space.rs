//! Table 1: state-space sizes for every repair strategy and both lines.
//!
//! Regenerates the table (printed to stdout) and benchmarks the state-space
//! composition itself for representative configurations.

use arcade_core::{CompiledModel, ComposerOptions, LumpingMode};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::{experiments, facility, strategies, Line};

fn regenerate_and_bench(c: &mut Criterion) {
    let rows = experiments::table1().expect("table 1 regenerates");
    wt_bench::print_table(
        "Table 1 (state-space sizes)",
        &experiments::format_table1(&rows),
    );
    wt_bench::print_table(
        "Table 1 (paper reference)",
        &experiments::format_table1(&experiments::table1_paper_reference()),
    );

    let mut group = c.benchmark_group("table1_composition");
    group.sample_size(10);
    for (line, spec) in [
        (Line::Line1, strategies::dedicated()),
        (Line::Line2, strategies::dedicated()),
        (Line::Line2, strategies::frf(1)),
        (Line::Line2, strategies::fff(2)),
    ] {
        let model = facility::line_model(line, &spec).unwrap();
        // Table 1 reports flat product sizes, so this benchmark times the
        // flat composition; the compositional_vs_flat bench covers the
        // default pipeline's canonical exploration.
        let options = ComposerOptions {
            lumping: LumpingMode::Exact,
            ..Default::default()
        };
        group.bench_function(format!("{}_{}", line.id(), spec.label), |b| {
            b.iter(|| {
                CompiledModel::compile_with(&model, options)
                    .unwrap()
                    .stats()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
