//! k-line facility scale-out: the reduction-ladder tiers at 1 and 4 threads.
//!
//! Pins the three evaluation tiers of the k-line sweep
//! (`wt-experiments facility --k ...`):
//!
//! * **counts ladder** — reading the flat / product / orbit rungs off the
//!   per-line quotients for k ∈ {2, 3, 4, 8} twin DED banks, nothing
//!   materialised (the k = 8 orbit bound is C(103, 8) ≈ 2.4 × 10¹¹);
//! * **orbit enumeration** — the availability of the `ded^4` bank walked
//!   lazily over its C(99, 4) = 3,764,376 canonical multisets under the
//!   stationary product measure, the tier that replaces an 84,934,656-state
//!   product materialisation;
//! * **joint solve** — the `ded^2` bank solved on its 4,656-orbit fold, the
//!   tier below the materialisation cap.
//!
//! Every thread count must produce bit-identical results before timing —
//! the sweep asserts this up front, mirroring the other benches.

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::ORBIT_ENUMERATION_CAP;
use watertreatment::ModelSpec;

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn options(threads: usize) -> ComposerOptions {
    ComposerOptions {
        exec: ExecOptions::with_threads(threads),
        ..ComposerOptions::default()
    }
}

fn bank_analysis(spec: &str, threads: usize) -> (arcade_core::FacilityModel, usize) {
    let spec = ModelSpec::parse(spec).unwrap();
    let model = spec.facility_model().unwrap().expect("facility spec");
    let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
    let stats = analysis.stats();
    drop(analysis);
    (model, stats.joint_blocks)
}

fn bench_counts_ladder(c: &mut Criterion) {
    // Determinism gate: the ladder counts are pure state-space arithmetic
    // and must be identical at every thread count.
    let counts = |threads: usize| -> Vec<(usize, usize, Option<usize>)> {
        [2usize, 3, 4, 8]
            .iter()
            .map(|&k| {
                let spec = ModelSpec::parse(&format!("facility/ded^{k}")).unwrap();
                let model = spec.facility_model().unwrap().unwrap();
                let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
                let stats = analysis.stats();
                (k, stats.joint_blocks, stats.orbit_blocks)
            })
            .collect()
    };
    let reference = counts(1);
    assert_eq!(reference[0].1, 96 * 96);
    assert_eq!(reference[0].2, Some(96 * 97 / 2));
    assert_eq!(reference[2].1, 84_934_656);
    assert_eq!(reference[2].2, Some(3_764_376), "C(99, 4)");
    assert_eq!(reference[3].2, Some(237_762_021_420), "C(103, 8)");
    for threads in THREAD_COUNTS {
        assert_eq!(counts(threads), reference, "{threads} threads");
    }

    let mut group = c.benchmark_group("kline_counts_ladder");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("ded_k2348/threads_{threads}"), |b| {
            b.iter(|| counts(threads).len())
        });
    }
    group.finish();
}

fn bench_orbit_enumeration(c: &mut Criterion) {
    // Determinism gate: the k = 4 enumeration is strictly sequential over
    // deterministic per-group solves, so the availability must be
    // bit-identical at every thread count.
    let enumerate = |threads: usize| {
        let (model, joint_blocks) = bank_analysis("facility/ded^4", threads);
        assert_eq!(joint_blocks, 84_934_656);
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
        let orbit = analysis.orbit_availability(ORBIT_ENUMERATION_CAP).unwrap();
        assert_eq!(orbit.orbit_bound, 3_764_376);
        assert_eq!(orbit.orbits_explored, 3_764_376);
        assert!((orbit.total_mass - 1.0).abs() < 1e-9);
        orbit.availability
    };
    let reference = enumerate(1);
    for threads in THREAD_COUNTS {
        assert_eq!(
            enumerate(threads).to_bits(),
            reference.to_bits(),
            "{threads} threads"
        );
    }

    let mut group = c.benchmark_group("kline_orbit_enumeration");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("ded_k4/threads_{threads}"), |b| {
            b.iter(|| enumerate(threads))
        });
    }
    group.finish();
}

fn bench_joint_solve_tier(c: &mut Criterion) {
    // Determinism gate for the joint-solve tier on the twin-pair fold.
    let solve = |threads: usize| {
        let spec = ModelSpec::parse("facility/ded^2").unwrap();
        let model = spec.facility_model().unwrap().unwrap();
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
        let joint = analysis.joint_steady_state_availability().unwrap();
        assert_eq!(joint.solved_states, 96 * 97 / 2);
        assert!(joint.residual < 1e-9, "residual {}", joint.residual);
        joint.availability
    };
    let reference = solve(1);
    for threads in THREAD_COUNTS {
        assert_eq!(
            solve(threads).to_bits(),
            reference.to_bits(),
            "{threads} threads"
        );
    }

    let mut group = c.benchmark_group("kline_joint_solve");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("ded_k2/threads_{threads}"), |b| {
            b.iter(|| solve(threads))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_counts_ladder,
    bench_orbit_enumeration,
    bench_joint_solve_tier
);
criterion_main!(benches);
