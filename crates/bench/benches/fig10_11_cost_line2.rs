//! Figs. 10 and 11: instantaneous and accumulated repair cost of Line 2 after
//! Disaster 2, for FFF-1 / FFF-2 / FRF-1 / FRF-2.

use arcade_core::Analysis;
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::{self, grids};
use watertreatment::{facility, strategies, Line};

fn regenerate_and_bench(c: &mut Criterion) {
    let (fig10, fig11) = experiments::fig10_11_cost_line2(&grids::step_grid(0.0, 50.0, 2.5))
        .expect("figs 10-11 regenerate");
    wt_bench::print_figure(&fig10);
    wt_bench::print_figure(&fig11);

    let model = facility::line_model(Line::Line2, &strategies::frf(2)).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let disaster = model.disaster(facility::DISASTER_LINE2_MIXED).unwrap();
    let mut group = c.benchmark_group("fig10_11_costs");
    group.sample_size(10);
    group.bench_function("line2_frf2_instantaneous_cost_50h", |b| {
        b.iter(|| {
            analysis
                .instantaneous_cost_curve(Some(disaster), &[50.0])
                .unwrap()
        })
    });
    group.bench_function("line2_frf2_accumulated_cost_50h", |b| {
        b.iter(|| {
            analysis
                .accumulated_cost_curve(Some(disaster), &[50.0])
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
