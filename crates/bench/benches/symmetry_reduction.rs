//! Isomorphic-subtree symmetry engine: orbit-fold and certificate timings.
//!
//! Tracks the two reductions the symmetry subsystem adds, at 1 and 4
//! threads:
//!
//! * **orbit materialise** — the twin Line 2 facility under FRF-1: two
//!   identical 257-block line chains fold from 66,049 joint tuples to
//!   33,153 sorted-pair orbit representatives, materialised through the
//!   sharded representative-row enumeration;
//! * **orbit availability** — the full twin availability validation: the
//!   orbit chain's stationary solve (warm started from the aggregated
//!   product form) plus the matrix-free Kronecker residual of its uniform
//!   expansion;
//! * **minimality certificate** — the exact-lumping pass proving the
//!   paper's DED×DED product (15,360 blocks) carries no cross-line symmetry
//!   for the facility measures.
//!
//! Every thread count must produce bit-identical results before timing —
//! the sweep asserts this up front, mirroring the other benches.

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis};
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::{facility, strategies, Line};

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn options(threads: usize) -> ComposerOptions {
    ComposerOptions {
        exec: ExecOptions::with_threads(threads),
        ..ComposerOptions::default()
    }
}

fn orbit_chain(threads: usize) -> ctmc::Ctmc {
    let model = facility::twin_facility(Line::Line2, &strategies::frf(1)).unwrap();
    let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
    let product = analysis.quotient_product().unwrap();
    let orbit = product.orbit().expect("twin lines are interchangeable");
    orbit
        .materialize(&product, &ExecOptions::with_threads(threads))
        .unwrap()
}

fn bench_orbit_materialisation(c: &mut Criterion) {
    // Determinism gate: the orbit chain must be identical for every thread
    // count before anything is timed.
    let reference = orbit_chain(1);
    assert_eq!(reference.num_states(), 257 * 258 / 2);
    for threads in THREAD_COUNTS {
        assert_eq!(orbit_chain(threads), reference, "{threads} threads");
    }

    let mut group = c.benchmark_group("symmetry_orbit_materialise");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("twin_frf1/threads_{threads}"), |b| {
            b.iter(|| orbit_chain(threads).num_transitions())
        });
    }
    group.finish();
}

fn bench_orbit_availability(c: &mut Criterion) {
    // Determinism gate for the orbit-level availability validation.
    let availability = |threads: usize| {
        let model = facility::twin_facility(Line::Line2, &strategies::frf(1)).unwrap();
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
        let joint = analysis.joint_steady_state_availability().unwrap();
        assert_eq!(joint.solved_states, 257 * 258 / 2);
        assert!(joint.residual < 1e-9, "residual {}", joint.residual);
        joint.availability
    };
    let reference = availability(1);
    for threads in THREAD_COUNTS {
        assert_eq!(
            availability(threads).to_bits(),
            reference.to_bits(),
            "{threads} threads"
        );
    }

    let mut group = c.benchmark_group("symmetry_orbit_availability");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("twin_frf1/threads_{threads}"), |b| {
            b.iter(|| availability(threads))
        });
    }
    group.finish();
}

fn bench_minimality_certificate(c: &mut Criterion) {
    // Determinism gate: the certificate is a full partition-refinement pass;
    // its block count must not depend on the thread count.
    let certificate = |threads: usize| {
        let model =
            facility::facility_model(&strategies::dedicated(), &strategies::dedicated()).unwrap();
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
        analysis.joint_reduction().unwrap()
    };
    let reference = certificate(1);
    assert_eq!(reference.product_blocks, 160 * 96);
    assert_eq!(reference.exact_blocks, reference.solver_blocks);
    for threads in THREAD_COUNTS {
        assert_eq!(certificate(threads), reference, "{threads} threads");
    }

    let mut group = c.benchmark_group("symmetry_minimality_certificate");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("ded_pair/threads_{threads}"), |b| {
            b.iter(|| certificate(threads).exact_blocks)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_orbit_materialisation,
    bench_orbit_availability,
    bench_minimality_certificate
);
criterion_main!(benches);
