//! Figs. 4 and 5: survivability of Line 1 after Disaster 1 (all pumps failed),
//! recovery to service intervals X1 and X2, for DED / FRF-1 / FRF-2.

use arcade_core::Analysis;
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::{self, grids, service_levels};
use watertreatment::{facility, strategies, Line};

fn regenerate_and_bench(c: &mut Criterion) {
    // A coarser grid than `grids::fig4_to_6()` keeps the bench run short; the
    // full-resolution curves come from `wt-experiments fig4 fig5`.
    let grid = grids::step_grid(0.0, 4.5, 0.45);
    let (fig4, fig5) = experiments::fig4_5_survivability_line1(&grid).expect("figs 4-5 regenerate");
    wt_bench::print_figure(&fig4);
    wt_bench::print_figure(&fig5);

    // Benchmark one survivability evaluation on the large Line 1 / FRF-1 chain.
    let model = facility::line_model(Line::Line1, &strategies::frf(1)).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let disaster = model.disaster(facility::DISASTER_ALL_PUMPS).unwrap();
    let mut group = c.benchmark_group("fig4_5_survivability");
    group.sample_size(10);
    group.bench_function("line1_frf1_x1_at_4_5h", |b| {
        b.iter(|| {
            analysis
                .survivability(disaster, service_levels::LINE1_X1, 4.5)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
