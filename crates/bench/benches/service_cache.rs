//! Analysis-service cache: cold build-and-solve vs warm repeats.
//!
//! Quantifies the three tiers the daemon answers from, on the acceptance
//! query (DED × DED facility availability):
//!
//! * **cold** — a fresh [`AnalysisService`] per iteration: compile the
//!   facility quotient, solve its stationary distribution, answer;
//! * **warm** — the same service answering the identical query again: a
//!   spec-cache hit plus the memoised solve (this must be ≥10× faster than
//!   cold — the service tests assert it, this bench measures it);
//! * **warm_start** — a rate-perturbed sibling (`@1.02`) after the nominal
//!   solve: full compile, but Gauss–Seidel warm-started from the sibling's
//!   stationary vector.
//!
//! Before timing, the sweep asserts warm replies are bit-identical to cold
//! ones — the cache must never change an answer, only its latency.

use arcade_core::ExecOptions;
use arcade_server::{AnalysisService, Request, Response};
use criterion::{criterion_group, criterion_main, Criterion};

const FACILITY_QUERY: &str = "facility/ded+ded";

fn availability_request(model: &str) -> Request {
    Request::Availability {
        model: model.to_string(),
    }
}

fn answer(service: &AnalysisService, model: &str) -> Response {
    let response = service.handle(&availability_request(model));
    assert!(
        matches!(response, Response::Ok(_)),
        "query {model} failed: {response:?}"
    );
    response
}

fn bench_service_cache(c: &mut Criterion) {
    let exec = ExecOptions::with_threads(1);

    // Determinism gate: a warm repeat answers bit-identically to the cold
    // query it memoises.
    let service = AnalysisService::new(exec);
    let cold_reply = answer(&service, FACILITY_QUERY);
    assert_eq!(
        answer(&service, FACILITY_QUERY),
        cold_reply,
        "the warm cache must replay the cold answer bit-for-bit"
    );

    let mut group = c.benchmark_group("service_cache");
    group.sample_size(10);

    group.bench_function("facility_ded_ded/cold", |b| {
        b.iter(|| {
            let service = AnalysisService::new(exec);
            answer(&service, FACILITY_QUERY)
        });
    });

    let warm_service = AnalysisService::new(exec);
    answer(&warm_service, FACILITY_QUERY);
    group.bench_function("facility_ded_ded/warm", |b| {
        b.iter(|| answer(&warm_service, FACILITY_QUERY));
    });

    // The warm-started tier: each iteration re-solves a perturbed sibling's
    // chain with the nominal solution as the initial guess. A fresh service
    // per iteration would re-compile; instead hold the artifacts and time
    // the solve the way the service runs it.
    let donor_service = AnalysisService::new(exec);
    answer(&donor_service, "line2/ded");
    group.bench_function("line2_ded_perturbed/warm_start", |b| {
        let mut scale_index = 0u32;
        b.iter(|| {
            // A fresh spec each iteration keeps the solve honest (the
            // memoised result of a repeated spec would skip it).
            scale_index += 1;
            let spec = format!("line2/ded@1.{:04}", 1000 + scale_index % 500);
            answer(&donor_service, &spec)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_service_cache);
criterion_main!(benches);
