//! Figs. 8 and 9: survivability of Line 2 after Disaster 2, recovery to
//! service intervals X1 and X3, for all five strategies.

use arcade_core::Analysis;
use criterion::{criterion_group, criterion_main, Criterion};
use watertreatment::experiments::{self, grids, service_levels};
use watertreatment::{facility, strategies, Line};

fn regenerate_and_bench(c: &mut Criterion) {
    let (fig8, fig9) = experiments::fig8_9_survivability_line2(&grids::step_grid(0.0, 100.0, 5.0))
        .expect("figs 8-9 regenerate");
    wt_bench::print_figure(&fig8);
    wt_bench::print_figure(&fig9);

    let model = facility::line_model(Line::Line2, &strategies::fff(1)).unwrap();
    let analysis = Analysis::new(&model).unwrap();
    let disaster = model.disaster(facility::DISASTER_LINE2_MIXED).unwrap();
    let mut group = c.benchmark_group("fig8_9_survivability");
    group.sample_size(10);
    group.bench_function("line2_fff1_x1_at_100h", |b| {
        b.iter(|| {
            analysis
                .survivability(disaster, service_levels::LINE2_X1, 100.0)
                .unwrap()
        })
    });
    group.bench_function("line2_fff1_x3_at_100h", |b| {
        b.iter(|| {
            analysis
                .survivability(disaster, service_levels::LINE2_X3, 100.0)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
