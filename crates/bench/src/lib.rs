//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper (printing
//! the same rows/series the paper reports) and then times a representative
//! computational kernel with Criterion.

use watertreatment::experiments::Figure;

/// Prints a regenerated figure as a data table, prefixed so it is easy to find
/// in `cargo bench` output.
pub fn print_figure(figure: &Figure) {
    println!("\n===== reproduced {} — {} =====", figure.id, figure.title);
    println!("{}", watertreatment::experiments::format_figure(figure));
}

/// Prints a regenerated table with a banner.
pub fn print_table(title: &str, body: &str) {
    println!("\n===== reproduced {title} =====");
    println!("{body}");
}
