//! Matrix-free linear operators for the exec SpMV kernels.
//!
//! The iterative solvers in this crate only ever touch a matrix through two
//! kernels: `y = x * A` (left multiply, distribution propagation) and
//! `y = A * x` (right multiply, value backpropagation). [`LinearOperator`]
//! abstracts exactly those two kernels plus the dimensions, so a structured
//! matrix — such as the Kronecker sum of per-line quotient generators built
//! by `arcade_lumping::product` — can feed the same sharded, bit-deterministic
//! code paths without ever materialising its entries.
//!
//! Implementations must uphold the workspace determinism contract: for a
//! fixed input, the output is bit-identical for every thread count of
//! [`ExecOptions`]. The [`SparseMatrix`] implementation delegates to the
//! row/column-sharded CSR kernels that already guarantee this.

use crate::error::CtmcError;
use crate::exec::ExecOptions;
use crate::sparse::SparseMatrix;

/// A linear operator exposing the two sharded SpMV kernels the solvers use.
///
/// `left_multiply_exec` computes `y = x * A` (a row vector times the
/// operator); `right_multiply_exec` computes `y = A * x` (the operator times
/// a column vector). Both must be bit-identical for every thread count.
pub trait LinearOperator {
    /// Number of rows (the length of `x` in `x * A` and of `y` in `A * x`).
    fn num_rows(&self) -> usize;

    /// Number of columns (the length of `y` in `x * A` and of `x` in `A * x`).
    fn num_cols(&self) -> usize;

    /// Computes `y = x * A` on the workers of `exec`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != num_rows()` or
    /// `y.len() != num_cols()`.
    fn left_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError>;

    /// Computes `y = A * x` on the workers of `exec`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != num_cols()` or
    /// `y.len() != num_rows()`.
    fn right_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError>;
}

impl LinearOperator for SparseMatrix {
    fn num_rows(&self) -> usize {
        SparseMatrix::num_rows(self)
    }

    fn num_cols(&self) -> usize {
        SparseMatrix::num_cols(self)
    }

    fn left_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError> {
        SparseMatrix::left_multiply_exec(self, x, y, exec)
    }

    fn right_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError> {
        SparseMatrix::right_multiply_exec(self, x, y, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseMatrixBuilder;

    /// Generic SpMV through the trait object must match the inherent kernels.
    #[test]
    fn sparse_matrix_implements_the_operator_kernels() {
        let mut b = SparseMatrixBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        let m = b.build();
        let op: &dyn LinearOperator = &m;
        assert_eq!(op.num_rows(), 2);
        assert_eq!(op.num_cols(), 3);

        let exec = ExecOptions::serial();
        let mut left = vec![0.0; 3];
        op.left_multiply_exec(&[1.0, 2.0], &mut left, &exec)
            .unwrap();
        assert_eq!(left, vec![1.0, 6.0, 2.0]);

        let mut right = vec![0.0; 2];
        op.right_multiply_exec(&[1.0, 1.0, 1.0], &mut right, &exec)
            .unwrap();
        assert_eq!(right, vec![3.0, 3.0]);

        assert!(op.left_multiply_exec(&[1.0], &mut left, &exec).is_err());
        assert!(op.right_multiply_exec(&[1.0], &mut right, &exec).is_err());
    }
}
