//! Sparse continuous-time Markov chain (CTMC) numerics.
//!
//! This crate provides the numerical substrate used by the Arcade dependability
//! framework: a compressed sparse row matrix, labelled CTMCs, transient analysis
//! via uniformisation with Fox–Glynn Poisson weights, time-bounded reachability,
//! steady-state solvers (Gauss–Seidel, Jacobi, power iteration) with bottom
//! strongly-connected-component (BSCC) analysis, and Markov reward models with
//! instantaneous and accumulated expected-reward measures.
//!
//! The algorithms are the same ones used by stochastic model checkers such as
//! PRISM in CTMC mode, so the results obtained here are directly comparable to
//! the CSL/CSRL queries of the DSN 2010 water-treatment paper.
//!
//! # Example
//!
//! Build a two-state repairable component (failure rate 1/1000 per hour, repair
//! rate 1 per hour) and compute its unavailability at `t = 100` hours and in the
//! long run:
//!
//! ```
//! # use ctmc::{CtmcBuilder, TransientSolver, SteadyStateSolver};
//! # fn main() -> Result<(), ctmc::CtmcError> {
//! let mut b = CtmcBuilder::new(2);
//! b.add_transition(0, 1, 1.0 / 1000.0)?; // up -> down
//! b.add_transition(1, 0, 1.0)?;          // down -> up
//! b.set_initial_state(0)?;
//! let chain = b.build()?;
//!
//! let transient = TransientSolver::new(&chain).probabilities_at(100.0)?;
//! assert!(transient[1] < 0.01);
//!
//! let steady = SteadyStateSolver::new(&chain).solve()?;
//! assert!((steady[1] - 1.0 / 1001.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dtmc;
pub mod error;
pub mod exec;
pub mod foxglynn;
pub mod graph;
pub mod markov;
pub mod operator_steady_state;
pub mod ops;
pub mod rewards;
pub mod sparse;
pub mod steady_state;
pub mod transient;

pub use dtmc::Dtmc;
pub use error::CtmcError;
pub use exec::ExecOptions;
pub use foxglynn::FoxGlynn;
pub use graph::{bottom_sccs, reachable_from, strongly_connected_components};
pub use markov::{Ctmc, CtmcBuilder, StateIndex};
pub use operator_steady_state::{OperatorSteadyStateMethod, OperatorSteadyStateSolver};
pub use ops::LinearOperator;
pub use rewards::{RewardSolver, RewardStructure};
pub use sparse::{SparseMatrix, SparseMatrixBuilder};
pub use steady_state::{SteadyStateMethod, SteadyStateSolver};
pub use transient::{OperatorTransientSolver, TransientOptions, TransientSolver};

/// Default convergence tolerance used by the iterative solvers in this crate.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Default iteration cap for the iterative solvers in this crate.
pub const DEFAULT_MAX_ITERATIONS: usize = 1_000_000;
