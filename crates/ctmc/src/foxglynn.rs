//! Poisson probability weights for uniformisation (Fox–Glynn style).
//!
//! Uniformisation expresses the transient distribution of a CTMC as a Poisson
//! mixture of DTMC step distributions. Summing that mixture requires the
//! Poisson probabilities `psi(k; lambda)` for `k` in a finite window around the
//! mode, computed without underflow for large `lambda`. This module computes
//! the weights in log space from the mode outwards and normalises them, which
//! achieves the same numerical robustness as the classical Fox–Glynn algorithm
//! while remaining simple to audit.

use serde::{Deserialize, Serialize};

use crate::error::CtmcError;

/// Poisson weights over a truncated window `[left, right]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoxGlynn {
    /// Smallest retained number of jumps.
    pub left: usize,
    /// Largest retained number of jumps.
    pub right: usize,
    /// `weights[i]` is the Poisson probability of `left + i` jumps; the weights
    /// sum to (approximately) one.
    pub weights: Vec<f64>,
}

impl FoxGlynn {
    /// Computes the truncated Poisson distribution with rate `lambda`, keeping
    /// terms until the discarded tail mass is below `epsilon` on each side.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if `lambda` is negative or not
    /// finite, or if `epsilon` is not in `(0, 1)`.
    pub fn new(lambda: f64, epsilon: f64) -> Result<Self, CtmcError> {
        if lambda < 0.0 || !lambda.is_finite() {
            return Err(CtmcError::InvalidArgument {
                reason: format!("Poisson rate must be non-negative and finite, got {lambda}"),
            });
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CtmcError::InvalidArgument {
                reason: format!("truncation error must be in (0, 1), got {epsilon}"),
            });
        }

        if lambda == 0.0 {
            return Ok(FoxGlynn {
                left: 0,
                right: 0,
                weights: vec![1.0],
            });
        }

        // Small-lambda regime: when the probability of even a single jump,
        // `1 - e^{-lambda}`, is within the truncation budget, the window is
        // the point mass at k = 0. The log-space walk below relies on
        // `ln(lambda)` spacing between consecutive terms and can truncate the
        // entire support for tiny rates (the cutoff heuristic drops every
        // term, leaving an empty or denormal window); returning the point
        // mass keeps the truncation contract exactly.
        if 1.0 - (-lambda).exp() <= epsilon {
            return Ok(FoxGlynn {
                left: 0,
                right: 0,
                weights: vec![1.0],
            });
        }

        let mode = lambda.floor() as usize;

        // Log of the Poisson pmf at the mode, via the log-gamma function.
        let log_pmf_mode = (mode as f64) * lambda.ln() - lambda - ln_factorial(mode);

        // Walk right from the mode while the (relative) term is significant.
        let mut log_terms_right = Vec::new();
        let mut k = mode;
        let mut log_term = log_pmf_mode;
        let cutoff = log_pmf_mode + (epsilon * 1e-2).ln() - (lambda.sqrt() + 10.0).ln();
        loop {
            log_terms_right.push(log_term);
            k += 1;
            log_term += lambda.ln() - (k as f64).ln();
            if log_term < cutoff && k > mode + 2 {
                break;
            }
            if k > mode + 10_000_000 {
                break;
            }
        }
        let right = mode + log_terms_right.len() - 1;

        // Walk left from the mode.
        let mut log_terms_left = Vec::new();
        let mut log_term = log_pmf_mode;
        let mut k = mode;
        while k > 0 {
            log_term += (k as f64).ln() - lambda.ln();
            k -= 1;
            if log_term < cutoff && k + 2 < mode {
                break;
            }
            log_terms_left.push(log_term);
        }
        let left = mode - log_terms_left.len();

        // Assemble and normalise in linear space relative to the mode to avoid
        // underflow: w_k = exp(log_term - log_pmf_mode).
        let mut weights = Vec::with_capacity(log_terms_left.len() + log_terms_right.len());
        for lt in log_terms_left.iter().rev() {
            weights.push((lt - log_pmf_mode).exp());
        }
        for lt in &log_terms_right {
            weights.push((lt - log_pmf_mode).exp());
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            // The window degenerated numerically (all terms underflowed);
            // this cannot happen for the rates the guards above let through,
            // but a zeroed window must never leak into a solver.
            return Err(CtmcError::InvalidArgument {
                reason: format!(
                    "Poisson window for rate {lambda} degenerated (weight sum {total})"
                ),
            });
        }
        // total * pmf(mode) ~= 1, so dividing by total yields properly normalised
        // Poisson probabilities even when pmf(mode) itself would underflow.
        let scale = 1.0 / total;
        weights.iter_mut().for_each(|w| *w *= scale);

        Ok(FoxGlynn {
            left,
            right,
            weights,
        })
    }

    /// Total number of retained terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if no terms are retained (never the case for valid input).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The Poisson probability of exactly `k` jumps, or zero outside the window.
    pub fn weight(&self, k: usize) -> f64 {
        if k < self.left || k > self.right {
            0.0
        } else {
            self.weights[k - self.left]
        }
    }

    /// Cumulative weights: `cumulative(k)` approximates `P[N <= k]`.
    pub fn cumulative(&self, k: usize) -> f64 {
        if k < self.left {
            return 0.0;
        }
        let upto = (k - self.left + 1).min(self.weights.len());
        self.weights[..upto].iter().sum()
    }
}

/// Natural logarithm of `n!` via the Lanczos approximation of the gamma function.
fn ln_factorial(n: usize) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Lanczos approximation of `ln Gamma(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Numerical Recipes / Boost style).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_pmf_naive(k: usize, lambda: f64) -> f64 {
        let mut p = (-lambda).exp();
        for i in 1..=k {
            p *= lambda / i as f64;
        }
        p
    }

    #[test]
    fn rejects_invalid_arguments() {
        assert!(FoxGlynn::new(-1.0, 1e-10).is_err());
        assert!(FoxGlynn::new(f64::NAN, 1e-10).is_err());
        assert!(FoxGlynn::new(1.0, 0.0).is_err());
        assert!(FoxGlynn::new(1.0, 1.5).is_err());
    }

    #[test]
    fn zero_rate_is_a_point_mass() {
        let fg = FoxGlynn::new(0.0, 1e-12).unwrap();
        assert_eq!(fg.left, 0);
        assert_eq!(fg.right, 0);
        assert_eq!(fg.weights, vec![1.0]);
        assert_eq!(fg.weight(0), 1.0);
        assert_eq!(fg.weight(1), 0.0);
    }

    #[test]
    fn tiny_lambda_is_a_point_mass_at_zero() {
        // When the chance of a single jump is below the truncation budget the
        // window must be {0}, not an empty or underflowed range.
        for &lambda in &[1e-300, 1e-30, 1e-16, 1e-13] {
            let fg = FoxGlynn::new(lambda, 1e-12).unwrap();
            assert_eq!((fg.left, fg.right), (0, 0), "lambda={lambda}");
            assert_eq!(fg.weights, vec![1.0]);
        }
        // Just above the budget the genuine window takes over and stays
        // normalised.
        let fg = FoxGlynn::new(1e-9, 1e-12).unwrap();
        assert!(fg.right >= 1, "support beyond zero must be retained");
        let sum: f64 = fg.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((fg.weight(0) - (-1e-9f64).exp()).abs() < 1e-12);
        assert!(fg.weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn weights_sum_to_one() {
        for &lambda in &[0.1, 1.0, 5.0, 25.0, 100.0, 1000.0, 25_000.0] {
            let fg = FoxGlynn::new(lambda, 1e-12).unwrap();
            let sum: f64 = fg.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "lambda={lambda} sum={sum}");
        }
    }

    #[test]
    fn matches_naive_pmf_for_small_lambda() {
        let lambda = 4.2;
        let fg = FoxGlynn::new(lambda, 1e-13).unwrap();
        for k in 0..20 {
            let expected = poisson_pmf_naive(k, lambda);
            let got = fg.weight(k);
            assert!((expected - got).abs() < 1e-9, "k={k}: {expected} vs {got}");
        }
    }

    #[test]
    fn window_covers_the_mode_and_mass() {
        let lambda = 500.0;
        let fg = FoxGlynn::new(lambda, 1e-12).unwrap();
        assert!(fg.left < 500 && fg.right > 500);
        // ~6 standard deviations on either side is plenty.
        assert!(fg.left as f64 > lambda - 10.0 * lambda.sqrt());
        assert!((fg.right as f64) < lambda + 10.0 * lambda.sqrt() + 20.0);
    }

    #[test]
    fn cumulative_is_monotone_and_reaches_one() {
        let fg = FoxGlynn::new(30.0, 1e-12).unwrap();
        let mut prev = 0.0;
        for k in 0..fg.right + 5 {
            let c = fg.cumulative(k);
            assert!(c + 1e-15 >= prev);
            prev = c;
        }
        assert!((fg.cumulative(fg.right + 5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_lambda_does_not_underflow() {
        let fg = FoxGlynn::new(100_000.0, 1e-10).unwrap();
        assert!(fg.weights.iter().all(|w| w.is_finite()));
        let sum: f64 = fg.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // ln(Gamma(1)) = 0, ln(Gamma(2)) = 0, ln(Gamma(5)) = ln(24)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }
}
