//! Markov reward models (CSRL-style measures).
//!
//! A [`RewardStructure`] attaches a non-negative rate reward to every state of a
//! CTMC (cost per hour of residing in the state). The [`RewardSolver`] evaluates
//! the two reward operators used in the paper:
//!
//! * **instantaneous reward** `R=? [ I=t ]`: the expected reward rate at time
//!   `t`, i.e. `sum_s pi_s(t) * rho(s)`;
//! * **accumulated reward** `R=? [ C<=t ]`: the expected reward accumulated in
//!   `[0, t]`, i.e. `integral_0^t sum_s pi_s(u) * rho(u) du`;
//! * **long-run reward rate** (steady-state expected reward), the limit of the
//!   instantaneous reward as `t` grows.

use serde::{Deserialize, Serialize};

use crate::error::CtmcError;
use crate::markov::Ctmc;
use crate::steady_state::SteadyStateSolver;
use crate::transient::{TransientOptions, TransientSolver};

/// A state-reward (rate reward) structure over a CTMC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardStructure {
    name: String,
    state_rewards: Vec<f64>,
}

impl RewardStructure {
    /// Creates a reward structure from per-state reward rates.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if any reward is negative or not finite.
    pub fn new(name: impl Into<String>, state_rewards: Vec<f64>) -> Result<Self, CtmcError> {
        if state_rewards.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(CtmcError::InvalidArgument {
                reason: "state rewards must be finite and non-negative".to_string(),
            });
        }
        Ok(RewardStructure {
            name: name.into(),
            state_rewards,
        })
    }

    /// Creates a zero reward structure for a chain with `num_states` states.
    pub fn zeros(name: impl Into<String>, num_states: usize) -> Self {
        RewardStructure {
            name: name.into(),
            state_rewards: vec![0.0; num_states],
        }
    }

    /// The name of this reward structure (e.g. `"repair_cost"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-state reward rates.
    pub fn state_rewards(&self) -> &[f64] {
        &self.state_rewards
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.state_rewards.len()
    }

    /// Returns `true` when the structure covers no states.
    pub fn is_empty(&self) -> bool {
        self.state_rewards.is_empty()
    }

    /// Adds `amount` to the reward of `state`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateOutOfBounds`] for an invalid state and
    /// [`CtmcError::InvalidArgument`] if the resulting reward would be negative
    /// or non-finite.
    pub fn add_reward(&mut self, state: usize, amount: f64) -> Result<(), CtmcError> {
        if state >= self.state_rewards.len() {
            return Err(CtmcError::StateOutOfBounds {
                state,
                num_states: self.state_rewards.len(),
            });
        }
        let new = self.state_rewards[state] + amount;
        if !new.is_finite() || new < 0.0 {
            return Err(CtmcError::InvalidArgument {
                reason: format!("reward for state {state} would become {new}"),
            });
        }
        self.state_rewards[state] = new;
        Ok(())
    }

    /// Dot product with a probability vector.
    fn expectation(&self, distribution: &[f64]) -> Result<f64, CtmcError> {
        if distribution.len() != self.state_rewards.len() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.state_rewards.len(),
                actual: distribution.len(),
            });
        }
        Ok(distribution
            .iter()
            .zip(self.state_rewards.iter())
            .map(|(p, r)| p * r)
            .sum())
    }
}

/// Evaluates reward measures of a CTMC under a reward structure.
#[derive(Debug, Clone)]
pub struct RewardSolver<'a> {
    chain: &'a Ctmc,
    rewards: &'a RewardStructure,
    options: TransientOptions,
}

impl<'a> RewardSolver<'a> {
    /// Creates a solver; the reward structure must cover exactly the chain's states.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] on a size mismatch.
    pub fn new(chain: &'a Ctmc, rewards: &'a RewardStructure) -> Result<Self, CtmcError> {
        if rewards.len() != chain.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: chain.num_states(),
                actual: rewards.len(),
            });
        }
        Ok(RewardSolver {
            chain,
            rewards,
            options: TransientOptions::default(),
        })
    }

    /// Overrides the transient-analysis options.
    pub fn with_options(mut self, options: TransientOptions) -> Self {
        self.options = options;
        self
    }

    /// Expected instantaneous reward rate at time `t` (CSRL `R=? [ I=t ]`).
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis errors.
    pub fn instantaneous_at(&self, t: f64) -> Result<f64, CtmcError> {
        let pi = TransientSolver::with_options(self.chain, self.options).probabilities_at(t)?;
        self.rewards.expectation(&pi)
    }

    /// Expected instantaneous reward at several time points, sharing one
    /// uniformisation pass across all points (bit-identical to evaluating
    /// [`RewardSolver::instantaneous_at`] per point, but the matrix–vector
    /// products are paid once).
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis errors.
    pub fn instantaneous_series(&self, times: &[f64]) -> Result<Vec<f64>, CtmcError> {
        TransientSolver::with_options(self.chain, self.options)
            .probabilities_at_many(times)?
            .iter()
            .map(|pi| self.rewards.expectation(pi))
            .collect()
    }

    /// Expected reward accumulated over `[0, t]` (CSRL `R=? [ C<=t ]`).
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis errors.
    pub fn accumulated_until(&self, t: f64) -> Result<f64, CtmcError> {
        let sojourn =
            TransientSolver::with_options(self.chain, self.options).expected_sojourn_times(t)?;
        self.rewards.expectation(&sojourn)
    }

    /// Expected accumulated reward at several time bounds, sharing one
    /// uniformisation pass across all bounds (bit-identical to evaluating
    /// [`RewardSolver::accumulated_until`] per bound).
    ///
    /// # Errors
    ///
    /// Propagates transient-analysis errors.
    pub fn accumulated_series(&self, times: &[f64]) -> Result<Vec<f64>, CtmcError> {
        TransientSolver::with_options(self.chain, self.options)
            .expected_sojourn_times_many(times)?
            .iter()
            .map(|sojourn| self.rewards.expectation(sojourn))
            .collect()
    }

    /// Long-run expected reward rate (steady-state reward).
    ///
    /// # Errors
    ///
    /// Propagates steady-state solver errors.
    pub fn long_run_rate(&self) -> Result<f64, CtmcError> {
        let pi = SteadyStateSolver::new(self.chain)
            .exec(self.options.exec)
            .solve()?;
        self.rewards.expectation(&pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::CtmcBuilder;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, lambda).unwrap();
        b.add_transition(1, 0, mu).unwrap();
        b.set_initial_state(0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reward_structure_validation() {
        assert!(RewardStructure::new("r", vec![1.0, -1.0]).is_err());
        assert!(RewardStructure::new("r", vec![f64::NAN]).is_err());
        let mut r = RewardStructure::zeros("r", 2);
        assert_eq!(r.name(), "r");
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        r.add_reward(0, 2.0).unwrap();
        assert_eq!(r.state_rewards(), &[2.0, 0.0]);
        assert!(r.add_reward(5, 1.0).is_err());
        assert!(r.add_reward(0, -5.0).is_err());
    }

    #[test]
    fn solver_rejects_mismatched_sizes() {
        let chain = two_state(1.0, 1.0);
        let rewards = RewardStructure::zeros("r", 3);
        assert!(RewardSolver::new(&chain, &rewards).is_err());
    }

    #[test]
    fn instantaneous_reward_matches_transient_probability() {
        // Reward 1 in the down state makes the instantaneous reward equal to the
        // transient unavailability.
        let lambda = 0.01;
        let mu = 0.5;
        let chain = two_state(lambda, mu);
        let rewards = RewardStructure::new("down", vec![0.0, 1.0]).unwrap();
        let solver = RewardSolver::new(&chain, &rewards).unwrap();
        for &t in &[0.0, 1.0, 10.0, 100.0] {
            let expected = lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp());
            let got = solver.instantaneous_at(t).unwrap();
            assert!((got - expected).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn accumulated_reward_is_monotone_and_converges_to_rate() {
        let chain = two_state(0.2, 1.0);
        let rewards = RewardStructure::new("cost", vec![1.0, 3.0]).unwrap();
        let solver = RewardSolver::new(&chain, &rewards).unwrap();
        let series = solver
            .accumulated_series(&[1.0, 2.0, 5.0, 10.0, 20.0])
            .unwrap();
        for pair in series.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        // For large t, accumulated reward ~ long-run rate * t.
        let long_run = solver.long_run_rate().unwrap();
        let at_100 = solver.accumulated_until(100.0).unwrap();
        let at_200 = solver.accumulated_until(200.0).unwrap();
        assert!(((at_200 - at_100) / 100.0 - long_run).abs() < 1e-6);
    }

    #[test]
    fn long_run_rate_matches_steady_state() {
        let chain = two_state(1.0, 3.0);
        let rewards = RewardStructure::new("cost", vec![2.0, 10.0]).unwrap();
        let solver = RewardSolver::new(&chain, &rewards).unwrap();
        // pi = (0.75, 0.25) -> rate = 0.75*2 + 0.25*10 = 4.0
        assert!((solver.long_run_rate().unwrap() - 4.0).abs() < 1e-8);
    }

    #[test]
    fn constant_reward_accumulates_linearly() {
        let chain = two_state(1.0, 1.0);
        let rewards = RewardStructure::new("unit", vec![1.0, 1.0]).unwrap();
        let solver = RewardSolver::new(&chain, &rewards).unwrap();
        for &t in &[0.5, 1.0, 7.0] {
            assert!((solver.accumulated_until(t).unwrap() - t).abs() < 1e-8);
            assert!((solver.instantaneous_at(t).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn instantaneous_series_has_one_value_per_time() {
        let chain = two_state(1.0, 1.0);
        let rewards = RewardStructure::new("r", vec![0.0, 1.0]).unwrap();
        let solver = RewardSolver::new(&chain, &rewards).unwrap();
        let series = solver.instantaneous_series(&[0.0, 0.5, 1.0, 2.0]).unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0], 0.0);
    }
}
