//! Labelled continuous-time Markov chains.
//!
//! A [`Ctmc`] couples a sparse rate matrix with an initial probability
//! distribution and a set of named state labels (atomic propositions). Labels
//! are what the CSL layer and the Arcade measures operate on: a fault tree
//! evaluated over a composed state space becomes a label such as `"down"` or
//! `"service_ge_0.66"` attached to the relevant states.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::CtmcError;
use crate::sparse::{SparseMatrix, SparseMatrixBuilder};

/// Index of a state in a CTMC.
pub type StateIndex = usize;

/// A labelled continuous-time Markov chain.
///
/// The rate matrix stores only off-diagonal entries `R[s][s'] = rate of the
/// transition s -> s'`; exit rates and the generator diagonal are derived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ctmc {
    rates: SparseMatrix,
    exit_rates: Vec<f64>,
    initial: Vec<f64>,
    labels: BTreeMap<String, Vec<bool>>,
}

impl Ctmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rates.num_rows()
    }

    /// Number of transitions (stored non-zero rates).
    pub fn num_transitions(&self) -> usize {
        self.rates.num_entries()
    }

    /// The off-diagonal rate matrix `R` with `R[s][s']` the rate from `s` to `s'`.
    pub fn rate_matrix(&self) -> &SparseMatrix {
        &self.rates
    }

    /// The exit rate `E(s) = sum_{s'} R[s][s']` of each state.
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit_rates
    }

    /// The maximal exit rate over all states; zero for a chain with no transitions.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().copied().fold(0.0, f64::max)
    }

    /// The initial probability distribution over states.
    pub fn initial_distribution(&self) -> &[f64] {
        &self.initial
    }

    /// Returns the set of label names attached to this chain.
    pub fn label_names(&self) -> impl Iterator<Item = &str> {
        self.labels.keys().map(String::as_str)
    }

    /// Returns the characteristic vector of a label, if present.
    pub fn label(&self, name: &str) -> Option<&[bool]> {
        self.labels.get(name).map(Vec::as_slice)
    }

    /// Returns the states satisfying a label, if present.
    pub fn states_with_label(&self, name: &str) -> Option<Vec<StateIndex>> {
        self.labels.get(name).map(|mask| {
            mask.iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect()
        })
    }

    /// Returns `true` when `state` carries label `name`.
    pub fn state_has_label(&self, state: StateIndex, name: &str) -> bool {
        self.labels
            .get(name)
            .map(|mask| mask.get(state).copied().unwrap_or(false))
            .unwrap_or(false)
    }

    /// Attaches (or replaces) a label given its characteristic vector.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if the vector length differs from
    /// the number of states.
    pub fn set_label(&mut self, name: impl Into<String>, mask: Vec<bool>) -> Result<(), CtmcError> {
        if mask.len() != self.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states(),
                actual: mask.len(),
            });
        }
        self.labels.insert(name.into(), mask);
        Ok(())
    }

    /// Returns a copy of this chain with a different initial distribution.
    ///
    /// This is the "given occurrence of disaster" (GOOD) construction used by the
    /// survivability measures: analysis is restarted from the disaster state.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidInitialDistribution`] if the distribution has
    /// negative entries or does not sum to one (within `1e-9`), or a dimension
    /// mismatch error if the length is wrong.
    pub fn with_initial_distribution(&self, initial: Vec<f64>) -> Result<Ctmc, CtmcError> {
        validate_distribution(&initial, self.num_states())?;
        let mut out = self.clone();
        out.initial = initial;
        Ok(out)
    }

    /// Returns a copy of this chain with all probability mass on `state`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateOutOfBounds`] if `state` is not a valid index.
    pub fn with_initial_state(&self, state: StateIndex) -> Result<Ctmc, CtmcError> {
        if state >= self.num_states() {
            return Err(CtmcError::StateOutOfBounds {
                state,
                num_states: self.num_states(),
            });
        }
        let mut initial = vec![0.0; self.num_states()];
        initial[state] = 1.0;
        self.with_initial_distribution(initial)
    }

    /// Returns a copy of this chain in which every state in `absorbing` has had
    /// all outgoing transitions removed.
    ///
    /// Making states absorbing is the standard transformation behind
    /// time-bounded reachability: the probability of having reached a goal set by
    /// time `t` equals the transient probability of sitting in the (absorbing)
    /// goal set at time `t`.
    pub fn make_absorbing(&self, absorbing: &[bool]) -> Result<Ctmc, CtmcError> {
        if absorbing.len() != self.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states(),
                actual: absorbing.len(),
            });
        }
        let n = self.num_states();
        let mut builder = SparseMatrixBuilder::new(n, n);
        for (s, &is_absorbing) in absorbing.iter().enumerate() {
            if is_absorbing {
                continue;
            }
            let (cols, values) = self.rates.row(s);
            for (c, v) in cols.iter().zip(values.iter()) {
                builder.push(s, *c, *v);
            }
        }
        let rates = builder.build();
        let exit_rates = rates.row_sums();
        Ok(Ctmc {
            rates,
            exit_rates,
            initial: self.initial.clone(),
            labels: self.labels.clone(),
        })
    }

    /// Builds the uniformised discrete-time transition probability matrix
    /// `P = I + Q / q` for a uniformisation rate `q >= max_exit_rate()`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if `q` is not strictly positive or
    /// is smaller than the maximal exit rate.
    pub fn uniformized_matrix(&self, q: f64) -> Result<SparseMatrix, CtmcError> {
        if q <= 0.0 || q.is_nan() {
            return Err(CtmcError::InvalidArgument {
                reason: format!("uniformisation rate must be positive, got {q}"),
            });
        }
        if q + 1e-12 < self.max_exit_rate() {
            return Err(CtmcError::InvalidArgument {
                reason: format!(
                    "uniformisation rate {q} is smaller than the maximal exit rate {}",
                    self.max_exit_rate()
                ),
            });
        }
        let n = self.num_states();
        let mut builder = SparseMatrixBuilder::new(n, n);
        for s in 0..n {
            let (cols, values) = self.rates.row(s);
            for (c, v) in cols.iter().zip(values.iter()) {
                builder.push(s, *c, *v / q);
            }
            let stay = 1.0 - self.exit_rates[s] / q;
            if stay != 0.0 {
                builder.push(s, s, stay);
            }
        }
        Ok(builder.build())
    }

    /// Builds the embedded jump-chain probability matrix: `P[s][s'] = R[s][s'] / E(s)`
    /// for non-absorbing `s`, and `P[s][s] = 1` for absorbing states.
    pub fn embedded_matrix(&self) -> SparseMatrix {
        let n = self.num_states();
        let mut builder = SparseMatrixBuilder::new(n, n);
        for s in 0..n {
            if self.exit_rates[s] <= 0.0 {
                builder.push(s, s, 1.0);
                continue;
            }
            let (cols, values) = self.rates.row(s);
            for (c, v) in cols.iter().zip(values.iter()) {
                builder.push(s, *c, *v / self.exit_rates[s]);
            }
        }
        builder.build()
    }

    /// The infinitesimal generator `Q = R - diag(E)` as a sparse matrix.
    pub fn generator_matrix(&self) -> SparseMatrix {
        let n = self.num_states();
        let mut builder = SparseMatrixBuilder::new(n, n);
        for s in 0..n {
            let (cols, values) = self.rates.row(s);
            for (c, v) in cols.iter().zip(values.iter()) {
                builder.push(s, *c, *v);
            }
            if self.exit_rates[s] != 0.0 {
                builder.push(s, s, -self.exit_rates[s]);
            }
        }
        builder.build()
    }
}

fn validate_distribution(dist: &[f64], num_states: usize) -> Result<(), CtmcError> {
    if dist.len() != num_states {
        return Err(CtmcError::DimensionMismatch {
            expected: num_states,
            actual: dist.len(),
        });
    }
    if dist.iter().any(|&p| p < 0.0 || p.is_nan()) {
        return Err(CtmcError::InvalidInitialDistribution {
            reason: "negative or NaN probability".to_string(),
        });
    }
    let total: f64 = dist.iter().sum();
    if (total - 1.0).abs() > 1e-9 {
        return Err(CtmcError::InvalidInitialDistribution {
            reason: format!("probabilities sum to {total}, expected 1"),
        });
    }
    Ok(())
}

/// Builder for [`Ctmc`].
///
/// # Example
///
/// ```
/// # use ctmc::CtmcBuilder;
/// # fn main() -> Result<(), ctmc::CtmcError> {
/// let mut b = CtmcBuilder::new(3);
/// b.add_transition(0, 1, 2.0)?;
/// b.add_transition(1, 2, 1.0)?;
/// b.add_transition(2, 0, 0.5)?;
/// b.set_initial_state(0)?;
/// b.add_label("goal", &[2])?;
/// let chain = b.build()?;
/// assert_eq!(chain.num_states(), 3);
/// assert!(chain.state_has_label(2, "goal"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    num_states: usize,
    transitions: Vec<(StateIndex, StateIndex, f64)>,
    initial: Vec<f64>,
    labels: BTreeMap<String, Vec<bool>>,
}

impl CtmcBuilder {
    /// Creates a builder for a chain with `num_states` states. The initial
    /// distribution defaults to all mass on state 0.
    pub fn new(num_states: usize) -> Self {
        let mut initial = vec![0.0; num_states];
        if num_states > 0 {
            initial[0] = 1.0;
        }
        CtmcBuilder {
            num_states,
            transitions: Vec::new(),
            initial,
            labels: BTreeMap::new(),
        }
    }

    /// Number of states the chain will have.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Adds a transition `from -> to` with the given rate. Rates of repeated
    /// calls for the same pair accumulate.
    ///
    /// # Errors
    ///
    /// Returns an error if either state is out of bounds, the rate is not a
    /// strictly positive finite number, or `from == to` (CTMCs have no
    /// self-loops).
    pub fn add_transition(
        &mut self,
        from: StateIndex,
        to: StateIndex,
        rate: f64,
    ) -> Result<&mut Self, CtmcError> {
        if from >= self.num_states {
            return Err(CtmcError::StateOutOfBounds {
                state: from,
                num_states: self.num_states,
            });
        }
        if to >= self.num_states {
            return Err(CtmcError::StateOutOfBounds {
                state: to,
                num_states: self.num_states,
            });
        }
        if from == to {
            return Err(CtmcError::SelfLoop { state: from });
        }
        if rate <= 0.0 || !rate.is_finite() {
            return Err(CtmcError::InvalidRate { from, to, rate });
        }
        self.transitions.push((from, to, rate));
        Ok(self)
    }

    /// Sets the initial distribution to all mass on `state`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateOutOfBounds`] if `state` is invalid.
    pub fn set_initial_state(&mut self, state: StateIndex) -> Result<&mut Self, CtmcError> {
        if state >= self.num_states {
            return Err(CtmcError::StateOutOfBounds {
                state,
                num_states: self.num_states,
            });
        }
        self.initial.iter_mut().for_each(|p| *p = 0.0);
        self.initial[state] = 1.0;
        Ok(self)
    }

    /// Sets the full initial distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if the distribution has the wrong length, negative
    /// entries, or does not sum to one.
    pub fn set_initial_distribution(&mut self, dist: Vec<f64>) -> Result<&mut Self, CtmcError> {
        validate_distribution(&dist, self.num_states)?;
        self.initial = dist;
        Ok(self)
    }

    /// Attaches a label to the given states (all other states do not carry it).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateOutOfBounds`] if any state index is invalid.
    pub fn add_label(
        &mut self,
        name: impl Into<String>,
        states: &[StateIndex],
    ) -> Result<&mut Self, CtmcError> {
        let mut mask = vec![false; self.num_states];
        for &s in states {
            if s >= self.num_states {
                return Err(CtmcError::StateOutOfBounds {
                    state: s,
                    num_states: self.num_states,
                });
            }
            mask[s] = true;
        }
        self.labels.insert(name.into(), mask);
        Ok(self)
    }

    /// Attaches a label from a characteristic vector.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if the mask has the wrong length.
    pub fn add_label_mask(
        &mut self,
        name: impl Into<String>,
        mask: Vec<bool>,
    ) -> Result<&mut Self, CtmcError> {
        if mask.len() != self.num_states {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states,
                actual: mask.len(),
            });
        }
        self.labels.insert(name.into(), mask);
        Ok(self)
    }

    /// Finalises the chain.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::EmptyChain`] if the chain has no states.
    pub fn build(self) -> Result<Ctmc, CtmcError> {
        if self.num_states == 0 {
            return Err(CtmcError::EmptyChain);
        }
        let mut builder = SparseMatrixBuilder::new(self.num_states, self.num_states);
        for (from, to, rate) in &self.transitions {
            builder.push(*from, *to, *rate);
        }
        let rates = builder.build();
        let exit_rates = rates.row_sums();
        Ok(Ctmc {
            rates,
            exit_rates,
            initial: self.initial,
            labels: self.labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_state_cycle() -> Ctmc {
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 2.0).unwrap();
        b.add_transition(1, 2, 3.0).unwrap();
        b.add_transition(2, 0, 4.0).unwrap();
        b.add_label("start", &[0]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = CtmcBuilder::new(2);
        assert!(matches!(
            b.add_transition(0, 5, 1.0),
            Err(CtmcError::StateOutOfBounds { .. })
        ));
        assert!(matches!(
            b.add_transition(5, 0, 1.0),
            Err(CtmcError::StateOutOfBounds { .. })
        ));
        assert!(matches!(
            b.add_transition(0, 0, 1.0),
            Err(CtmcError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.add_transition(0, 1, 0.0),
            Err(CtmcError::InvalidRate { .. })
        ));
        assert!(matches!(
            b.add_transition(0, 1, -1.0),
            Err(CtmcError::InvalidRate { .. })
        ));
        assert!(matches!(
            b.add_transition(0, 1, f64::NAN),
            Err(CtmcError::InvalidRate { .. })
        ));
        assert!(matches!(
            b.add_transition(0, 1, f64::INFINITY),
            Err(CtmcError::InvalidRate { .. })
        ));
        assert!(matches!(
            b.set_initial_state(9),
            Err(CtmcError::StateOutOfBounds { .. })
        ));
        assert!(matches!(
            b.set_initial_distribution(vec![0.5, 0.2]),
            Err(CtmcError::InvalidInitialDistribution { .. })
        ));
        assert!(matches!(
            b.set_initial_distribution(vec![0.5]),
            Err(CtmcError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            b.add_label("x", &[7]),
            Err(CtmcError::StateOutOfBounds { .. })
        ));
    }

    #[test]
    fn empty_chain_is_rejected() {
        assert!(matches!(
            CtmcBuilder::new(0).build(),
            Err(CtmcError::EmptyChain)
        ));
    }

    #[test]
    fn exit_rates_and_max() {
        let chain = three_state_cycle();
        assert_eq!(chain.exit_rates(), &[2.0, 3.0, 4.0]);
        assert_eq!(chain.max_exit_rate(), 4.0);
        assert_eq!(chain.num_transitions(), 3);
    }

    #[test]
    fn parallel_transitions_accumulate() {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(0, 1, 2.5).unwrap();
        let chain = b.build().unwrap();
        assert_eq!(chain.rate_matrix().get(0, 1), 3.5);
        assert_eq!(chain.num_transitions(), 1);
    }

    #[test]
    fn labels_are_queryable() {
        let chain = three_state_cycle();
        assert!(chain.state_has_label(0, "start"));
        assert!(!chain.state_has_label(1, "start"));
        assert!(!chain.state_has_label(0, "nonexistent"));
        assert_eq!(chain.states_with_label("start"), Some(vec![0]));
        assert_eq!(chain.label_names().collect::<Vec<_>>(), vec!["start"]);
    }

    #[test]
    fn set_label_after_build() {
        let mut chain = three_state_cycle();
        chain.set_label("goal", vec![false, false, true]).unwrap();
        assert!(chain.state_has_label(2, "goal"));
        assert!(matches!(
            chain.set_label("bad", vec![true]),
            Err(CtmcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn make_absorbing_removes_outgoing_transitions() {
        let chain = three_state_cycle();
        let absorbing = chain.make_absorbing(&[false, true, false]).unwrap();
        assert_eq!(absorbing.exit_rates()[1], 0.0);
        assert_eq!(absorbing.exit_rates()[0], 2.0);
        assert_eq!(absorbing.num_transitions(), 2);
    }

    #[test]
    fn uniformized_matrix_rows_sum_to_one() {
        let chain = three_state_cycle();
        let q = chain.max_exit_rate() * 1.02;
        let p = chain.uniformized_matrix(q).unwrap();
        for sum in p.row_sums() {
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!(chain.uniformized_matrix(0.0).is_err());
        assert!(chain.uniformized_matrix(1.0).is_err());
    }

    #[test]
    fn embedded_matrix_is_stochastic() {
        let chain = three_state_cycle();
        let p = chain.embedded_matrix();
        for sum in p.row_sums() {
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn embedded_matrix_self_loops_absorbing_states() {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, 1.0).unwrap();
        let chain = b.build().unwrap();
        let p = chain.embedded_matrix();
        assert_eq!(p.get(1, 1), 1.0);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let chain = three_state_cycle();
        let q = chain.generator_matrix();
        for sum in q.row_sums() {
            assert!(sum.abs() < 1e-12);
        }
    }

    #[test]
    fn initial_distribution_transformations() {
        let chain = three_state_cycle();
        let good = chain.with_initial_state(2).unwrap();
        assert_eq!(good.initial_distribution(), &[0.0, 0.0, 1.0]);
        assert!(chain.with_initial_state(10).is_err());
        let uniform = chain.with_initial_distribution(vec![1.0 / 3.0; 3]).unwrap();
        assert!((uniform.initial_distribution().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(chain
            .with_initial_distribution(vec![0.7, 0.7, -0.4])
            .is_err());
    }
}
