//! Shared execution layer: worker pools on `std` scoped threads.
//!
//! Every parallel code path of the Arcade reproduction — the row-sharded
//! sparse-matrix kernels in this crate, the sharded canonical-orbit frontier
//! of the composer and the experiment-level strategy sweeps — draws its
//! thread budget from one [`ExecOptions`] value, so a single `--threads N`
//! knob controls the whole pipeline. The environment is offline and the only
//! threading substrate is `std::thread::scope`; there is no rayon.
//!
//! # Determinism contract
//!
//! Parallelism in this workspace never changes results. Every kernel built on
//! this module performs its floating-point accumulations in the same order as
//! the serial path (per-row or per-column accumulation over disjoint output
//! shards), so `threads = N` is **bit-identical** to `threads = 1` for any
//! `N`. Work smaller than [`MIN_PARALLEL_WORK`] units is run inline to keep
//! tiny quotient chains free of thread-spawn overhead; because the sharded
//! and the inline path compute identical bits, the cutover is unobservable.

use std::ops::Range;
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Below this many work units (stored matrix entries, frontier states, ...)
/// a kernel runs inline instead of fanning out; thread-spawn latency would
/// dominate. Results are bit-identical either way.
pub const MIN_PARALLEL_WORK: usize = 4096;

/// Thread-count knob shared by every parallel subsystem.
///
/// `threads == 0` (the default) resolves to the machine's available
/// parallelism; `threads == 1` is the exact serial path — no worker threads
/// are ever spawned. The `ARCADE_THREADS` environment variable, when set to a
/// positive integer, overrides the auto-detected default (it does *not*
/// override an explicit `with_threads` choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOptions {
    /// Requested worker count; `0` means "use the available parallelism".
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: env_default_threads(),
        }
    }
}

impl ExecOptions {
    /// Explicit thread count; `0` auto-detects.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions { threads }
    }

    /// The exact serial path: no worker threads, byte-for-byte the historical
    /// single-threaded behaviour.
    pub fn serial() -> Self {
        ExecOptions { threads: 1 }
    }

    /// The effective worker count: `threads`, with `0` resolved to the
    /// available parallelism (at least one).
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            available_parallelism()
        } else {
            self.threads
        }
    }

    /// Worker count for a task of `work` total units: the resolved thread
    /// count, throttled to one when the task is too small to amortise
    /// thread-spawn overhead and never more than one worker per unit.
    pub fn workers_for(&self, work: usize) -> usize {
        let threads = self.resolved_threads();
        if threads <= 1 || work < MIN_PARALLEL_WORK {
            1
        } else {
            threads.min(work.max(1))
        }
    }
}

/// Cached `ARCADE_THREADS` / auto-detection default (the environment cannot
/// change mid-process in any supported configuration).
fn env_default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("ARCADE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0)
    })
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Size of each contiguous shard when `len` work units are split across
/// `workers` (the last shard may be shorter). Shared by every sharded kernel
/// — including `chunks_mut`-based ones — and by [`shard_ranges`], so all
/// shard boundaries in the workspace agree on one decomposition.
pub fn chunk_len(len: usize, workers: usize) -> usize {
    len.div_ceil(workers.max(1)).max(1)
}

/// Splits `0..len` into at most `shards` contiguous, non-empty ranges of
/// [`chunk_len`]-sized pieces. The decomposition depends only on
/// `(len, shards)`, never on scheduling, so shard boundaries are
/// deterministic.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = chunk_len(len, shards.clamp(1, len));
    (0..len.div_ceil(chunk))
        .map(|s| (s * chunk)..((s + 1) * chunk).min(len))
        .collect()
}

/// Maps `f` over `items` on a pool of `exec` workers, returning the outputs
/// in item order (first-come scheduling, deterministic reassembly).
///
/// Items are claimed one at a time from a shared queue, so heterogeneous task
/// costs balance across workers — this is the experiment-level sweep used to
/// run independent figure curves or strategy solves concurrently. With one
/// worker (or a single item) it degenerates to a plain in-order map.
pub fn map_ordered<T, R, F>(items: &[T], exec: ExecOptions, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = exec.resolved_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let out = f(&items[index]);
                slots.lock().expect("no worker panicked")[index] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("no worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_resolve_to_available_parallelism() {
        let auto = ExecOptions::with_threads(0);
        assert!(auto.resolved_threads() >= 1);
        assert_eq!(ExecOptions::serial().resolved_threads(), 1);
        assert_eq!(ExecOptions::with_threads(3).resolved_threads(), 3);
    }

    #[test]
    fn small_work_is_throttled_to_one_worker() {
        let exec = ExecOptions::with_threads(8);
        assert_eq!(exec.workers_for(MIN_PARALLEL_WORK - 1), 1);
        assert_eq!(exec.workers_for(MIN_PARALLEL_WORK), 8);
        assert_eq!(ExecOptions::serial().workers_for(1 << 20), 1);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for len in [0usize, 1, 7, 100, 101] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(len, shards);
                let mut covered = 0;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, covered, "len={len} shards={shards} range {i}");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, len);
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn map_ordered_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let out = map_ordered(&items, ExecOptions::with_threads(threads), |&i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = Vec::new();
        assert!(map_ordered(&empty, ExecOptions::default(), |&i: &usize| i).is_empty());
    }
}
