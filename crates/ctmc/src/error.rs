//! Error types for the CTMC numerics crate.

use std::fmt;

/// Errors produced while building or analysing a CTMC.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// A state index was outside the bounds of the chain.
    StateOutOfBounds {
        /// The offending state index.
        state: usize,
        /// The number of states in the chain.
        num_states: usize,
    },
    /// A transition rate was not strictly positive and finite.
    InvalidRate {
        /// Source state of the transition.
        from: usize,
        /// Target state of the transition.
        to: usize,
        /// The offending rate.
        rate: f64,
    },
    /// A self-loop was requested; CTMCs have no self-loop rates.
    SelfLoop {
        /// The state on which the self-loop was requested.
        state: usize,
    },
    /// The initial distribution does not sum to one or has negative entries.
    InvalidInitialDistribution {
        /// Explanation of the problem.
        reason: String,
    },
    /// A probability or time argument was invalid (negative, NaN, ...).
    InvalidArgument {
        /// Explanation of the problem.
        reason: String,
    },
    /// An iterative solver did not converge within its iteration budget.
    NotConverged {
        /// Name of the solver that failed.
        solver: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// The requested operation requires an irreducible chain but the chain is not.
    NotIrreducible {
        /// Number of bottom strongly connected components found.
        num_bsccs: usize,
    },
    /// The chain has no states.
    EmptyChain,
    /// A reward structure did not match the chain dimensions.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::StateOutOfBounds { state, num_states } => {
                write!(
                    f,
                    "state index {state} out of bounds for chain with {num_states} states"
                )
            }
            CtmcError::InvalidRate { from, to, rate } => {
                write!(
                    f,
                    "invalid transition rate {rate} from state {from} to state {to}"
                )
            }
            CtmcError::SelfLoop { state } => {
                write!(
                    f,
                    "self-loop requested on state {state}; CTMC rate matrices have no self-loops"
                )
            }
            CtmcError::InvalidInitialDistribution { reason } => {
                write!(f, "invalid initial distribution: {reason}")
            }
            CtmcError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            CtmcError::NotConverged {
                solver,
                iterations,
                residual,
            } => write!(
                f,
                "{solver} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CtmcError::NotIrreducible { num_bsccs } => {
                write!(
                    f,
                    "operation requires an irreducible chain but {num_bsccs} BSCCs were found"
                )
            }
            CtmcError::EmptyChain => write!(f, "the chain has no states"),
            CtmcError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CtmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CtmcError::StateOutOfBounds {
            state: 7,
            num_states: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        let e = CtmcError::InvalidRate {
            from: 0,
            to: 1,
            rate: -2.0,
        };
        assert!(e.to_string().contains("-2"));

        let e = CtmcError::NotConverged {
            solver: "gauss-seidel",
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("gauss-seidel"));

        let e = CtmcError::NotIrreducible { num_bsccs: 2 };
        assert!(e.to_string().contains('2'));

        let e = CtmcError::DimensionMismatch {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CtmcError>();
    }
}
