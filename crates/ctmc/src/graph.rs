//! Graph algorithms on the transition structure of a CTMC.
//!
//! Steady-state analysis of a CTMC requires its bottom strongly connected
//! components (BSCCs): in the long run all probability mass sits inside the
//! BSCCs. This module provides an iterative Tarjan strongly-connected-component
//! decomposition (no recursion, safe for large state spaces), BSCC extraction,
//! and simple forward reachability.

use crate::markov::{Ctmc, StateIndex};
use crate::sparse::SparseMatrix;

/// Computes the strongly connected components of the directed graph induced by
/// the non-zero structure of `matrix` (an edge `s -> s'` exists iff the entry is
/// non-zero). Components are returned in reverse topological order (Tarjan's
/// invariant): every edge leaving a component points to a component that appears
/// *earlier* in the returned list.
pub fn strongly_connected_components(matrix: &SparseMatrix) -> Vec<Vec<StateIndex>> {
    let n = matrix.num_rows();
    let mut index_counter = 0usize;
    let mut indices: Vec<Option<usize>> = vec![None; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<StateIndex> = Vec::new();
    let mut components: Vec<Vec<StateIndex>> = Vec::new();

    // Explicit DFS stack: (node, next child position).
    enum Frame {
        Enter(StateIndex),
        Resume(StateIndex, usize),
    }

    for root in 0..n {
        if indices[root].is_some() {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    indices[v] = Some(index_counter);
                    lowlink[v] = index_counter;
                    index_counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, child_pos) => {
                    let (cols, _) = matrix.row(v);
                    let mut advanced = false;
                    let mut pos = child_pos;
                    while pos < cols.len() {
                        let w = cols[pos];
                        pos += 1;
                        match indices[w] {
                            None => {
                                // Recurse into w, then resume v at the next child.
                                work.push(Frame::Resume(v, pos));
                                work.push(Frame::Enter(w));
                                advanced = true;
                                break;
                            }
                            Some(widx) => {
                                if on_stack[w] {
                                    lowlink[v] = lowlink[v].min(widx);
                                }
                            }
                        }
                    }
                    if advanced {
                        continue;
                    }
                    // All children processed: close the component if v is a root.
                    if lowlink[v] == indices[v].unwrap() {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                    // Propagate lowlink to the parent frame, if any.
                    if let Some(Frame::Resume(parent, _)) = work.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }
    components
}

/// Computes the bottom strongly connected components of a CTMC: those SCCs with
/// no transition leaving the component.
pub fn bottom_sccs(chain: &Ctmc) -> Vec<Vec<StateIndex>> {
    let matrix = chain.rate_matrix();
    let sccs = strongly_connected_components(matrix);
    let mut component_of = vec![usize::MAX; chain.num_states()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &s in comp {
            component_of[s] = ci;
        }
    }
    sccs.iter()
        .enumerate()
        .filter(|(ci, comp)| {
            comp.iter().all(|&s| {
                let (cols, _) = matrix.row(s);
                cols.iter().all(|&target| component_of[target] == *ci)
            })
        })
        .map(|(_, comp)| comp.clone())
        .collect()
}

/// Returns the set of states reachable (following non-zero transitions) from any
/// state with positive probability in the chain's initial distribution.
pub fn reachable_from_initial(chain: &Ctmc) -> Vec<bool> {
    let sources: Vec<StateIndex> = chain
        .initial_distribution()
        .iter()
        .enumerate()
        .filter_map(|(s, &p)| (p > 0.0).then_some(s))
        .collect();
    reachable_from(chain.rate_matrix(), &sources)
}

/// Returns the set of states reachable from any of `sources` in the directed
/// graph induced by `matrix` (sources are themselves reachable).
pub fn reachable_from(matrix: &SparseMatrix, sources: &[StateIndex]) -> Vec<bool> {
    let n = matrix.num_rows();
    let mut visited = vec![false; n];
    let mut stack: Vec<StateIndex> = sources.iter().copied().filter(|&s| s < n).collect();
    for &s in &stack {
        visited[s] = true;
    }
    while let Some(s) = stack.pop() {
        let (cols, _) = matrix.row(s);
        for &target in cols {
            if !visited[target] {
                visited[target] = true;
                stack.push(target);
            }
        }
    }
    visited
}

/// Returns the set of states from which some state in `targets` is reachable
/// (backward reachability), including the targets themselves.
pub fn backward_reachable(matrix: &SparseMatrix, targets: &[StateIndex]) -> Vec<bool> {
    reachable_from(&matrix.transpose(), targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::CtmcBuilder;
    use crate::sparse::SparseMatrixBuilder;

    fn graph(n: usize, edges: &[(usize, usize)]) -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(n, n);
        for &(u, v) in edges {
            b.push(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn single_cycle_is_one_scc() {
        let m = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let sccs = strongly_connected_components(&m);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![0, 1, 2]);
    }

    #[test]
    fn chain_graph_has_singleton_sccs() {
        let m = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let sccs = strongly_connected_components(&m);
        assert_eq!(sccs.len(), 4);
        // Reverse topological order: the sink appears first.
        assert_eq!(sccs[0], vec![3]);
        assert_eq!(sccs[3], vec![0]);
    }

    #[test]
    fn two_cycles_connected_by_an_edge() {
        // cycle {0,1} -> cycle {2,3}
        let m = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let sccs = strongly_connected_components(&m);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.contains(&vec![0, 1]));
        assert!(sccs.contains(&vec![2, 3]));
        // The downstream cycle must appear before the upstream one.
        assert_eq!(sccs[0], vec![2, 3]);
    }

    #[test]
    fn self_contained_nodes() {
        let m = graph(3, &[]);
        let sccs = strongly_connected_components(&m);
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn larger_random_like_graph_partitions_all_nodes() {
        let edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
            (6, 6),
            (6, 7),
            (7, 8),
            (8, 6),
            (1, 5),
            (4, 8),
        ];
        let edges: Vec<(usize, usize)> = edges.iter().filter(|(u, v)| u != v).copied().collect();
        let m = graph(9, &edges);
        let sccs = strongly_connected_components(&m);
        let total: usize = sccs.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
        // Every node appears exactly once.
        let mut seen = [false; 9];
        for comp in &sccs {
            for &s in comp {
                assert!(!seen[s]);
                seen[s] = true;
            }
        }
    }

    #[test]
    fn bsccs_of_absorbing_chain() {
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(1, 2, 1.0).unwrap();
        let chain = b.build().unwrap();
        let bsccs = bottom_sccs(&chain);
        assert_eq!(bsccs, vec![vec![2]]);
    }

    #[test]
    fn bsccs_of_irreducible_chain_is_everything() {
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(1, 2, 1.0).unwrap();
        b.add_transition(2, 0, 1.0).unwrap();
        let chain = b.build().unwrap();
        let bsccs = bottom_sccs(&chain);
        assert_eq!(bsccs.len(), 1);
        assert_eq!(bsccs[0].len(), 3);
    }

    #[test]
    fn multiple_bsccs() {
        // 0 branches to the absorbing states 1 and 2.
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(0, 2, 2.0).unwrap();
        let chain = b.build().unwrap();
        let mut bsccs = bottom_sccs(&chain);
        bsccs.sort();
        assert_eq!(bsccs, vec![vec![1], vec![2]]);
    }

    #[test]
    fn reachability_forward_and_backward() {
        let m = graph(5, &[(0, 1), (1, 2), (3, 4)]);
        let fwd = reachable_from(&m, &[0]);
        assert_eq!(fwd, vec![true, true, true, false, false]);
        let back = backward_reachable(&m, &[2]);
        assert_eq!(back, vec![true, true, true, false, false]);
        let from_three = reachable_from(&m, &[3]);
        assert_eq!(from_three, vec![false, false, false, true, true]);
    }

    #[test]
    fn reachable_from_initial_distribution() {
        let mut b = CtmcBuilder::new(4);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(2, 3, 1.0).unwrap();
        b.set_initial_distribution(vec![0.5, 0.0, 0.5, 0.0])
            .unwrap();
        let chain = b.build().unwrap();
        assert_eq!(reachable_from_initial(&chain), vec![true, true, true, true]);
        let chain_only_zero = chain.with_initial_state(0).unwrap();
        assert_eq!(
            reachable_from_initial(&chain_only_zero),
            vec![true, true, false, false]
        );
    }
}
