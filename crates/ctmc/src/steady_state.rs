//! Long-run (steady-state) analysis.
//!
//! For an irreducible CTMC the steady-state distribution is the unique
//! probability vector solving `pi Q = 0`. For reducible chains the standard
//! decomposition applies: all long-run mass lives in the bottom strongly
//! connected components (BSCCs); the solver computes the probability of ending
//! up in each BSCC (via the embedded jump chain) and combines it with the local
//! steady-state distribution of each BSCC. This is what the CSL steady-state
//! operator `S=? [ phi ]` evaluates.

use arcade_telemetry::Recorder;
use serde::{Deserialize, Serialize};

use crate::error::CtmcError;
use crate::exec::ExecOptions;
use crate::graph::bottom_sccs;
use crate::markov::{Ctmc, StateIndex};
use crate::sparse::{SparseMatrix, SparseMatrixBuilder};
use crate::{DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE};

/// Iterative method used for the local steady-state solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SteadyStateMethod {
    /// Gauss–Seidel iteration on the balance equations (default; fastest).
    #[default]
    GaussSeidel,
    /// Jacobi iteration on the balance equations.
    Jacobi,
    /// Power iteration on the uniformised DTMC.
    Power,
}

impl SteadyStateMethod {
    /// Stable identifier used in probe series, logs and JSON reports.
    pub fn tier_name(&self) -> &'static str {
        match self {
            SteadyStateMethod::GaussSeidel => "gauss-seidel",
            SteadyStateMethod::Jacobi => "damped-jacobi",
            SteadyStateMethod::Power => "power",
        }
    }
}

/// Steady-state solver for labelled CTMCs.
#[derive(Debug, Clone)]
pub struct SteadyStateSolver<'a> {
    chain: &'a Ctmc,
    method: SteadyStateMethod,
    tolerance: f64,
    max_iterations: usize,
    exec: ExecOptions,
    initial_guess: Option<Vec<f64>>,
    recorder: Recorder,
}

impl<'a> SteadyStateSolver<'a> {
    /// Creates a solver with the default method (Gauss–Seidel) and tolerances.
    /// Telemetry defaults to the ambient [`Recorder::current`] scope.
    pub fn new(chain: &'a Ctmc) -> Self {
        SteadyStateSolver {
            chain,
            method: SteadyStateMethod::default(),
            tolerance: DEFAULT_TOLERANCE,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            exec: ExecOptions::default(),
            initial_guess: None,
            recorder: Recorder::current(),
        }
    }

    /// Overrides the telemetry recorder the solve reports spans and
    /// convergence probes to. Observability only — never changes results.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Selects the iterative method.
    pub fn method(mut self, method: SteadyStateMethod) -> Self {
        self.method = method;
        self
    }

    /// Selects the worker pool used by the row-parallel sweeps (Jacobi and
    /// power iteration) and by the residual-norm computation of every method.
    ///
    /// Gauss–Seidel *sweeps* cannot shard: row `s` of a sweep reads the
    /// already-updated values of rows `< s` from the same sweep (that forward
    /// substitution is exactly why GS converges in fewer sweeps than Jacobi),
    /// so splitting the sweep across workers would either change the iterates
    /// (block-Jacobi hybrid, different fixed-point trajectory and thus
    /// thread-count-dependent results) or serialise on a dependency chain the
    /// length of the state space. The GS path therefore keeps its sweep
    /// serial and shards only the embarrassingly parallel residual norm; the
    /// sharded sweeps of Jacobi/power accumulate each row independently,
    /// exactly as the serial code does. The knob never changes results.
    pub fn exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Warm-starts the iteration from `guess` (a nonnegative vector over the
    /// *full* state space; it is restricted to each irreducible subset and
    /// normalised there, falling back to the uniform start when the guess
    /// carries no mass on a subset). The fixed point is unchanged — a good
    /// guess only shortens the iteration, and a converged result still
    /// satisfies the same balance-equation stopping criterion as a cold
    /// start.
    pub fn initial_guess(mut self, guess: Vec<f64>) -> Self {
        self.initial_guess = Some(guess);
        self
    }

    /// Sets the convergence tolerance (maximum absolute change per sweep).
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Computes the steady-state distribution of the chain, taking the initial
    /// distribution into account when the chain has several BSCCs.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NotConverged`] if an iterative solve fails to reach
    /// the requested tolerance within the iteration cap.
    pub fn solve(&self) -> Result<Vec<f64>, CtmcError> {
        self.solve_counted().map(|(pi, _)| pi)
    }

    /// [`SteadyStateSolver::solve`] plus the total number of iterative sweeps
    /// performed across all local solves — the observable a warm start
    /// shortens. The distribution returned is bit-identical to
    /// [`SteadyStateSolver::solve`]'s.
    ///
    /// # Errors
    ///
    /// See [`SteadyStateSolver::solve`].
    pub fn solve_counted(&self) -> Result<(Vec<f64>, usize), CtmcError> {
        let mut span = self.recorder.span("solve");
        span.count("states", self.chain.num_states() as u64);
        let result = self.solve_counted_inner();
        if let Ok((_, iterations)) = &result {
            span.count("iterations", *iterations as u64);
        }
        result
    }

    fn solve_counted_inner(&self) -> Result<(Vec<f64>, usize), CtmcError> {
        let n = self.chain.num_states();
        if let Some(guess) = &self.initial_guess {
            if guess.len() != n {
                return Err(CtmcError::DimensionMismatch {
                    expected: n,
                    actual: guess.len(),
                });
            }
            if guess.iter().any(|&g| !g.is_finite() || g < 0.0) {
                return Err(CtmcError::InvalidArgument {
                    reason: "initial guess must be nonnegative and finite".to_string(),
                });
            }
        }
        let bsccs = bottom_sccs(self.chain);

        if bsccs.len() == 1 && bsccs[0].len() == n {
            // Irreducible chain: a single global solve.
            return self.solve_irreducible_subset(&bsccs[0]);
        }

        // Reducible chain: probability of absorption into each BSCC, then the
        // conditional steady-state distribution inside each BSCC.
        let absorption = self.bscc_absorption_probabilities(&bsccs)?;
        let mut result = vec![0.0; n];
        let mut iterations = 0;
        for (bscc, mass) in bsccs.iter().zip(absorption.iter()) {
            if *mass <= 0.0 {
                continue;
            }
            if bscc.len() == 1 {
                result[bscc[0]] += mass;
                continue;
            }
            let (local, local_iterations) = self.solve_irreducible_subset(bscc)?;
            iterations += local_iterations;
            for (&s, &p) in bscc.iter().zip(local_states(&local, bscc).iter()) {
                result[s] += mass * p;
            }
        }
        Ok((result, iterations))
    }

    /// Computes the long-run probability of residing in any state of `states`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SteadyStateSolver::solve`] and returns
    /// [`CtmcError::StateOutOfBounds`] for invalid indices.
    pub fn probability_of(&self, states: &[StateIndex]) -> Result<f64, CtmcError> {
        let pi = self.solve()?;
        let mut total = 0.0;
        for &s in states {
            if s >= pi.len() {
                return Err(CtmcError::StateOutOfBounds {
                    state: s,
                    num_states: pi.len(),
                });
            }
            total += pi[s];
        }
        Ok(total)
    }

    /// Computes the long-run probability of the given label; `Ok(None)` when the
    /// label is not attached to the chain.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SteadyStateSolver::solve`].
    pub fn probability_of_label(&self, label: &str) -> Result<Option<f64>, CtmcError> {
        match self.chain.states_with_label(label) {
            None => Ok(None),
            Some(states) => self.probability_of(&states).map(Some),
        }
    }

    /// Maximum absolute balance-equation residual of `pi` against this
    /// chain's full rate matrix: `max_s |sum_{s'≠s} pi_{s'} R[s'][s] - pi_s E(s)|`.
    ///
    /// This is an independent certificate of a (possibly externally computed)
    /// stationary vector: a tiny residual means `pi` satisfies *this* chain's
    /// balance equations, regardless of how it was obtained. The sweep shards
    /// across the worker pool, bit-identically for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] on a length mismatch.
    pub fn balance_residual(&self, pi: &[f64]) -> Result<f64, CtmcError> {
        if pi.len() != self.chain.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.chain.num_states(),
                actual: pi.len(),
            });
        }
        let incoming = self.chain.rate_matrix().transpose();
        Ok(self.residual(&incoming, self.chain.exit_rates(), pi))
    }

    /// Solves the steady state restricted to an irreducible subset of states
    /// (either the full chain or one BSCC), returning the distribution over the
    /// full state space (zero outside the subset) and the number of iterative
    /// sweeps used.
    fn solve_irreducible_subset(
        &self,
        subset: &[StateIndex],
    ) -> Result<(Vec<f64>, usize), CtmcError> {
        let n = self.chain.num_states();
        if subset.len() == 1 {
            let mut pi = vec![0.0; n];
            pi[subset[0]] = 1.0;
            return Ok((pi, 0));
        }

        // Build the restricted rate matrix over local indices.
        let mut local_index = vec![usize::MAX; n];
        for (li, &s) in subset.iter().enumerate() {
            local_index[s] = li;
        }
        let m = subset.len();
        let mut builder = SparseMatrixBuilder::new(m, m);
        for (li, &s) in subset.iter().enumerate() {
            let (cols, values) = self.chain.rate_matrix().row(s);
            for (c, v) in cols.iter().zip(values.iter()) {
                let lj = local_index[*c];
                if lj != usize::MAX {
                    builder.push(li, lj, *v);
                }
            }
        }
        let local_rates = builder.build();
        let start = self.local_start(subset);
        let (local_pi, iterations) = match self.method {
            SteadyStateMethod::GaussSeidel => self.gauss_seidel(&local_rates, start)?,
            SteadyStateMethod::Jacobi => self.jacobi(&local_rates, start)?,
            SteadyStateMethod::Power => self.power(&local_rates, start)?,
        };

        let mut pi = vec![0.0; n];
        for (li, &s) in subset.iter().enumerate() {
            pi[s] = local_pi[li];
        }
        Ok((pi, iterations))
    }

    /// The starting vector of an iterative solve on `subset`: the restricted
    /// and renormalised [`SteadyStateSolver::initial_guess`] when one is set
    /// and carries mass on the subset, the uniform distribution otherwise.
    fn local_start(&self, subset: &[StateIndex]) -> Vec<f64> {
        let m = subset.len();
        if let Some(guess) = &self.initial_guess {
            let mut local: Vec<f64> = subset.iter().map(|&s| guess[s]).collect();
            let total: f64 = local.iter().sum();
            if total > 0.0 {
                local.iter_mut().for_each(|x| *x /= total);
                return local;
            }
        }
        vec![1.0 / m as f64; m]
    }

    /// Gauss–Seidel on the balance equations `pi_s * E(s) = sum_{s'} pi_{s'} R[s'][s]`.
    ///
    /// The sweep itself is inherently serial — see [`SteadyStateSolver::exec`]
    /// — so only the residual norm reported on failure shards.
    fn gauss_seidel(
        &self,
        rates: &SparseMatrix,
        start: Vec<f64>,
    ) -> Result<(Vec<f64>, usize), CtmcError> {
        let exit: Vec<f64> = rates.row_sums();
        let incoming = rates.transpose();
        let mut pi = start;
        let m = pi.len();
        let mut probe = self
            .recorder
            .probe("residual", SteadyStateMethod::GaussSeidel.tier_name());

        for iteration in 0..self.max_iterations {
            let mut max_delta: f64 = 0.0;
            for s in 0..m {
                if exit[s] <= 0.0 {
                    continue;
                }
                let (cols, values) = incoming.row(s);
                let mut inflow = 0.0;
                for (c, v) in cols.iter().zip(values.iter()) {
                    if *c != s {
                        inflow += pi[*c] * v;
                    }
                }
                let new_value = inflow / exit[s];
                max_delta = max_delta.max((new_value - pi[s]).abs());
                pi[s] = new_value;
            }
            probe.record(max_delta);
            normalize(&mut pi);
            if max_delta < self.tolerance {
                return Ok((pi, iteration + 1));
            }
        }
        Err(CtmcError::NotConverged {
            solver: "gauss-seidel steady-state",
            iterations: self.max_iterations,
            residual: self.residual(&incoming, &exit, &pi),
        })
    }

    /// Damped Jacobi iteration on the balance equations. Damping (averaging the
    /// update with the previous iterate) prevents the oscillation Jacobi is
    /// prone to on nearly-periodic chains.
    fn jacobi(
        &self,
        rates: &SparseMatrix,
        start: Vec<f64>,
    ) -> Result<(Vec<f64>, usize), CtmcError> {
        let m = rates.num_rows();
        let exit: Vec<f64> = rates.row_sums();
        let incoming = rates.transpose();
        let mut pi = start;
        let mut next = vec![0.0; m];

        // Every row of a Jacobi sweep reads only the previous iterate, so the
        // sweep shards across workers row-range-wise; per-row accumulation is
        // untouched and the iterates are bit-identical to the serial sweep.
        let workers = self.exec.workers_for(incoming.num_entries()).min(m.max(1));
        let mut probe = self
            .recorder
            .probe("residual", SteadyStateMethod::Jacobi.tier_name());

        for iteration in 0..self.max_iterations {
            let max_delta = if workers <= 1 {
                jacobi_sweep(&incoming, &exit, &pi, 0, &mut next)
            } else {
                let chunk = crate::exec::chunk_len(m, workers);
                let mut delta = 0.0f64;
                std::thread::scope(|scope| {
                    let pi_ref = &pi;
                    let exit_ref = &exit;
                    let incoming_ref = &incoming;
                    let handles: Vec<_> = next
                        .chunks_mut(chunk)
                        .enumerate()
                        .map(|(i, shard)| {
                            scope.spawn(move || {
                                jacobi_sweep(incoming_ref, exit_ref, pi_ref, i * chunk, shard)
                            })
                        })
                        .collect();
                    for handle in handles {
                        delta = delta.max(handle.join().expect("no worker panicked"));
                    }
                });
                delta
            };
            probe.record(max_delta);
            std::mem::swap(&mut pi, &mut next);
            normalize(&mut pi);
            if max_delta < self.tolerance {
                return Ok((pi, iteration + 1));
            }
        }
        Err(CtmcError::NotConverged {
            solver: "jacobi steady-state",
            iterations: self.max_iterations,
            residual: self.residual(&incoming, &exit, &pi),
        })
    }

    /// Power iteration on the uniformised DTMC `P = I + Q / q`.
    ///
    /// Each iteration is a single matrix pass: the successive-iterate norm is
    /// folded into the sharded multiply (per-shard partial maxima merged with
    /// `f64::max`, so it is bit-identical for every thread count — see
    /// [`SparseMatrix::left_multiply_delta_exec`]) instead of re-walking the
    /// two iterate vectors afterwards. The delta is measured before the
    /// normalisation step; `P` is stochastic, so the iterate's mass is
    /// already `1` up to rounding and the stopping criterion is unchanged at
    /// tolerance scale. The damped-Jacobi sweep ([`jacobi_sweep`]) has always
    /// folded its norm into the sweep the same way.
    fn power(&self, rates: &SparseMatrix, start: Vec<f64>) -> Result<(Vec<f64>, usize), CtmcError> {
        let m = rates.num_rows();
        let exit: Vec<f64> = rates.row_sums();
        let q = exit.iter().copied().fold(0.0, f64::max) * 1.02;
        if q <= 0.0 {
            return Ok((vec![1.0 / m as f64; m], 0));
        }
        let mut builder = SparseMatrixBuilder::new(m, m);
        for (s, &exit_rate) in exit.iter().enumerate() {
            let (cols, values) = rates.row(s);
            for (c, v) in cols.iter().zip(values.iter()) {
                builder.push(s, *c, *v / q);
            }
            let stay = 1.0 - exit_rate / q;
            if stay != 0.0 {
                builder.push(s, s, stay);
            }
        }
        let p = builder.build();

        let mut pi = start;
        let mut next = vec![0.0; m];
        let mut probe = self
            .recorder
            .probe("residual", SteadyStateMethod::Power.tier_name());
        for iteration in 0..self.max_iterations {
            let max_delta = p.left_multiply_delta_exec(&pi, &mut next, &self.exec)?;
            probe.record(max_delta);
            std::mem::swap(&mut pi, &mut next);
            normalize(&mut pi);
            if max_delta < self.tolerance {
                return Ok((pi, iteration + 1));
            }
        }
        Err(CtmcError::NotConverged {
            solver: "power steady-state",
            iterations: self.max_iterations,
            residual: 0.0,
        })
    }

    /// Maximum absolute balance-equation residual `|inflow(s) - pi_s E(s)|`,
    /// sharded across the worker pool. Every state's residual is a pure
    /// function of `pi`, and `f64::max` over the per-shard maxima is
    /// order-independent, so the result is bit-identical for any thread
    /// count.
    fn residual(&self, incoming: &SparseMatrix, exit: &[f64], pi: &[f64]) -> f64 {
        let shards = crate::exec::shard_ranges(
            pi.len(),
            self.exec.workers_for(incoming.num_entries()).min(pi.len()),
        );
        crate::exec::map_ordered(&shards, self.exec, |range| {
            let mut max_res: f64 = 0.0;
            for s in range.clone() {
                let (cols, values) = incoming.row(s);
                let mut inflow = 0.0;
                for (c, v) in cols.iter().zip(values.iter()) {
                    if *c != s {
                        inflow += pi[*c] * v;
                    }
                }
                max_res = max_res.max((inflow - pi[s] * exit[s]).abs());
            }
            max_res
        })
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Probability (under the chain's initial distribution and embedded jump
    /// chain) of eventually being absorbed into each BSCC.
    fn bscc_absorption_probabilities(
        &self,
        bsccs: &[Vec<StateIndex>],
    ) -> Result<Vec<f64>, CtmcError> {
        let n = self.chain.num_states();
        let embedded = self.chain.embedded_matrix();
        let mut in_bscc = vec![usize::MAX; n];
        for (bi, bscc) in bsccs.iter().enumerate() {
            for &s in bscc {
                in_bscc[s] = bi;
            }
        }

        let mut result = vec![0.0; bsccs.len()];
        // For each BSCC compute the per-state probability of eventually reaching
        // it (value iteration on the embedded DTMC), then weight by the initial
        // distribution. Transient mass vanishes in the long run so the reach
        // probabilities over all BSCCs sum to one for every state.
        for (bi, _) in bsccs.iter().enumerate() {
            let mut x: Vec<f64> = (0..n)
                .map(|s| if in_bscc[s] == bi { 1.0 } else { 0.0 })
                .collect();
            let mut next = vec![0.0; n];
            for _ in 0..self.max_iterations {
                let mut max_delta: f64 = 0.0;
                for s in 0..n {
                    if in_bscc[s] != usize::MAX {
                        next[s] = if in_bscc[s] == bi { 1.0 } else { 0.0 };
                        continue;
                    }
                    let (cols, values) = embedded.row(s);
                    let mut acc = 0.0;
                    for (c, v) in cols.iter().zip(values.iter()) {
                        acc += v * x[*c];
                    }
                    max_delta = max_delta.max((acc - x[s]).abs());
                    next[s] = acc;
                }
                std::mem::swap(&mut x, &mut next);
                if max_delta < self.tolerance {
                    break;
                }
            }
            result[bi] = self
                .chain
                .initial_distribution()
                .iter()
                .zip(x.iter())
                .map(|(p0, p)| p0 * p)
                .sum();
        }
        Ok(result)
    }
}

/// One damped-Jacobi sweep over the rows `start..start + next.len()`,
/// writing the damped update into `next` and returning the shard's maximum
/// undamped change (the convergence criterion; `f64::max` over shards is
/// order-independent, so the sharded sweep converges after exactly the same
/// iteration count as the serial one).
fn jacobi_sweep(
    incoming: &SparseMatrix,
    exit: &[f64],
    pi: &[f64],
    start: usize,
    next: &mut [f64],
) -> f64 {
    const DAMPING: f64 = 0.5;
    let mut max_delta: f64 = 0.0;
    for (offset, slot) in next.iter_mut().enumerate() {
        let s = start + offset;
        if exit[s] <= 0.0 {
            *slot = pi[s];
            continue;
        }
        let (cols, values) = incoming.row(s);
        let mut inflow = 0.0;
        for (c, v) in cols.iter().zip(values.iter()) {
            if *c != s {
                inflow += pi[*c] * v;
            }
        }
        let updated = inflow / exit[s];
        *slot = DAMPING * updated + (1.0 - DAMPING) * pi[s];
        max_delta = max_delta.max((updated - pi[s]).abs());
    }
    max_delta
}

fn local_states(full: &[f64], subset: &[StateIndex]) -> Vec<f64> {
    subset.iter().map(|&s| full[s]).collect()
}

fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        v.iter_mut().for_each(|x| *x /= total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::CtmcBuilder;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, lambda).unwrap();
        b.add_transition(1, 0, mu).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn two_state_steady_state_closed_form() {
        let chain = two_state(0.002, 0.2);
        for method in [
            SteadyStateMethod::GaussSeidel,
            SteadyStateMethod::Jacobi,
            SteadyStateMethod::Power,
        ] {
            let pi = SteadyStateSolver::new(&chain)
                .method(method)
                .solve()
                .unwrap();
            let expected_down = 0.002 / 0.202;
            assert!(
                (pi[1] - expected_down).abs() < 1e-8,
                "{method:?}: {}",
                pi[1]
            );
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn birth_death_chain_matches_detailed_balance() {
        // 0 <-> 1 <-> 2 with birth rate 1, death rate 2: pi_k proportional to (1/2)^k.
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(1, 2, 1.0).unwrap();
        b.add_transition(1, 0, 2.0).unwrap();
        b.add_transition(2, 1, 2.0).unwrap();
        let chain = b.build().unwrap();
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        let z = 1.0 + 0.5 + 0.25;
        assert!((pi[0] - 1.0 / z).abs() < 1e-8);
        assert!((pi[1] - 0.5 / z).abs() < 1e-8);
        assert!((pi[2] - 0.25 / z).abs() < 1e-8);
    }

    #[test]
    fn independent_components_product_form() {
        // Two independent 2-state components composed into a 4-state chain:
        // state = (a, b); the steady state is the product of the marginals.
        let la = 0.1;
        let ma = 1.0;
        let lb = 0.5;
        let mb = 2.0;
        let idx = |a: usize, b: usize| a * 2 + b;
        let mut builder = CtmcBuilder::new(4);
        for a in 0..2 {
            for b_state in 0..2 {
                let s = idx(a, b_state);
                if a == 0 {
                    builder.add_transition(s, idx(1, b_state), la).unwrap();
                } else {
                    builder.add_transition(s, idx(0, b_state), ma).unwrap();
                }
                if b_state == 0 {
                    builder.add_transition(s, idx(a, 1), lb).unwrap();
                } else {
                    builder.add_transition(s, idx(a, 0), mb).unwrap();
                }
            }
        }
        let chain = builder.build().unwrap();
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        let a_up = ma / (la + ma);
        let b_up = mb / (lb + mb);
        assert!((pi[idx(0, 0)] - a_up * b_up).abs() < 1e-8);
        assert!((pi[idx(1, 1)] - (1.0 - a_up) * (1.0 - b_up)).abs() < 1e-8);
    }

    #[test]
    fn reducible_chain_absorbing_state() {
        // 0 -> 1 (absorbing) means all long-run mass is on 1.
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, 3.0).unwrap();
        let chain = b.build().unwrap();
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        assert!((pi[0]).abs() < 1e-12);
        assert!((pi[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reducible_chain_two_bsccs_split_by_branching() {
        // 0 -> 1 with rate 1 and 0 -> 2 with rate 3: absorption probabilities 1/4, 3/4.
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(0, 2, 3.0).unwrap();
        let chain = b.build().unwrap();
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        assert!((pi[1] - 0.25).abs() < 1e-9);
        assert!((pi[2] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reducible_chain_with_cyclic_bscc() {
        // 0 -> {1,2} cycle; the cycle's local steady state follows the rates.
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(1, 2, 1.0).unwrap();
        b.add_transition(2, 1, 4.0).unwrap();
        let chain = b.build().unwrap();
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        assert!(pi[0].abs() < 1e-12);
        assert!((pi[1] - 0.8).abs() < 1e-8);
        assert!((pi[2] - 0.2).abs() < 1e-8);
    }

    #[test]
    fn probability_of_label_and_states() {
        let mut chain = two_state(1.0, 1.0);
        chain.set_label("down", vec![false, true]).unwrap();
        let solver = SteadyStateSolver::new(&chain);
        let p = solver.probability_of_label("down").unwrap().unwrap();
        assert!((p - 0.5).abs() < 1e-9);
        assert_eq!(solver.probability_of_label("unknown").unwrap(), None);
        assert!(solver.probability_of(&[9]).is_err());
    }

    #[test]
    fn sharded_sweeps_are_bit_identical_to_serial() {
        // A birth–death chain large enough to clear the parallel-work
        // threshold: the Jacobi and power iterates are sharded row-wise, so
        // every thread count must converge after the same number of sweeps to
        // exactly the same vector.
        // A ring with shortcut chords mixes in few sweeps, keeping the test
        // fast while the entry count clears the parallel-work threshold.
        let n = 2200;
        let mut b = CtmcBuilder::new(n);
        for s in 0..n {
            b.add_transition(s, (s + 1) % n, 1.0 + (s % 5) as f64)
                .unwrap();
            b.add_transition(s, (s + n / 2 + s % 7) % n, 2.0).unwrap();
        }
        let chain = b.build().unwrap();
        for method in [SteadyStateMethod::Jacobi, SteadyStateMethod::Power] {
            let reference = SteadyStateSolver::new(&chain)
                .method(method)
                .tolerance(1e-6)
                .exec(ExecOptions::serial())
                .solve()
                .unwrap();
            for threads in [1usize, 2, 4, 8] {
                let parallel = SteadyStateSolver::new(&chain)
                    .method(method)
                    .tolerance(1e-6)
                    .exec(ExecOptions::with_threads(threads))
                    .solve()
                    .unwrap();
                assert_eq!(parallel, reference, "{method:?}, {threads} threads");
            }
        }
    }

    #[test]
    fn warm_start_reaches_the_same_fixed_point() {
        let chain = two_state(0.002, 0.2);
        let cold = SteadyStateSolver::new(&chain).solve().unwrap();
        for method in [
            SteadyStateMethod::GaussSeidel,
            SteadyStateMethod::Jacobi,
            SteadyStateMethod::Power,
        ] {
            // Warm-starting from the answer, from a bad guess and from a
            // zero-mass guess (uniform fallback) must all land on the fixed
            // point; the guess changes only the trajectory.
            for guess in [cold.clone(), vec![0.9, 0.1], vec![0.0, 0.0]] {
                let warm = SteadyStateSolver::new(&chain)
                    .method(method)
                    .initial_guess(guess)
                    .solve()
                    .unwrap();
                assert!((warm[1] - cold[1]).abs() < 1e-8, "{method:?}: {}", warm[1]);
            }
        }
        // Invalid guesses are rejected up front.
        assert!(SteadyStateSolver::new(&chain)
            .initial_guess(vec![1.0])
            .solve()
            .is_err());
        assert!(SteadyStateSolver::new(&chain)
            .initial_guess(vec![-1.0, 2.0])
            .solve()
            .is_err());
    }

    #[test]
    fn balance_residual_certifies_stationarity() {
        let chain = two_state(0.002, 0.2);
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        let solver = SteadyStateSolver::new(&chain);
        assert!(solver.balance_residual(&pi).unwrap() < 1e-10);
        // A non-stationary vector has a visible residual, identically for
        // every thread count.
        let reference = solver.balance_residual(&[0.5, 0.5]).unwrap();
        assert!(reference > 1e-3);
        for threads in [2usize, 4, 8] {
            let sharded = SteadyStateSolver::new(&chain)
                .exec(ExecOptions::with_threads(threads))
                .balance_residual(&[0.5, 0.5])
                .unwrap();
            assert_eq!(sharded, reference);
        }
        assert!(solver.balance_residual(&[1.0]).is_err());
    }

    #[test]
    fn solve_counted_reports_iterations_and_matches_solve() {
        let chain = two_state(0.002, 0.2);
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        let (counted_pi, cold_iterations) = SteadyStateSolver::new(&chain).solve_counted().unwrap();
        assert_eq!(counted_pi, pi);
        assert!(cold_iterations > 0);
        // Warm-starting from the answer converges in fewer sweeps.
        let (warm_pi, warm_iterations) = SteadyStateSolver::new(&chain)
            .initial_guess(pi.clone())
            .solve_counted()
            .unwrap();
        assert!(warm_iterations <= cold_iterations);
        assert!((warm_pi[1] - pi[1]).abs() < 1e-10);
        // Singleton BSCCs need no sweeps at all.
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, 3.0).unwrap();
        let absorbing = b.build().unwrap();
        let (_, iterations) = SteadyStateSolver::new(&absorbing).solve_counted().unwrap();
        assert_eq!(iterations, 0);
    }

    #[test]
    fn iteration_cap_produces_not_converged() {
        // Asymmetric rates so the uniform starting guess is not already the answer.
        let chain = two_state(1.0, 3.0);
        let result = SteadyStateSolver::new(&chain)
            .max_iterations(1)
            .tolerance(1e-16)
            .solve();
        assert!(matches!(result, Err(CtmcError::NotConverged { .. })));
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SteadyStateMethod::GaussSeidel.tier_name(), "gauss-seidel");
        assert_eq!(SteadyStateMethod::Jacobi.tier_name(), "damped-jacobi");
        assert_eq!(SteadyStateMethod::Power.tier_name(), "power");
    }

    #[test]
    fn recorder_captures_solve_span_and_residual_series_without_changing_results() {
        let chain = two_state(0.002, 0.2);
        let plain = SteadyStateSolver::new(&chain).solve_counted().unwrap();
        for method in [
            SteadyStateMethod::GaussSeidel,
            SteadyStateMethod::Jacobi,
            SteadyStateMethod::Power,
        ] {
            let reference = SteadyStateSolver::new(&chain)
                .method(method)
                .solve_counted()
                .unwrap();
            let recorder = arcade_telemetry::Recorder::with_probes();
            let traced = SteadyStateSolver::new(&chain)
                .method(method)
                .recorder(recorder.clone())
                .solve_counted()
                .unwrap();
            assert_eq!(traced, reference, "{method:?}: tracing must not perturb");
            assert_eq!(recorder.span_count("solve"), 1);
            assert_eq!(
                recorder.counter_total("solve", "iterations"),
                reference.1 as u64
            );
            let series = recorder.series();
            assert_eq!(series.len(), 1, "{method:?}: one residual series");
            assert_eq!(series[0].kind, "residual");
            assert_eq!(series[0].tier, method.tier_name());
            assert_eq!(series[0].values.len(), reference.1);
            let last = *series[0].values.last().unwrap();
            assert!(last < 1e-8, "{method:?}: converged residual, got {last}");
        }
        // The ambient default (no scope, no global) records nothing and the
        // result is bit-identical.
        let ambient = SteadyStateSolver::new(&chain).solve_counted().unwrap();
        assert_eq!(ambient, plain);
    }
}
