//! Compressed sparse row (CSR) matrices.
//!
//! The CTMC generator matrices produced by the Arcade state-space composer are
//! extremely sparse (a handful of transitions per state), so all numerical
//! algorithms in this crate operate on a CSR representation built through
//! [`SparseMatrixBuilder`].

use serde::{Deserialize, Serialize};

use crate::error::CtmcError;

/// A single non-zero entry of a sparse matrix, used when iterating rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Column index of the entry.
    pub col: usize,
    /// Value of the entry.
    pub value: f64,
}

/// An immutable sparse matrix in compressed sparse row format.
///
/// Rows are stored contiguously; [`SparseMatrix::row`] returns the non-zero
/// entries of a row as a slice. The matrix is not required to be square, though
/// all CTMC uses in this crate are square.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    num_rows: usize,
    num_cols: usize,
    row_offsets: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Creates an empty matrix with the given dimensions and no non-zero entries.
    pub fn zeros(num_rows: usize, num_cols: usize) -> Self {
        SparseMatrix {
            num_rows,
            num_cols,
            row_offsets: vec![0; num_rows + 1],
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an identity matrix of the given size.
    pub fn identity(n: usize) -> Self {
        let mut builder = SparseMatrixBuilder::new(n, n);
        for i in 0..n {
            builder.push(i, i, 1.0);
        }
        builder.build()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of explicitly stored (non-zero) entries.
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// Returns the non-zero entries of row `row` as parallel slices of column
    /// indices and values.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows()`.
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        let start = self.row_offsets[row];
        let end = self.row_offsets[row + 1];
        (&self.cols[start..end], &self.values[start..end])
    }

    /// Returns an iterator over the entries of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows()`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = Entry> + '_ {
        let (cols, values) = self.row(row);
        cols.iter()
            .zip(values.iter())
            .map(|(&col, &value)| Entry { col, value })
    }

    /// Looks up the entry at `(row, col)`, returning `0.0` if it is not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.num_rows {
            return 0.0;
        }
        let (cols, values) = self.row(row);
        match cols.binary_search(&col) {
            Ok(idx) => values[idx],
            Err(_) => 0.0,
        }
    }

    /// Computes `y = x * A` (row-vector times matrix) and stores the result in `y`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != num_rows()` or
    /// `y.len() != num_cols()`.
    pub fn left_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), CtmcError> {
        if x.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: x.len(),
            });
        }
        if y.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: y.len(),
            });
        }
        y.iter_mut().for_each(|v| *v = 0.0);
        for (row, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, values) = self.row(row);
            for (c, v) in cols.iter().zip(values.iter()) {
                y[*c] += xi * v;
            }
        }
        Ok(())
    }

    /// Computes `y = A * x` (matrix times column-vector) and stores the result in `y`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != num_cols()` or
    /// `y.len() != num_rows()`.
    pub fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), CtmcError> {
        if x.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: x.len(),
            });
        }
        if y.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: y.len(),
            });
        }
        for (row, out) in y.iter_mut().enumerate() {
            let (cols, values) = self.row(row);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(values.iter()) {
                acc += v * x[*c];
            }
            *out = acc;
        }
        Ok(())
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> SparseMatrix {
        let mut builder = SparseMatrixBuilder::new(self.num_cols, self.num_rows);
        for row in 0..self.num_rows {
            let (cols, values) = self.row(row);
            for (c, v) in cols.iter().zip(values.iter()) {
                builder.push(*c, row, *v);
            }
        }
        builder.build()
    }

    /// Returns the sum of each row as a vector.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.num_rows)
            .map(|r| self.row(r).1.iter().sum())
            .collect()
    }

    /// Returns a new matrix where every stored value has been scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> SparseMatrix {
        let mut out = self.clone();
        out.values.iter_mut().for_each(|v| *v *= factor);
        out
    }

    /// Iterates over all stored entries as `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.num_rows).flat_map(move |row| {
            let (cols, values) = self.row(row);
            cols.iter()
                .zip(values.iter())
                .map(move |(&c, &v)| (row, c, v))
        })
    }
}

/// Incremental builder for [`SparseMatrix`].
///
/// Entries may be pushed in any order; duplicate `(row, col)` pairs are summed
/// when the matrix is built, which is convenient when accumulating rates of
/// parallel transitions between the same pair of states.
#[derive(Debug, Clone, Default)]
pub struct SparseMatrixBuilder {
    num_rows: usize,
    num_cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl SparseMatrixBuilder {
    /// Creates a builder for a matrix with the given dimensions.
    pub fn new(num_rows: usize, num_cols: usize) -> Self {
        SparseMatrixBuilder {
            num_rows,
            num_cols,
            triplets: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`. Values pushed to the same coordinates are summed.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds; the caller is expected to have
    /// validated indices (the higher-level [`crate::CtmcBuilder`] returns errors
    /// instead of panicking).
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.num_rows,
            "row {row} out of bounds ({} rows)",
            self.num_rows
        );
        assert!(
            col < self.num_cols,
            "col {col} out of bounds ({} cols)",
            self.num_cols
        );
        self.triplets.push((row, col, value));
    }

    /// Number of triplets pushed so far (before duplicate merging).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// Returns `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Builds the CSR matrix, merging duplicate coordinates by summation and
    /// dropping entries that cancel to exactly zero.
    pub fn build(mut self) -> SparseMatrix {
        self.triplets.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_offsets = vec![0usize; self.num_rows + 1];
        let mut cols = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());

        let mut idx = 0;
        let triplets = &self.triplets;
        for row in 0..self.num_rows {
            while idx < triplets.len() && triplets[idx].0 == row {
                let col = triplets[idx].1;
                let mut value = 0.0;
                while idx < triplets.len() && triplets[idx].0 == row && triplets[idx].1 == col {
                    value += triplets[idx].2;
                    idx += 1;
                }
                if value != 0.0 {
                    cols.push(col);
                    values.push(value);
                }
            }
            row_offsets[row + 1] = cols.len();
        }

        SparseMatrix {
            num_rows: self.num_rows,
            num_cols: self.num_cols,
            row_offsets,
            cols,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_2x2() -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 2.0);
        b.push(1, 0, 3.0);
        b.push(1, 1, 4.0);
        b.build()
    }

    #[test]
    fn builds_and_reads_entries() {
        let m = matrix_2x2();
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m.num_entries(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(1, 5), 0.0);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let mut b = SparseMatrixBuilder::new(2, 2);
        b.push(0, 1, 1.5);
        b.push(0, 1, 2.5);
        b.push(1, 0, 1.0);
        let m = b.build();
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.num_entries(), 2);
    }

    #[test]
    fn entries_that_cancel_are_dropped() {
        let mut b = SparseMatrixBuilder::new(1, 2);
        b.push(0, 0, 2.0);
        b.push(0, 0, -2.0);
        b.push(0, 1, 1.0);
        let m = b.build();
        assert_eq!(m.num_entries(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut b = SparseMatrixBuilder::new(4, 4);
        b.push(0, 3, 1.0);
        b.push(3, 0, 2.0);
        let m = b.build();
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row(2).0.len(), 0);
        assert_eq!(m.get(0, 3), 1.0);
        assert_eq!(m.get(3, 0), 2.0);
    }

    #[test]
    fn left_multiply_matches_dense() {
        let m = matrix_2x2();
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        m.left_multiply(&x, &mut y).unwrap();
        // [1,2] * [[1,2],[3,4]] = [7, 10]
        assert_eq!(y, [7.0, 10.0]);
    }

    #[test]
    fn right_multiply_matches_dense() {
        let m = matrix_2x2();
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        m.right_multiply(&x, &mut y).unwrap();
        // [[1,2],[3,4]] * [1,2]^T = [5, 11]^T
        assert_eq!(y, [5.0, 11.0]);
    }

    #[test]
    fn multiply_dimension_mismatch_is_an_error() {
        let m = matrix_2x2();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0, 0.0];
        assert!(m.left_multiply(&x, &mut y).is_err());
        assert!(m.right_multiply(&x, &mut y).is_err());
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut b = SparseMatrixBuilder::new(2, 3);
        b.push(0, 2, 5.0);
        b.push(1, 0, 7.0);
        let m = b.build();
        let t = m.transpose();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 7.0);
    }

    #[test]
    fn identity_and_zeros() {
        let i = SparseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let z = SparseMatrix::zeros(2, 5);
        assert_eq!(z.num_entries(), 0);
        assert_eq!(z.num_cols(), 5);
    }

    #[test]
    fn row_sums_and_scaled() {
        let m = matrix_2x2();
        assert_eq!(m.row_sums(), vec![3.0, 7.0]);
        let s = m.scaled(2.0);
        assert_eq!(s.get(1, 1), 8.0);
    }

    #[test]
    fn iter_yields_all_triplets() {
        let m = matrix_2x2();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets.len(), 4);
        assert!(triplets.contains(&(1, 0, 3.0)));
    }

    #[test]
    fn row_entries_iterator() {
        let m = matrix_2x2();
        let entries: Vec<_> = m.row_entries(1).collect();
        assert_eq!(
            entries,
            vec![Entry { col: 0, value: 3.0 }, Entry { col: 1, value: 4.0 }]
        );
    }
}
