//! Compressed sparse row (CSR) matrices.
//!
//! The CTMC generator matrices produced by the Arcade state-space composer are
//! extremely sparse (a handful of transitions per state), so all numerical
//! algorithms in this crate operate on a CSR representation built through
//! [`SparseMatrixBuilder`].

use serde::{Deserialize, Serialize};

use crate::error::CtmcError;
use crate::exec::ExecOptions;

/// Column-tile width of the cache-blocked scatter kernel.
///
/// `x * A` scatters into the output vector at the column indices of each row,
/// which for a large matrix walks the whole output between consecutive rows.
/// Restricting the scatter to one tile of this many columns at a time keeps
/// the active output slice (32 KiB of `f64`) resident in L1 while every row
/// streams past. Accumulation order per output column is unchanged —
/// increasing row order — so blocking never changes a single bit.
pub const SPMV_TILE_COLS: usize = 4096;

/// A single non-zero entry of a sparse matrix, used when iterating rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Column index of the entry.
    pub col: usize,
    /// Value of the entry.
    pub value: f64,
}

/// An immutable sparse matrix in compressed sparse row format.
///
/// Rows are stored contiguously; [`SparseMatrix::row`] returns the non-zero
/// entries of a row as a slice. The matrix is not required to be square, though
/// all CTMC uses in this crate are square.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    num_rows: usize,
    num_cols: usize,
    row_offsets: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Creates an empty matrix with the given dimensions and no non-zero entries.
    pub fn zeros(num_rows: usize, num_cols: usize) -> Self {
        SparseMatrix {
            num_rows,
            num_cols,
            row_offsets: vec![0; num_rows + 1],
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an identity matrix of the given size.
    pub fn identity(n: usize) -> Self {
        let mut builder = SparseMatrixBuilder::new(n, n);
        for i in 0..n {
            builder.push(i, i, 1.0);
        }
        builder.build()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of explicitly stored (non-zero) entries.
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// Returns the non-zero entries of row `row` as parallel slices of column
    /// indices and values.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows()`.
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        let start = self.row_offsets[row];
        let end = self.row_offsets[row + 1];
        (&self.cols[start..end], &self.values[start..end])
    }

    /// Returns an iterator over the entries of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows()`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = Entry> + '_ {
        let (cols, values) = self.row(row);
        cols.iter()
            .zip(values.iter())
            .map(|(&col, &value)| Entry { col, value })
    }

    /// Looks up the entry at `(row, col)`, returning `0.0` if it is not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.num_rows {
            return 0.0;
        }
        let (cols, values) = self.row(row);
        match cols.binary_search(&col) {
            Ok(idx) => values[idx],
            Err(_) => 0.0,
        }
    }

    /// Computes `y = x * A` (row-vector times matrix) and stores the result in `y`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != num_rows()` or
    /// `y.len() != num_cols()`.
    pub fn left_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), CtmcError> {
        if x.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: x.len(),
            });
        }
        if y.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: y.len(),
            });
        }
        y.iter_mut().for_each(|v| *v = 0.0);
        for (row, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, values) = self.row(row);
            for (c, v) in cols.iter().zip(values.iter()) {
                y[*c] += xi * v;
            }
        }
        Ok(())
    }

    /// Computes `y = x * A` with the cache-blocked scatter kernel.
    ///
    /// Bit-identical to [`SparseMatrix::left_multiply`] for every input: the
    /// kernel tiles the output columns ([`SPMV_TILE_COLS`] at a time) and
    /// streams all rows through each tile with monotone per-row cursors, so
    /// each output column still accumulates its contributions in increasing
    /// row order. Worth it once the output no longer fits in L1; for small
    /// matrices prefer the plain kernel.
    ///
    /// # Errors
    ///
    /// Same dimension checks as [`SparseMatrix::left_multiply`].
    pub fn left_multiply_blocked(&self, x: &[f64], y: &mut [f64]) -> Result<(), CtmcError> {
        if x.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: x.len(),
            });
        }
        if y.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: y.len(),
            });
        }
        self.scatter_columns(x, y, 0, false);
        Ok(())
    }

    /// Scatter kernel shared by the blocked serial path and the column shards
    /// of the exec paths: fills `shard` (output columns
    /// `c0 .. c0 + shard.len()`) with the matching slice of `x * A`,
    /// tile by tile so the active output stays cache-resident.
    ///
    /// Every row's slice inside the shard's column range is located with one
    /// binary search up front; after that the per-row cursors only ever
    /// advance, so tiling costs O(rows) per tile on top of the entries
    /// actually scattered. Per output column the accumulation order is
    /// increasing row order — exactly the serial kernel — for any `c0`,
    /// shard width or tile width.
    ///
    /// When `track_delta` is set the kernel also returns
    /// `max |shard[j] - x[c0 + j]|`, folded tile by tile while the freshly
    /// written slice is still hot (callers guarantee a square matrix). The
    /// per-element differences are taken from bit-identical values and merged
    /// with `f64::max`, which is order-independent, so the returned norm is
    /// the same for every shard and tile layout.
    fn scatter_columns(&self, x: &[f64], shard: &mut [f64], c0: usize, track_delta: bool) -> f64 {
        shard.iter_mut().for_each(|v| *v = 0.0);
        let c1 = c0 + shard.len();
        // Per-row cursor into the entries of the row at column >= the current
        // tile start; rows are sorted by column so one search suffices.
        let mut cursor: Vec<usize> = (0..self.num_rows)
            .map(|row| {
                let start = self.row_offsets[row];
                let end = self.row_offsets[row + 1];
                start + self.cols[start..end].partition_point(|&c| c < c0)
            })
            .collect();
        let mut delta = 0.0f64;
        let mut t0 = c0;
        while t0 < c1 {
            let t1 = (t0 + SPMV_TILE_COLS).min(c1);
            for (row, &xi) in x.iter().enumerate() {
                let mut idx = cursor[row];
                let end = self.row_offsets[row + 1];
                if xi == 0.0 {
                    // Matches the serial kernel's skip; the cursor still has
                    // to move past this tile.
                    while idx < end && self.cols[idx] < t1 {
                        idx += 1;
                    }
                } else {
                    while idx < end && self.cols[idx] < t1 {
                        shard[self.cols[idx] - c0] += xi * self.values[idx];
                        idx += 1;
                    }
                }
                cursor[row] = idx;
            }
            if track_delta {
                for (out, xi) in shard[t0 - c0..t1 - c0].iter().zip(x[t0..t1].iter()) {
                    delta = delta.max((out - xi).abs());
                }
            }
            t0 = t1;
        }
        delta
    }

    /// Computes `y = A * x` (matrix times column-vector) and stores the result in `y`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != num_cols()` or
    /// `y.len() != num_rows()`.
    pub fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), CtmcError> {
        if x.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: x.len(),
            });
        }
        if y.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: y.len(),
            });
        }
        for (row, out) in y.iter_mut().enumerate() {
            let (cols, values) = self.row(row);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(values.iter()) {
                acc += v * x[*c];
            }
            *out = acc;
        }
        Ok(())
    }

    /// Computes `y = x * A` sharded across the workers of `exec`.
    ///
    /// Each worker owns a contiguous range of *output columns* and accumulates
    /// every column of its range in increasing row order — exactly the
    /// accumulation order of the serial kernel — so the result is
    /// bit-identical to [`SparseMatrix::left_multiply`] for any thread count.
    /// Small matrices (fewer than [`crate::exec::MIN_PARALLEL_WORK`] stored
    /// entries) take the serial path directly.
    ///
    /// # Errors
    ///
    /// Same dimension checks as [`SparseMatrix::left_multiply`].
    pub fn left_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError> {
        let workers = exec.workers_for(self.num_entries()).min(self.num_cols);
        if workers <= 1 {
            if self.num_cols > SPMV_TILE_COLS {
                return self.left_multiply_blocked(x, y);
            }
            return self.left_multiply(x, y);
        }
        if x.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: x.len(),
            });
        }
        if y.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: y.len(),
            });
        }
        let chunk = crate::exec::chunk_len(self.num_cols, workers);
        std::thread::scope(|scope| {
            for (i, shard) in y.chunks_mut(chunk).enumerate() {
                let c0 = i * chunk;
                scope.spawn(move || {
                    self.scatter_columns(x, shard, c0, false);
                });
            }
        });
        Ok(())
    }

    /// Computes `y = x * A` and returns `max_c |y[c] - x[c]|` in the same
    /// sweep, sharded across the workers of `exec`.
    ///
    /// This is the one-pass kernel behind the iterative stationary solvers:
    /// the successive-iterate delta is folded per column tile while the
    /// freshly scattered slice is still cache-hot, instead of re-walking the
    /// two vectors after the multiply. `y` is bit-identical to
    /// [`SparseMatrix::left_multiply`] and the returned norm is bit-identical
    /// for every thread count (per-shard partial maxima merge with
    /// `f64::max`, which is order-independent).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if the matrix is not square
    /// (the delta pairs output column `c` with input row `c`), or on the same
    /// length checks as [`SparseMatrix::left_multiply`].
    pub fn left_multiply_delta_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<f64, CtmcError> {
        if self.num_rows != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: self.num_cols,
            });
        }
        if x.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: x.len(),
            });
        }
        if y.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: y.len(),
            });
        }
        let workers = exec.workers_for(self.num_entries()).min(self.num_cols);
        if workers <= 1 {
            return Ok(self.scatter_columns(x, y, 0, true));
        }
        let chunk = crate::exec::chunk_len(self.num_cols, workers);
        let delta = std::thread::scope(|scope| {
            let handles: Vec<_> = y
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, shard)| {
                    let c0 = i * chunk;
                    scope.spawn(move || self.scatter_columns(x, shard, c0, true))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter shard panicked"))
                .fold(0.0f64, f64::max)
        });
        Ok(delta)
    }

    /// Computes `y = A * x` sharded across the workers of `exec`.
    ///
    /// Rows are independent in this product, so each worker takes a
    /// contiguous row range and fills its slice of `y`; per-row accumulation
    /// order is untouched and the result is bit-identical to
    /// [`SparseMatrix::right_multiply`] for any thread count.
    ///
    /// # Errors
    ///
    /// Same dimension checks as [`SparseMatrix::right_multiply`].
    pub fn right_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError> {
        let workers = exec.workers_for(self.num_entries()).min(self.num_rows);
        if workers <= 1 {
            return self.right_multiply(x, y);
        }
        if x.len() != self.num_cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_cols,
                actual: x.len(),
            });
        }
        if y.len() != self.num_rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_rows,
                actual: y.len(),
            });
        }
        let chunk = crate::exec::chunk_len(self.num_rows, workers);
        std::thread::scope(|scope| {
            for (i, shard) in y.chunks_mut(chunk).enumerate() {
                let start = i * chunk;
                scope.spawn(move || {
                    for (r, out) in shard.iter_mut().enumerate() {
                        let (cols, values) = self.row(start + r);
                        let mut acc = 0.0;
                        for (c, v) in cols.iter().zip(values.iter()) {
                            acc += v * x[*c];
                        }
                        *out = acc;
                    }
                });
            }
        });
        Ok(())
    }

    /// Returns the transpose of this matrix.
    ///
    /// Built CSR→CSC style in two counting passes (count column occupancy,
    /// prefix-sum into offsets, scatter) instead of re-sorting triplets
    /// through a builder; within every transposed row the entries stay in
    /// increasing original-row order.
    pub fn transpose(&self) -> SparseMatrix {
        let mut row_offsets = vec![0usize; self.num_cols + 1];
        for &c in &self.cols {
            row_offsets[c + 1] += 1;
        }
        for i in 0..self.num_cols {
            row_offsets[i + 1] += row_offsets[i];
        }
        let mut next = row_offsets[..self.num_cols].to_vec();
        let mut cols = vec![0usize; self.values.len()];
        let mut values = vec![0.0; self.values.len()];
        for row in 0..self.num_rows {
            let (rc, rv) = self.row(row);
            for (c, v) in rc.iter().zip(rv.iter()) {
                let slot = next[*c];
                next[*c] += 1;
                cols[slot] = row;
                values[slot] = *v;
            }
        }
        SparseMatrix {
            num_rows: self.num_cols,
            num_cols: self.num_rows,
            row_offsets,
            cols,
            values,
        }
    }

    /// Returns the sum of each row as a vector.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.num_rows)
            .map(|r| self.row(r).1.iter().sum())
            .collect()
    }

    /// Returns a new matrix where every stored value has been scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> SparseMatrix {
        let mut out = self.clone();
        out.values.iter_mut().for_each(|v| *v *= factor);
        out
    }

    /// Iterates over all stored entries as `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.num_rows).flat_map(move |row| {
            let (cols, values) = self.row(row);
            cols.iter()
                .zip(values.iter())
                .map(move |(&c, &v)| (row, c, v))
        })
    }
}

/// Incremental builder for [`SparseMatrix`].
///
/// Entries may be pushed in any order; duplicate `(row, col)` pairs are summed
/// when the matrix is built, which is convenient when accumulating rates of
/// parallel transitions between the same pair of states.
#[derive(Debug, Clone, Default)]
pub struct SparseMatrixBuilder {
    num_rows: usize,
    num_cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl SparseMatrixBuilder {
    /// Creates a builder for a matrix with the given dimensions.
    pub fn new(num_rows: usize, num_cols: usize) -> Self {
        SparseMatrixBuilder {
            num_rows,
            num_cols,
            triplets: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`. Values pushed to the same coordinates are summed.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds; the caller is expected to have
    /// validated indices (the higher-level [`crate::CtmcBuilder`] returns errors
    /// instead of panicking).
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.num_rows,
            "row {row} out of bounds ({} rows)",
            self.num_rows
        );
        assert!(
            col < self.num_cols,
            "col {col} out of bounds ({} cols)",
            self.num_cols
        );
        self.triplets.push((row, col, value));
    }

    /// Number of triplets pushed so far (before duplicate merging).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// Returns `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Builds the CSR matrix, merging duplicate coordinates by summation and
    /// dropping entries that cancel to exactly zero.
    pub fn build(mut self) -> SparseMatrix {
        self.triplets.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_offsets = vec![0usize; self.num_rows + 1];
        let mut cols = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());

        let mut idx = 0;
        let triplets = &self.triplets;
        for row in 0..self.num_rows {
            while idx < triplets.len() && triplets[idx].0 == row {
                let col = triplets[idx].1;
                let mut value = 0.0;
                while idx < triplets.len() && triplets[idx].0 == row && triplets[idx].1 == col {
                    value += triplets[idx].2;
                    idx += 1;
                }
                if value != 0.0 {
                    cols.push(col);
                    values.push(value);
                }
            }
            row_offsets[row + 1] = cols.len();
        }

        SparseMatrix {
            num_rows: self.num_rows,
            num_cols: self.num_cols,
            row_offsets,
            cols,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_2x2() -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 2.0);
        b.push(1, 0, 3.0);
        b.push(1, 1, 4.0);
        b.build()
    }

    #[test]
    fn builds_and_reads_entries() {
        let m = matrix_2x2();
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m.num_entries(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(1, 5), 0.0);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let mut b = SparseMatrixBuilder::new(2, 2);
        b.push(0, 1, 1.5);
        b.push(0, 1, 2.5);
        b.push(1, 0, 1.0);
        let m = b.build();
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.num_entries(), 2);
    }

    #[test]
    fn entries_that_cancel_are_dropped() {
        let mut b = SparseMatrixBuilder::new(1, 2);
        b.push(0, 0, 2.0);
        b.push(0, 0, -2.0);
        b.push(0, 1, 1.0);
        let m = b.build();
        assert_eq!(m.num_entries(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut b = SparseMatrixBuilder::new(4, 4);
        b.push(0, 3, 1.0);
        b.push(3, 0, 2.0);
        let m = b.build();
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row(2).0.len(), 0);
        assert_eq!(m.get(0, 3), 1.0);
        assert_eq!(m.get(3, 0), 2.0);
    }

    #[test]
    fn left_multiply_matches_dense() {
        let m = matrix_2x2();
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        m.left_multiply(&x, &mut y).unwrap();
        // [1,2] * [[1,2],[3,4]] = [7, 10]
        assert_eq!(y, [7.0, 10.0]);
    }

    #[test]
    fn right_multiply_matches_dense() {
        let m = matrix_2x2();
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        m.right_multiply(&x, &mut y).unwrap();
        // [[1,2],[3,4]] * [1,2]^T = [5, 11]^T
        assert_eq!(y, [5.0, 11.0]);
    }

    #[test]
    fn multiply_dimension_mismatch_is_an_error() {
        let m = matrix_2x2();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0, 0.0];
        assert!(m.left_multiply(&x, &mut y).is_err());
        assert!(m.right_multiply(&x, &mut y).is_err());
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut b = SparseMatrixBuilder::new(2, 3);
        b.push(0, 2, 5.0);
        b.push(1, 0, 7.0);
        let m = b.build();
        let t = m.transpose();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 7.0);
    }

    #[test]
    fn identity_and_zeros() {
        let i = SparseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let z = SparseMatrix::zeros(2, 5);
        assert_eq!(z.num_entries(), 0);
        assert_eq!(z.num_cols(), 5);
    }

    #[test]
    fn row_sums_and_scaled() {
        let m = matrix_2x2();
        assert_eq!(m.row_sums(), vec![3.0, 7.0]);
        let s = m.scaled(2.0);
        assert_eq!(s.get(1, 1), 8.0);
    }

    #[test]
    fn iter_yields_all_triplets() {
        let m = matrix_2x2();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets.len(), 4);
        assert!(triplets.contains(&(1, 0, 3.0)));
    }

    #[test]
    fn get_binary_searches_sorted_rows() {
        // A row with many columns: `get` must find every stored entry and
        // return zero for the gaps (the builder sorts each row by column, so
        // lookups binary-search rather than scan).
        let mut b = SparseMatrixBuilder::new(2, 1000);
        for c in (0..1000).step_by(7) {
            b.push(0, c, c as f64 + 1.0);
        }
        let m = b.build();
        for c in 0..1000 {
            let expected = if c % 7 == 0 { c as f64 + 1.0 } else { 0.0 };
            assert_eq!(m.get(0, c), expected, "col {c}");
        }
        // Out-of-range coordinates are simply absent.
        assert_eq!(m.get(0, 5000), 0.0);
        assert_eq!(m.get(7, 0), 0.0);
    }

    /// Deterministic pseudo-random sparse matrix large enough to clear the
    /// parallel-work threshold.
    fn large_random_matrix(rows: usize, cols: usize, seed: u64) -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(rows, cols);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..(crate::exec::MIN_PARALLEL_WORK * 2) {
            let r = next() as usize % rows;
            let c = next() as usize % cols;
            let v = (next() % 1000) as f64 / 499.0 - 1.0;
            b.push(r, c, v);
        }
        b.build()
    }

    #[test]
    fn exec_kernels_are_bit_identical_to_serial() {
        let m = large_random_matrix(300, 240, 42);
        let x_left: Vec<f64> = (0..300).map(|i| (i as f64 * 0.37).sin()).collect();
        let x_right: Vec<f64> = (0..240).map(|i| (i as f64 * 0.11).cos()).collect();

        let mut serial_left = vec![0.0; 240];
        m.left_multiply(&x_left, &mut serial_left).unwrap();
        let mut serial_right = vec![0.0; 300];
        m.right_multiply(&x_right, &mut serial_right).unwrap();

        for threads in [1usize, 2, 3, 4, 8] {
            let exec = ExecOptions::with_threads(threads);
            let mut y = vec![f64::NAN; 240];
            m.left_multiply_exec(&x_left, &mut y, &exec).unwrap();
            assert_eq!(y, serial_left, "left, {threads} threads");
            let mut y = vec![f64::NAN; 300];
            m.right_multiply_exec(&x_right, &mut y, &exec).unwrap();
            assert_eq!(y, serial_right, "right, {threads} threads");
        }
    }

    #[test]
    fn exec_kernels_share_the_dimension_checks() {
        let m = matrix_2x2();
        let exec = ExecOptions::with_threads(4);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0, 0.0];
        assert!(m.left_multiply_exec(&x, &mut y, &exec).is_err());
        assert!(m.right_multiply_exec(&x, &mut y, &exec).is_err());
        let big = large_random_matrix(128, 96, 7);
        let mut wrong = vec![0.0; 95];
        assert!(big
            .left_multiply_exec(&vec![0.0; 128], &mut wrong, &exec)
            .is_err());
        assert!(big
            .right_multiply_exec(&vec![0.0; 96], &mut vec![0.0; 127], &exec)
            .is_err());
    }

    #[test]
    fn transpose_counting_pass_keeps_rows_sorted() {
        let m = large_random_matrix(150, 220, 99);
        let t = m.transpose();
        assert_eq!(t.num_rows(), 220);
        assert_eq!(t.num_cols(), 150);
        assert_eq!(t.num_entries(), m.num_entries());
        // Every transposed row is sorted by column (= original row), which the
        // exec kernels and `get` rely on.
        for r in 0..t.num_rows() {
            let (cols, _) = t.row(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} not sorted");
        }
        // Entry-wise equality with the definition, and an involution.
        for (r, c, v) in m.iter() {
            assert_eq!(t.get(c, r), v);
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn blocked_left_multiply_is_bit_identical_across_tiles() {
        // Wide enough that the blocked kernel runs several column tiles.
        let cols = SPMV_TILE_COLS * 3 + 123;
        let m = large_random_matrix(500, cols, 1234);
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.29).sin()).collect();
        let mut reference = vec![0.0; cols];
        m.left_multiply(&x, &mut reference).unwrap();
        let mut blocked = vec![f64::NAN; cols];
        m.left_multiply_blocked(&x, &mut blocked).unwrap();
        assert_eq!(blocked, reference);
        // The exec path routes serial large multiplies through the blocked
        // kernel and shards wide ones over it; all stay bit-identical.
        for threads in [1usize, 2, 3, 4, 8] {
            let exec = ExecOptions::with_threads(threads);
            let mut y = vec![f64::NAN; cols];
            m.left_multiply_exec(&x, &mut y, &exec).unwrap();
            assert_eq!(y, reference, "{threads} threads");
        }
    }

    #[test]
    fn fused_delta_matches_the_two_pass_computation() {
        let n = SPMV_TILE_COLS + 700;
        let m = large_random_matrix(n, n, 77);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos() + 1.1).collect();
        let mut reference = vec![0.0; n];
        m.left_multiply(&x, &mut reference).unwrap();
        let expected_delta = reference
            .iter()
            .zip(x.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        for threads in [1usize, 2, 3, 4, 8] {
            let exec = ExecOptions::with_threads(threads);
            let mut y = vec![f64::NAN; n];
            let delta = m.left_multiply_delta_exec(&x, &mut y, &exec).unwrap();
            assert_eq!(y, reference, "{threads} threads");
            assert_eq!(delta, expected_delta, "{threads} threads");
        }
    }

    #[test]
    fn fused_delta_requires_a_square_matrix() {
        let m = large_random_matrix(128, 96, 5);
        let mut y = vec![0.0; 96];
        assert!(m
            .left_multiply_delta_exec(&vec![0.0; 128], &mut y, &ExecOptions::serial())
            .is_err());
    }

    #[test]
    fn row_entries_iterator() {
        let m = matrix_2x2();
        let entries: Vec<_> = m.row_entries(1).collect();
        assert_eq!(
            entries,
            vec![Entry { col: 0, value: 3.0 }, Entry { col: 1, value: 4.0 }]
        );
    }
}
