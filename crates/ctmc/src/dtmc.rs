//! Discrete-time Markov chains derived from CTMCs.
//!
//! Both the uniformised chain (used by transient analysis) and the embedded
//! jump chain (used by the reducible steady-state solver) are DTMCs. The
//! [`Dtmc`] type exposes them as first-class objects with their own transient
//! and unbounded-reachability computations, which is also useful for testing
//! the CTMC algorithms against step-wise references.

use serde::{Deserialize, Serialize};

use crate::error::CtmcError;
use crate::markov::{Ctmc, StateIndex};
use crate::sparse::SparseMatrix;

/// A discrete-time Markov chain with a stochastic transition matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dtmc {
    transitions: SparseMatrix,
    initial: Vec<f64>,
}

impl Dtmc {
    /// Creates a DTMC from a transition probability matrix and initial distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not square, a row does not sum to one
    /// (within `1e-9`; rows summing to zero are treated as absorbing and allowed),
    /// or the initial distribution is invalid.
    pub fn new(transitions: SparseMatrix, initial: Vec<f64>) -> Result<Self, CtmcError> {
        let n = transitions.num_rows();
        if transitions.num_cols() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: transitions.num_cols(),
            });
        }
        if initial.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: initial.len(),
            });
        }
        for (row, sum) in transitions.row_sums().into_iter().enumerate() {
            if sum != 0.0 && (sum - 1.0).abs() > 1e-9 {
                return Err(CtmcError::InvalidArgument {
                    reason: format!("row {row} of the transition matrix sums to {sum}"),
                });
            }
        }
        let total: f64 = initial.iter().sum();
        if initial.iter().any(|p| *p < 0.0) || (total - 1.0).abs() > 1e-9 {
            return Err(CtmcError::InvalidInitialDistribution {
                reason: format!("initial distribution sums to {total}"),
            });
        }
        Ok(Dtmc {
            transitions,
            initial,
        })
    }

    /// The uniformised DTMC of a CTMC: `P = I + Q/q` with `q` the given
    /// uniformisation rate (must be at least the maximal exit rate).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Ctmc::uniformized_matrix`].
    pub fn uniformized(chain: &Ctmc, q: f64) -> Result<Self, CtmcError> {
        Dtmc::new(
            chain.uniformized_matrix(q)?,
            chain.initial_distribution().to_vec(),
        )
    }

    /// The embedded jump chain of a CTMC (absorbing CTMC states get self-loops).
    pub fn embedded(chain: &Ctmc) -> Self {
        Dtmc {
            transitions: chain.embedded_matrix(),
            initial: chain.initial_distribution().to_vec(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.num_rows()
    }

    /// The transition probability matrix.
    pub fn transition_matrix(&self) -> &SparseMatrix {
        &self.transitions
    }

    /// The initial distribution.
    pub fn initial_distribution(&self) -> &[f64] {
        &self.initial
    }

    /// Distribution after exactly `steps` steps.
    ///
    /// # Errors
    ///
    /// Propagates sparse-matrix dimension errors (none expected for a valid chain).
    pub fn distribution_after(&self, steps: usize) -> Result<Vec<f64>, CtmcError> {
        let mut current = self.initial.clone();
        let mut next = vec![0.0; self.num_states()];
        for _ in 0..steps {
            self.transitions.left_multiply(&current, &mut next)?;
            std::mem::swap(&mut current, &mut next);
        }
        Ok(current)
    }

    /// Probability of eventually reaching a state in `targets` (unbounded
    /// reachability), computed per starting state by value iteration.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateOutOfBounds`] for invalid target indices or
    /// [`CtmcError::NotConverged`] if value iteration fails to converge.
    pub fn reachability_probabilities(
        &self,
        targets: &[StateIndex],
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &t in targets {
            if t >= n {
                return Err(CtmcError::StateOutOfBounds {
                    state: t,
                    num_states: n,
                });
            }
            is_target[t] = true;
        }
        let mut x: Vec<f64> = is_target
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        let mut next = vec![0.0; n];
        for _ in 0..max_iterations {
            let mut max_delta: f64 = 0.0;
            for s in 0..n {
                if is_target[s] {
                    next[s] = 1.0;
                    continue;
                }
                let (cols, values) = self.transitions.row(s);
                let mut acc = 0.0;
                for (c, v) in cols.iter().zip(values.iter()) {
                    acc += v * x[*c];
                }
                max_delta = max_delta.max((acc - x[s]).abs());
                next[s] = acc;
            }
            std::mem::swap(&mut x, &mut next);
            if max_delta < tolerance {
                return Ok(x);
            }
        }
        Err(CtmcError::NotConverged {
            solver: "dtmc reachability value iteration",
            iterations: max_iterations,
            residual: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::CtmcBuilder;
    use crate::sparse::SparseMatrixBuilder;

    fn stochastic(n: usize, entries: &[(usize, usize, f64)]) -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(n, n);
        for &(r, c, v) in entries {
            b.push(r, c, v);
        }
        b.build()
    }

    #[test]
    fn rejects_non_stochastic_rows_and_bad_initial() {
        let m = stochastic(2, &[(0, 1, 0.5), (1, 0, 1.0)]);
        assert!(Dtmc::new(m, vec![1.0, 0.0]).is_err());
        let m = stochastic(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(Dtmc::new(m.clone(), vec![0.5, 0.2]).is_err());
        assert!(Dtmc::new(m, vec![1.0]).is_err());
    }

    #[test]
    fn absorbing_rows_with_zero_sum_are_allowed() {
        let m = stochastic(2, &[(0, 1, 1.0)]);
        let d = Dtmc::new(m, vec![1.0, 0.0]).unwrap();
        assert_eq!(d.num_states(), 2);
    }

    #[test]
    fn distribution_after_steps() {
        let m = stochastic(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let d = Dtmc::new(m, vec![1.0, 0.0]).unwrap();
        assert_eq!(d.distribution_after(0).unwrap(), vec![1.0, 0.0]);
        assert_eq!(d.distribution_after(1).unwrap(), vec![0.0, 1.0]);
        assert_eq!(d.distribution_after(2).unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn uniformized_and_embedded_from_ctmc() {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, 2.0).unwrap();
        b.add_transition(1, 0, 4.0).unwrap();
        let chain = b.build().unwrap();
        let uni = Dtmc::uniformized(&chain, 5.0).unwrap();
        assert!((uni.transition_matrix().get(0, 1) - 0.4).abs() < 1e-12);
        assert!((uni.transition_matrix().get(0, 0) - 0.6).abs() < 1e-12);
        let emb = Dtmc::embedded(&chain);
        assert_eq!(emb.transition_matrix().get(0, 1), 1.0);
        assert_eq!(emb.transition_matrix().get(1, 0), 1.0);
        assert!(Dtmc::uniformized(&chain, 1.0).is_err());
    }

    #[test]
    fn gambler_ruin_reachability() {
        // States 0..=4, absorbing at 0 and 4, fair coin: P(reach 4 from k) = k/4.
        let mut entries = Vec::new();
        for k in 1..4usize {
            entries.push((k, k - 1, 0.5));
            entries.push((k, k + 1, 0.5));
        }
        let m = stochastic(5, &entries);
        let d = Dtmc::new(m, vec![0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let probs = d.reachability_probabilities(&[4], 1e-12, 100_000).unwrap();
        for (k, &p) in probs.iter().enumerate() {
            assert!((p - k as f64 / 4.0).abs() < 1e-6, "k={k}: {p}");
        }
        assert!(d.reachability_probabilities(&[9], 1e-12, 10).is_err());
    }
}
