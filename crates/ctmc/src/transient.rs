//! Transient analysis via uniformisation.
//!
//! The transient distribution of a CTMC is
//! `pi(t) = sum_k psi(k; q t) * pi(0) * P^k` where `P = I + Q/q` is the
//! uniformised DTMC and `psi` the Poisson pmf. [`TransientSolver`] evaluates
//! this sum with Fox–Glynn weights; it also computes time-bounded reachability
//! probabilities (the CSL `P=? [ a U<=t b ]` operator) by the standard
//! absorbing-state transformation, and the "expected total time spent per
//! state" vector used for accumulated-reward measures.

use arcade_telemetry::Recorder;

use crate::error::CtmcError;
use crate::exec::ExecOptions;
use crate::foxglynn::FoxGlynn;
use crate::markov::{Ctmc, StateIndex};

/// Options controlling the uniformisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Truncation error for the Poisson window (total discarded probability mass).
    pub epsilon: f64,
    /// Multiplier applied to the maximal exit rate to obtain the uniformisation
    /// rate; values slightly above one avoid a purely periodic uniformised DTMC.
    pub uniformization_factor: f64,
    /// Worker pool for the matrix–vector kernels. The sharded kernels are
    /// bit-identical to the serial ones, so this knob changes wall-clock time
    /// only, never results.
    pub exec: ExecOptions,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            epsilon: 1e-12,
            uniformization_factor: 1.02,
            exec: ExecOptions::default(),
        }
    }
}

/// Transient (time-dependent) analysis of a CTMC.
#[derive(Debug, Clone)]
pub struct TransientSolver<'a> {
    chain: &'a Ctmc,
    options: TransientOptions,
}

impl<'a> TransientSolver<'a> {
    /// Creates a solver with default options.
    pub fn new(chain: &'a Ctmc) -> Self {
        TransientSolver {
            chain,
            options: TransientOptions::default(),
        }
    }

    /// Creates a solver with explicit options.
    pub fn with_options(chain: &'a Ctmc, options: TransientOptions) -> Self {
        TransientSolver { chain, options }
    }

    /// The chain being analysed.
    pub fn chain(&self) -> &Ctmc {
        self.chain
    }

    /// Computes the state probability vector at time `t`, starting from the
    /// chain's initial distribution.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if `t` is negative or not finite.
    pub fn probabilities_at(&self, t: f64) -> Result<Vec<f64>, CtmcError> {
        Ok(self
            .probabilities_at_many(std::slice::from_ref(&t))?
            .pop()
            .expect("one time point yields one distribution"))
    }

    /// Computes state probability vectors at several time points over a
    /// *single* uniformisation pass.
    ///
    /// The uniformisation rate does not depend on the time bound, so all
    /// points share the sequence of DTMC powers `pi(0) * P^k`; each point
    /// keeps its own Fox–Glynn window and accumulates exactly the terms a
    /// fresh single-point computation would, making every returned vector
    /// bit-identical to [`TransientSolver::probabilities_at`] while the
    /// matrix–vector products are paid once instead of once per point.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if any time is negative or not
    /// finite and propagates numerics errors.
    pub fn probabilities_at_many(&self, times: &[f64]) -> Result<Vec<Vec<f64>>, CtmcError> {
        for &t in times {
            self.validate_time(t)?;
        }
        let initial = self.chain.initial_distribution().to_vec();
        if self.chain.max_exit_rate() == 0.0 || times.iter().all(|&t| t == 0.0) {
            return Ok(times.iter().map(|_| initial.clone()).collect());
        }
        let (q, p) = uniformize_matrix(self.chain, &self.options)?;
        let windows = self.poisson_windows(q, times)?;
        let global_right = max_right(&windows);
        let n = self.chain.num_states();
        let mut span = Recorder::current().span("transient");
        span.count("states", n as u64);
        span.count("steps", global_right as u64 + 1);
        span.count("points", times.len() as u64);

        let mut vk = initial.clone(); // pi(0) * P^k
        let mut results: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n]).collect();
        let mut scratch = vec![0.0; n];

        for k in 0..=global_right {
            for (window, result) in windows.iter().zip(results.iter_mut()) {
                let Some(fg) = window else { continue };
                let w = fg.weight(k);
                if w > 0.0 {
                    for s in 0..n {
                        result[s] += w * vk[s];
                    }
                }
            }
            if k < global_right {
                p.left_multiply_exec(&vk, &mut scratch, &self.options.exec)?;
                std::mem::swap(&mut vk, &mut scratch);
            }
        }
        for (result, &t) in results.iter_mut().zip(times.iter()) {
            if t == 0.0 {
                result.copy_from_slice(&initial);
            }
        }
        Ok(results)
    }

    /// Expected total time spent in each state during `[0, t]`:
    /// `L_s(t) = integral_0^t P[X_u = s] du`.
    ///
    /// Using uniformisation, `L(t) = (1/q) * sum_k (1 - F(k)) * pi(0) P^k` where
    /// `F` is the Poisson CDF. This vector dotted with a state-reward vector
    /// yields the expected accumulated reward (the CSRL `R=? [ C<=t ]` operator).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if `t` is negative or not finite.
    pub fn expected_sojourn_times(&self, t: f64) -> Result<Vec<f64>, CtmcError> {
        Ok(self
            .expected_sojourn_times_many(std::slice::from_ref(&t))?
            .pop()
            .expect("one time point yields one vector"))
    }

    /// Expected sojourn-time vectors for several horizons over a single
    /// uniformisation pass (see [`TransientSolver::probabilities_at_many`]
    /// for the sharing argument; each horizon accumulates exactly the terms
    /// of its own single-point computation, so results are bit-identical).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if any time is negative or not
    /// finite and propagates numerics errors.
    pub fn expected_sojourn_times_many(&self, times: &[f64]) -> Result<Vec<Vec<f64>>, CtmcError> {
        for &t in times {
            self.validate_time(t)?;
        }
        let n = self.chain.num_states();
        if self.chain.max_exit_rate() == 0.0 {
            // No transitions at all: time accumulates in the initial states.
            return Ok(times
                .iter()
                .map(|&t| {
                    self.chain
                        .initial_distribution()
                        .iter()
                        .map(|p| p * t)
                        .collect()
                })
                .collect());
        }
        if times.iter().all(|&t| t == 0.0) {
            return Ok(times.iter().map(|_| vec![0.0; n]).collect());
        }
        let (q, p) = uniformize_matrix(self.chain, &self.options)?;
        let windows = self.poisson_windows(q, times)?;
        let global_right = max_right(&windows);
        let mut span = Recorder::current().span("transient");
        span.count("states", n as u64);
        span.count("steps", global_right as u64 + 1);
        span.count("points", times.len() as u64);

        let mut vk = self.chain.initial_distribution().to_vec();
        let mut results: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n]).collect();
        let mut scratch = vec![0.0; n];
        let mut cdfs = vec![0.0; times.len()];

        // Beyond a point's own fg.right the factor (1 - F(k)) is negligible;
        // each point accumulates only within its window.
        for k in 0..=global_right {
            for ((window, result), cdf) in
                windows.iter().zip(results.iter_mut()).zip(cdfs.iter_mut())
            {
                let Some(fg) = window else { continue };
                if k > fg.right {
                    continue;
                }
                *cdf += fg.weight(k);
                let factor = (1.0 - *cdf).max(0.0) / q;
                // Note: the k-th term of the integral uses (1 - F(k)) where F includes k.
                if factor > 0.0 {
                    for s in 0..n {
                        result[s] += factor * vk[s];
                    }
                }
            }
            if k < global_right {
                p.left_multiply_exec(&vk, &mut scratch, &self.options.exec)?;
                std::mem::swap(&mut vk, &mut scratch);
            }
        }
        // Jumps below the truncation window (k < fg.left) have weight zero in the
        // Poisson CDF accumulator above, so their factor is exactly 1/q and they
        // are already included by the loop starting at k = 0.
        Ok(results)
    }

    /// Time-bounded reachability: the probability, per the initial distribution,
    /// of reaching a `goal` state within `t` while only passing through states
    /// satisfying `safe` (CSL `P=? [ safe U<=t goal ]`).
    ///
    /// States violating `safe` (and not in `goal`) cannot be traversed; goal
    /// states are absorbing.
    ///
    /// # Errors
    ///
    /// Returns an error if the masks have the wrong length or `t` is invalid.
    pub fn bounded_until(&self, safe: &[bool], goal: &[bool], t: f64) -> Result<f64, CtmcError> {
        let probs = self.bounded_until_per_state(safe, goal, t)?;
        Ok(self
            .chain
            .initial_distribution()
            .iter()
            .zip(probs.iter())
            .map(|(p0, p)| p0 * p)
            .sum())
    }

    /// Per-state time-bounded reachability probabilities (the probability of the
    /// until formula holding when starting deterministically in each state).
    ///
    /// # Errors
    ///
    /// Returns an error if the masks have the wrong length or `t` is invalid.
    pub fn bounded_until_per_state(
        &self,
        safe: &[bool],
        goal: &[bool],
        t: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        Ok(self
            .bounded_until_per_state_many(safe, goal, std::slice::from_ref(&t))?
            .pop()
            .expect("one time bound yields one vector"))
    }

    /// Per-state time-bounded reachability probabilities for several time
    /// bounds over a single uniformisation pass.
    ///
    /// The absorbing-state transformation and the sequence of backward DTMC
    /// products `P^k * 1_goal` depend only on the masks, so all bounds share
    /// them; each bound keeps its own Fox–Glynn window and the results are
    /// bit-identical to calling
    /// [`TransientSolver::bounded_until_per_state`] once per bound. This is
    /// the kernel behind whole survivability and reliability *curves*.
    ///
    /// # Errors
    ///
    /// Returns an error if the masks have the wrong length or any time bound
    /// is invalid.
    pub fn bounded_until_per_state_many(
        &self,
        safe: &[bool],
        goal: &[bool],
        times: &[f64],
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        for &t in times {
            self.validate_time(t)?;
        }
        let n = self.chain.num_states();
        if safe.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: safe.len(),
            });
        }
        if goal.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: goal.len(),
            });
        }

        // States that are neither safe nor goal act as sinks (the path is cut);
        // goal states are made absorbing so "reached by t" equals "in goal at t".
        let absorbing: Vec<bool> = (0..n).map(|s| goal[s] || !safe[s]).collect();
        let transformed = self.chain.make_absorbing(&absorbing)?;

        let indicator: Vec<f64> = (0..n).map(|s| if goal[s] { 1.0 } else { 0.0 }).collect();
        if transformed.max_exit_rate() == 0.0 || times.iter().all(|&t| t == 0.0) {
            // Every state absorbing after the transformation (nothing moves)
            // or no positive bound: the goal indicator answers every query.
            return Ok(times.iter().map(|_| indicator.clone()).collect());
        }

        // Work on the transposed uniformised matrix so that a single pass yields
        // the per-state probabilities: x_{k+1} = P * x_k with x_0 = 1_goal.
        let (q, p) = uniformize_matrix(&transformed, &self.options)?;
        let windows = self.poisson_windows(q, times)?;
        let global_right = max_right(&windows);
        let mut span = Recorder::current().span("transient");
        span.count("states", n as u64);
        span.count("steps", global_right as u64 + 1);
        span.count("points", times.len() as u64);

        let mut xk = indicator.clone();
        let mut results: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n]).collect();
        let mut scratch = vec![0.0; n];
        for k in 0..=global_right {
            for (window, result) in windows.iter().zip(results.iter_mut()) {
                let Some(fg) = window else { continue };
                let w = fg.weight(k);
                if w > 0.0 {
                    for s in 0..n {
                        result[s] += w * xk[s];
                    }
                }
            }
            if k < global_right {
                p.right_multiply_exec(&xk, &mut scratch, &self.options.exec)?;
                std::mem::swap(&mut xk, &mut scratch);
            }
        }
        for (result, &t) in results.iter_mut().zip(times.iter()) {
            if t == 0.0 {
                result.copy_from_slice(&indicator);
                continue;
            }
            // Goal states trivially satisfy the formula; clamp for numerical noise.
            for s in 0..n {
                if goal[s] {
                    result[s] = 1.0;
                }
                result[s] = result[s].clamp(0.0, 1.0);
            }
        }
        Ok(results)
    }

    /// Time-bounded reachability from the initial distribution for several
    /// time bounds over one shared uniformisation pass (the batched
    /// counterpart of [`TransientSolver::bounded_until`]).
    ///
    /// # Errors
    ///
    /// See [`TransientSolver::bounded_until_per_state_many`].
    pub fn bounded_until_many(
        &self,
        safe: &[bool],
        goal: &[bool],
        times: &[f64],
    ) -> Result<Vec<f64>, CtmcError> {
        let per_state = self.bounded_until_per_state_many(safe, goal, times)?;
        Ok(per_state
            .iter()
            .map(|probs| {
                self.chain
                    .initial_distribution()
                    .iter()
                    .zip(probs.iter())
                    .map(|(p0, p)| p0 * p)
                    .sum()
            })
            .collect())
    }

    /// Convenience wrapper for `P=? [ true U<=t goal ]` from the initial distribution.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`TransientSolver::bounded_until`].
    pub fn bounded_reachability(&self, goal: &[StateIndex], t: f64) -> Result<f64, CtmcError> {
        let n = self.chain.num_states();
        let mut goal_mask = vec![false; n];
        for &s in goal {
            if s >= n {
                return Err(CtmcError::StateOutOfBounds {
                    state: s,
                    num_states: n,
                });
            }
            goal_mask[s] = true;
        }
        self.bounded_until(&vec![true; n], &goal_mask, t)
    }

    /// One Fox–Glynn window per requested time point; `None` marks `t == 0`
    /// (no jumps, handled by the caller's indicator/initial shortcut).
    fn poisson_windows(&self, q: f64, times: &[f64]) -> Result<Vec<Option<FoxGlynn>>, CtmcError> {
        poisson_windows(q, times, self.options.epsilon)
    }

    fn validate_time(&self, t: f64) -> Result<(), CtmcError> {
        validate_time(t)
    }
}

fn poisson_windows(
    q: f64,
    times: &[f64],
    epsilon: f64,
) -> Result<Vec<Option<FoxGlynn>>, CtmcError> {
    times
        .iter()
        .map(|&t| {
            if t == 0.0 {
                Ok(None)
            } else {
                FoxGlynn::new(q * t, epsilon).map(Some)
            }
        })
        .collect()
}

fn validate_time(t: f64) -> Result<(), CtmcError> {
    if t < 0.0 || !t.is_finite() {
        return Err(CtmcError::InvalidArgument {
            reason: format!("time bound must be non-negative and finite, got {t}"),
        });
    }
    Ok(())
}

/// Matrix-free transient analysis: the uniformisation loop over any
/// [`LinearOperator`] instead of a materialised [`SparseMatrix`].
///
/// The solver is handed the rate operator `R` (off-diagonal rates; e.g. the
/// Kronecker sum of per-factor quotients from `arcade_lumping::product`) and
/// the per-state exit rates `E`, and applies the uniformised step
/// `x ↦ x + (x·R − x∘E)/q` (forward) or `x ↦ x + (R·x − E∘x)/q` (backward)
/// directly — the joint matrix is never stored, so coupling-free facility
/// transients run in `O(states)` memory. Absorbing-state transformations
/// (the time-bounded-until construction) are applied as masks on the fly.
///
/// The floating-point accumulation differs from the materialised
/// `P = I + Q/q` path (`I` and the diagonal are applied outside the operator
/// here), so results agree with [`TransientSolver`] to numerical tolerance
/// rather than bit-for-bit; for a fixed thread count the computation is
/// deterministic, and across thread counts it is bit-identical whenever the
/// operator's kernels are (the [`crate::ops`] contract).
///
/// [`LinearOperator`]: crate::ops::LinearOperator
/// [`SparseMatrix`]: crate::sparse::SparseMatrix
#[derive(Debug, Clone)]
pub struct OperatorTransientSolver<'a, O: crate::ops::LinearOperator> {
    rates: &'a O,
    exit_rates: Vec<f64>,
    options: TransientOptions,
}

impl<'a, O: crate::ops::LinearOperator> OperatorTransientSolver<'a, O> {
    /// Creates a solver for the rate operator `rates` with the given exit
    /// rates and default options.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if the operator is not
    /// square or `exit_rates` has the wrong length, and
    /// [`CtmcError::InvalidArgument`] for negative or non-finite exits.
    pub fn new(rates: &'a O, exit_rates: Vec<f64>) -> Result<Self, CtmcError> {
        Self::with_options(rates, exit_rates, TransientOptions::default())
    }

    /// Creates a solver with explicit options.
    ///
    /// # Errors
    ///
    /// See [`OperatorTransientSolver::new`].
    pub fn with_options(
        rates: &'a O,
        exit_rates: Vec<f64>,
        options: TransientOptions,
    ) -> Result<Self, CtmcError> {
        if rates.num_rows() != rates.num_cols() {
            return Err(CtmcError::DimensionMismatch {
                expected: rates.num_rows(),
                actual: rates.num_cols(),
            });
        }
        if exit_rates.len() != rates.num_rows() {
            return Err(CtmcError::DimensionMismatch {
                expected: rates.num_rows(),
                actual: exit_rates.len(),
            });
        }
        if exit_rates.iter().any(|&e| !e.is_finite() || e < 0.0) {
            return Err(CtmcError::InvalidArgument {
                reason: "exit rates must be non-negative and finite".to_string(),
            });
        }
        Ok(OperatorTransientSolver {
            rates,
            exit_rates,
            options,
        })
    }

    fn num_states(&self) -> usize {
        self.exit_rates.len()
    }

    fn validate_initial(&self, initial: &[f64]) -> Result<(), CtmcError> {
        if initial.len() != self.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states(),
                actual: initial.len(),
            });
        }
        Ok(())
    }

    /// Uniformisation rate over the non-absorbing states (`None` for "all
    /// states absorbing": nothing ever moves).
    fn uniformization_rate(&self, absorbing: Option<&[bool]>) -> Result<Option<f64>, CtmcError> {
        let factor = self.options.uniformization_factor;
        if !factor.is_finite() || factor < 1.0 {
            return Err(CtmcError::InvalidArgument {
                reason: format!("uniformisation factor must be finite and >= 1, got {factor}"),
            });
        }
        let max_exit = self
            .exit_rates
            .iter()
            .enumerate()
            .filter(|(s, _)| absorbing.is_none_or(|mask| !mask[*s]))
            .map(|(_, &e)| e)
            .fold(0.0f64, f64::max);
        Ok((max_exit > 0.0).then_some(max_exit * factor))
    }

    /// One forward uniformised step `y = x · P` with `P = I + Q/q`.
    fn forward_step(
        &self,
        x: &[f64],
        y: &mut [f64],
        scratch: &mut [f64],
        q: f64,
    ) -> Result<(), CtmcError> {
        self.rates
            .left_multiply_exec(x, scratch, &self.options.exec)?;
        for s in 0..x.len() {
            y[s] = x[s] + (scratch[s] - x[s] * self.exit_rates[s]) / q;
        }
        Ok(())
    }

    /// One backward uniformised step `y = P' · x`.
    fn backward_step(
        &self,
        x: &[f64],
        y: &mut [f64],
        scratch: &mut [f64],
        q: f64,
        absorbing: Option<&[bool]>,
    ) -> Result<(), CtmcError> {
        self.rates
            .right_multiply_exec(x, scratch, &self.options.exec)?;
        for s in 0..x.len() {
            let frozen = absorbing.is_some_and(|mask| mask[s]);
            y[s] = if frozen {
                x[s]
            } else {
                x[s] + (scratch[s] - self.exit_rates[s] * x[s]) / q
            };
        }
        Ok(())
    }

    /// State probability vectors at several time points over a single
    /// matrix-free uniformisation pass, starting from `initial`.
    ///
    /// # Errors
    ///
    /// Rejects invalid times and dimension mismatches; propagates numerics
    /// errors.
    pub fn probabilities_at_many(
        &self,
        initial: &[f64],
        times: &[f64],
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        self.validate_initial(initial)?;
        for &t in times {
            validate_time(t)?;
        }
        let Some(q) = self.uniformization_rate(None)? else {
            return Ok(times.iter().map(|_| initial.to_vec()).collect());
        };
        if times.iter().all(|&t| t == 0.0) {
            return Ok(times.iter().map(|_| initial.to_vec()).collect());
        }
        let windows = poisson_windows(q, times, self.options.epsilon)?;
        let global_right = max_right(&windows);
        let n = self.num_states();

        let mut vk = initial.to_vec();
        let mut results: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n]).collect();
        let mut next = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        for k in 0..=global_right {
            for (window, result) in windows.iter().zip(results.iter_mut()) {
                let Some(fg) = window else { continue };
                let w = fg.weight(k);
                if w > 0.0 {
                    for s in 0..n {
                        result[s] += w * vk[s];
                    }
                }
            }
            if k < global_right {
                self.forward_step(&vk, &mut next, &mut scratch, q)?;
                std::mem::swap(&mut vk, &mut next);
            }
        }
        for (result, &t) in results.iter_mut().zip(times.iter()) {
            if t == 0.0 {
                result.copy_from_slice(initial);
            }
        }
        Ok(results)
    }

    /// Expected sojourn-time vectors for several horizons (matrix-free; see
    /// [`TransientSolver::expected_sojourn_times_many`] for the quantity).
    ///
    /// # Errors
    ///
    /// See [`OperatorTransientSolver::probabilities_at_many`].
    pub fn expected_sojourn_times_many(
        &self,
        initial: &[f64],
        times: &[f64],
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        self.validate_initial(initial)?;
        for &t in times {
            validate_time(t)?;
        }
        let n = self.num_states();
        let Some(q) = self.uniformization_rate(None)? else {
            return Ok(times
                .iter()
                .map(|&t| initial.iter().map(|p| p * t).collect())
                .collect());
        };
        if times.iter().all(|&t| t == 0.0) {
            return Ok(times.iter().map(|_| vec![0.0; n]).collect());
        }
        let windows = poisson_windows(q, times, self.options.epsilon)?;
        let global_right = max_right(&windows);

        let mut vk = initial.to_vec();
        let mut results: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n]).collect();
        let mut next = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        let mut cdfs = vec![0.0; times.len()];
        for k in 0..=global_right {
            for ((window, result), cdf) in
                windows.iter().zip(results.iter_mut()).zip(cdfs.iter_mut())
            {
                let Some(fg) = window else { continue };
                if k > fg.right {
                    continue;
                }
                *cdf += fg.weight(k);
                let factor = (1.0 - *cdf).max(0.0) / q;
                if factor > 0.0 {
                    for s in 0..n {
                        result[s] += factor * vk[s];
                    }
                }
            }
            if k < global_right {
                self.forward_step(&vk, &mut next, &mut scratch, q)?;
                std::mem::swap(&mut vk, &mut next);
            }
        }
        Ok(results)
    }

    /// Per-state time-bounded reachability for several bounds, matrix-free
    /// (the absorbing-state transformation is a mask applied inside the
    /// uniformised step, never a modified matrix).
    ///
    /// # Errors
    ///
    /// See [`OperatorTransientSolver::probabilities_at_many`].
    pub fn bounded_until_per_state_many(
        &self,
        safe: &[bool],
        goal: &[bool],
        times: &[f64],
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        for &t in times {
            validate_time(t)?;
        }
        let n = self.num_states();
        if safe.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: safe.len(),
            });
        }
        if goal.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: goal.len(),
            });
        }
        let absorbing: Vec<bool> = (0..n).map(|s| goal[s] || !safe[s]).collect();
        let indicator: Vec<f64> = (0..n).map(|s| if goal[s] { 1.0 } else { 0.0 }).collect();
        let Some(q) = self.uniformization_rate(Some(&absorbing))? else {
            return Ok(times.iter().map(|_| indicator.clone()).collect());
        };
        if times.iter().all(|&t| t == 0.0) {
            return Ok(times.iter().map(|_| indicator.clone()).collect());
        }
        let windows = poisson_windows(q, times, self.options.epsilon)?;
        let global_right = max_right(&windows);

        let mut xk = indicator.clone();
        let mut results: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n]).collect();
        let mut next = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        for k in 0..=global_right {
            for (window, result) in windows.iter().zip(results.iter_mut()) {
                let Some(fg) = window else { continue };
                let w = fg.weight(k);
                if w > 0.0 {
                    for s in 0..n {
                        result[s] += w * xk[s];
                    }
                }
            }
            if k < global_right {
                self.backward_step(&xk, &mut next, &mut scratch, q, Some(&absorbing))?;
                std::mem::swap(&mut xk, &mut next);
            }
        }
        for (result, &t) in results.iter_mut().zip(times.iter()) {
            if t == 0.0 {
                result.copy_from_slice(&indicator);
                continue;
            }
            for s in 0..n {
                if goal[s] {
                    result[s] = 1.0;
                }
                result[s] = result[s].clamp(0.0, 1.0);
            }
        }
        Ok(results)
    }

    /// Time-bounded reachability from `initial` for several bounds.
    ///
    /// # Errors
    ///
    /// See [`OperatorTransientSolver::bounded_until_per_state_many`].
    pub fn bounded_until_many(
        &self,
        initial: &[f64],
        safe: &[bool],
        goal: &[bool],
        times: &[f64],
    ) -> Result<Vec<f64>, CtmcError> {
        self.validate_initial(initial)?;
        let per_state = self.bounded_until_per_state_many(safe, goal, times)?;
        Ok(per_state
            .iter()
            .map(|probs| initial.iter().zip(probs.iter()).map(|(p0, p)| p0 * p).sum())
            .collect())
    }
}

/// The time-independent half of uniformisation: the rate `q` and the DTMC
/// matrix `P = I + Q/q`. Splitting this from the Poisson window lets the
/// batched multi-time-point solvers share one matrix across all bounds.
///
/// Handles the degenerate all-absorbing chain (`max_exit_rate() == 0`)
/// explicitly: the naive `q = max_exit * factor` would be zero there, and
/// dividing by it would fill the uniformised matrix with NaNs. Since nothing
/// ever moves, `P = I` reproduces the exact semantics — the distribution
/// stays at the initial distribution for all `t` (the callers special-case
/// the matching point-mass Poisson window).
fn uniformize_matrix(
    chain: &Ctmc,
    options: &TransientOptions,
) -> Result<(f64, crate::sparse::SparseMatrix), CtmcError> {
    let factor = options.uniformization_factor;
    if !factor.is_finite() || factor < 1.0 {
        return Err(CtmcError::InvalidArgument {
            reason: format!("uniformisation factor must be finite and >= 1, got {factor}"),
        });
    }
    let max_exit = chain.max_exit_rate();
    if max_exit == 0.0 {
        // All states absorbing: any positive rate uniformises to P = I, and
        // the Poisson distribution over zero jumps is the point mass at 0.
        let p = chain.uniformized_matrix(1.0)?;
        return Ok((1.0, p));
    }
    let q = max_exit * factor;
    let p = chain.uniformized_matrix(q)?;
    Ok((q, p))
}

/// Largest retained jump count across the (non-degenerate) windows.
fn max_right(windows: &[Option<FoxGlynn>]) -> usize {
    windows
        .iter()
        .flatten()
        .map(|fg| fg.right)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::CtmcBuilder;

    /// Two-state repairable component: up (0) -> down (1) with rate `lambda`,
    /// down -> up with rate `mu`. The transient unavailability has the closed
    /// form `lambda/(lambda+mu) * (1 - exp(-(lambda+mu) t))` when starting up.
    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, lambda).unwrap();
        b.add_transition(1, 0, mu).unwrap();
        b.set_initial_state(0).unwrap();
        b.build().unwrap()
    }

    fn closed_form_unavailability(lambda: f64, mu: f64, t: f64) -> f64 {
        lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp())
    }

    #[test]
    fn transient_matches_closed_form_two_state() {
        let lambda = 0.002;
        let mu = 0.2;
        let chain = two_state(lambda, mu);
        let solver = TransientSolver::new(&chain);
        for &t in &[0.0, 0.5, 1.0, 5.0, 10.0, 50.0, 500.0] {
            let probs = solver.probabilities_at(t).unwrap();
            let expected = closed_form_unavailability(lambda, mu, t);
            assert!(
                (probs[1] - expected).abs() < 1e-9,
                "t={t}: got {}, expected {expected}",
                probs[1]
            );
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_from_alternative_initial_state() {
        let chain = two_state(1.0, 2.0).with_initial_state(1).unwrap();
        let solver = TransientSolver::new(&chain);
        let probs = solver.probabilities_at(0.0).unwrap();
        assert_eq!(probs, vec![0.0, 1.0]);
        // As t -> infinity the distribution approaches the steady state (2/3, 1/3).
        let probs = solver.probabilities_at(100.0).unwrap();
        assert!((probs[0] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_negative_or_nan_time() {
        let chain = two_state(1.0, 1.0);
        let solver = TransientSolver::new(&chain);
        assert!(solver.probabilities_at(-1.0).is_err());
        assert!(solver.probabilities_at(f64::NAN).is_err());
        assert!(solver.expected_sojourn_times(-2.0).is_err());
        assert!(solver
            .bounded_until(&[true, true], &[false, true], f64::INFINITY)
            .is_err());
    }

    #[test]
    fn absorbing_chain_probabilities() {
        // Pure death process 0 -> 1 -> 2 (absorbing).
        let mut b = CtmcBuilder::new(3);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(1, 2, 1.0).unwrap();
        let chain = b.build().unwrap();
        let solver = TransientSolver::new(&chain);
        let probs = solver.probabilities_at(100.0).unwrap();
        assert!(probs[2] > 0.999999);
    }

    #[test]
    fn bounded_reachability_matches_exponential_cdf() {
        // Single transition 0 -> 1 at rate r: P(reach 1 by t) = 1 - exp(-r t).
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, 0.5).unwrap();
        let chain = b.build().unwrap();
        let solver = TransientSolver::new(&chain);
        for &t in &[0.1, 1.0, 3.0, 10.0] {
            let p = solver.bounded_reachability(&[1], t).unwrap();
            let expected = 1.0 - (-0.5 * t).exp();
            assert!((p - expected).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn bounded_until_respects_unsafe_states() {
        // 0 -> 1 -> 2 and 0 -> 3 -> 2; state 1 is forbidden, so the only way to
        // reach 2 is via 3.
        let mut b = CtmcBuilder::new(4);
        b.add_transition(0, 1, 1.0).unwrap();
        b.add_transition(1, 2, 10.0).unwrap();
        b.add_transition(0, 3, 1.0).unwrap();
        b.add_transition(3, 2, 10.0).unwrap();
        let chain = b.build().unwrap();
        let solver = TransientSolver::new(&chain);

        let all_safe = vec![true; 4];
        let safe_no_1 = vec![true, false, true, true];
        let goal = vec![false, false, true, false];

        let p_all = solver.bounded_until(&all_safe, &goal, 50.0).unwrap();
        let p_restricted = solver.bounded_until(&safe_no_1, &goal, 50.0).unwrap();
        assert!(p_all > 0.999);
        // Only half of the initial flow may pass.
        assert!((p_restricted - 0.5).abs() < 1e-6, "got {p_restricted}");
    }

    #[test]
    fn bounded_until_at_time_zero_is_goal_indicator() {
        let chain = two_state(1.0, 1.0);
        let solver = TransientSolver::new(&chain);
        let per_state = solver
            .bounded_until_per_state(&[true, true], &[false, true], 0.0)
            .unwrap();
        assert_eq!(per_state, vec![0.0, 1.0]);
    }

    #[test]
    fn bounded_until_rejects_wrong_mask_lengths() {
        let chain = two_state(1.0, 1.0);
        let solver = TransientSolver::new(&chain);
        assert!(solver.bounded_until(&[true], &[false, true], 1.0).is_err());
        assert!(solver.bounded_until(&[true, true], &[false], 1.0).is_err());
        assert!(solver.bounded_reachability(&[5], 1.0).is_err());
    }

    #[test]
    fn sojourn_times_sum_to_t() {
        let chain = two_state(0.3, 0.7);
        let solver = TransientSolver::new(&chain);
        for &t in &[0.5, 2.0, 20.0] {
            let l = solver.expected_sojourn_times(t).unwrap();
            let total: f64 = l.iter().sum();
            assert!((total - t).abs() < 1e-8, "t={t}, total={total}");
        }
    }

    #[test]
    fn sojourn_times_match_integral_of_closed_form() {
        let lambda = 0.1;
        let mu = 1.0;
        let chain = two_state(lambda, mu);
        let solver = TransientSolver::new(&chain);
        let t = 5.0;
        let l = solver.expected_sojourn_times(t).unwrap();
        // integral_0^t P[down at u] du with P[down at u] = a(1 - e^{-bu}),
        // a = lambda/(lambda+mu), b = lambda+mu
        let a = lambda / (lambda + mu);
        let b = lambda + mu;
        let expected_down = a * (t - (1.0 - (-b * t).exp()) / b);
        assert!(
            (l[1] - expected_down).abs() < 1e-8,
            "got {}, expected {expected_down}",
            l[1]
        );
    }

    #[test]
    fn sojourn_times_on_transition_free_chain() {
        let mut b = CtmcBuilder::new(2);
        b.set_initial_distribution(vec![0.25, 0.75]).unwrap();
        let chain = b.build().unwrap();
        let solver = TransientSolver::new(&chain);
        let l = solver.expected_sojourn_times(8.0).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_absorbing_chain_is_handled_degenerately() {
        // A chain with no transitions at all: the uniformisation rate would be
        // zero; the probabilities must stay at the initial distribution for
        // every t, with no NaNs anywhere.
        let mut b = CtmcBuilder::new(3);
        b.set_initial_distribution(vec![0.5, 0.25, 0.25]).unwrap();
        let chain = b.build().unwrap();
        let solver = TransientSolver::new(&chain);
        for &t in &[0.0, 1.0, 1000.0] {
            let probs = solver.probabilities_at(t).unwrap();
            assert_eq!(probs, vec![0.5, 0.25, 0.25], "t={t}");
            assert!(probs.iter().all(|p| p.is_finite()));
        }
        // Bounded until: only the goal indicator matters.
        let p = solver
            .bounded_until(&[true, true, true], &[false, true, false], 10.0)
            .unwrap();
        assert!((p - 0.25).abs() < 1e-12);
        // Sojourn times accumulate linearly in the initial states.
        let l = solver.expected_sojourn_times(4.0).unwrap();
        assert_eq!(l, vec![2.0, 1.0, 1.0]);
    }

    #[test]
    fn bounded_until_with_all_goal_states_is_degenerate_after_absorption() {
        // Making every state absorbing (goal everywhere) used to drive the
        // uniformisation rate to zero; the answer is trivially 1 per state.
        let chain = two_state(1.0, 2.0);
        let solver = TransientSolver::new(&chain);
        let per_state = solver
            .bounded_until_per_state(&[true, true], &[true, true], 5.0)
            .unwrap();
        assert_eq!(per_state, vec![1.0, 1.0]);
    }

    #[test]
    fn invalid_uniformization_factor_is_rejected() {
        let chain = two_state(1.0, 2.0);
        for factor in [0.0, 0.5, f64::NAN, f64::INFINITY] {
            let solver = TransientSolver::with_options(
                &chain,
                TransientOptions {
                    uniformization_factor: factor,
                    ..Default::default()
                },
            );
            assert!(
                solver.probabilities_at(1.0).is_err(),
                "factor {factor} must be rejected"
            );
            assert!(solver
                .bounded_until(&[true, true], &[false, true], 1.0)
                .is_err());
        }
    }

    /// A 4-state chain with some structure (two components, coupled rates).
    fn four_state() -> Ctmc {
        let mut b = CtmcBuilder::new(4);
        b.add_transition(0, 1, 0.4).unwrap();
        b.add_transition(0, 2, 0.2).unwrap();
        b.add_transition(1, 0, 1.0).unwrap();
        b.add_transition(1, 3, 0.2).unwrap();
        b.add_transition(2, 0, 2.0).unwrap();
        b.add_transition(2, 3, 0.4).unwrap();
        b.add_transition(3, 1, 2.0).unwrap();
        b.add_transition(3, 2, 1.0).unwrap();
        b.set_initial_state(0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn operator_solver_matches_the_materialized_path() {
        // Driving the uniformisation loop through the rate matrix as a bare
        // LinearOperator (plus exit rates) must reproduce the classic
        // matrix-based solver to numerical tolerance on every measure.
        let chain = four_state();
        let reference = TransientSolver::new(&chain);
        let solver =
            OperatorTransientSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec()).unwrap();
        let times = [0.0, 0.3, 1.0, 4.0, 20.0];
        let initial = chain.initial_distribution().to_vec();

        let probs = solver.probabilities_at_many(&initial, &times).unwrap();
        let want = reference.probabilities_at_many(&times).unwrap();
        for (got, expected) in probs.iter().zip(want.iter()) {
            for (a, b) in got.iter().zip(expected.iter()) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }

        let sojourn = solver
            .expected_sojourn_times_many(&initial, &times)
            .unwrap();
        let want = reference.expected_sojourn_times_many(&times).unwrap();
        for (got, expected) in sojourn.iter().zip(want.iter()) {
            for (a, b) in got.iter().zip(expected.iter()) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }

        let safe = [true, true, false, true];
        let goal = [false, false, false, true];
        let per_state = solver
            .bounded_until_per_state_many(&safe, &goal, &times)
            .unwrap();
        let want = reference
            .bounded_until_per_state_many(&safe, &goal, &times)
            .unwrap();
        for (got, expected) in per_state.iter().zip(want.iter()) {
            for (a, b) in got.iter().zip(expected.iter()) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
        let scalars = solver
            .bounded_until_many(&initial, &safe, &goal, &times)
            .unwrap();
        let want = reference.bounded_until_many(&safe, &goal, &times).unwrap();
        for (a, b) in scalars.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn operator_solver_validates_inputs_and_degenerate_cases() {
        let chain = four_state();
        let rates = chain.rate_matrix();
        assert!(OperatorTransientSolver::new(rates, vec![0.0; 3]).is_err());
        assert!(OperatorTransientSolver::new(rates, vec![-1.0, 0.0, 0.0, 0.0]).is_err());

        let solver = OperatorTransientSolver::new(rates, chain.exit_rates().to_vec()).unwrap();
        assert!(solver.probabilities_at_many(&[1.0], &[1.0]).is_err());
        assert!(solver
            .probabilities_at_many(chain.initial_distribution(), &[-1.0])
            .is_err());
        assert!(solver
            .bounded_until_per_state_many(&[true; 3], &[true; 4], &[1.0])
            .is_err());

        // All-goal query: every state absorbing, answer is the indicator.
        let per_state = solver
            .bounded_until_per_state_many(&[true; 4], &[true; 4], &[5.0])
            .unwrap();
        assert_eq!(per_state, vec![vec![1.0; 4]]);

        // A transition-free operator: distributions never move.
        let empty = crate::sparse::SparseMatrixBuilder::new(2, 2).build();
        let frozen = OperatorTransientSolver::new(&empty, vec![0.0, 0.0]).unwrap();
        let probs = frozen
            .probabilities_at_many(&[0.25, 0.75], &[0.0, 7.0])
            .unwrap();
        assert_eq!(probs[1], vec![0.25, 0.75]);
        let sojourn = frozen
            .expected_sojourn_times_many(&[0.25, 0.75], &[4.0])
            .unwrap();
        assert_eq!(sojourn[0], vec![1.0, 3.0]);
    }

    #[test]
    fn many_time_points() {
        let chain = two_state(1.0, 1.0);
        let solver = TransientSolver::new(&chain);
        let results = solver.probabilities_at_many(&[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], vec![1.0, 0.0]);
    }

    #[test]
    fn batched_time_points_are_bit_identical_to_single_point_solves() {
        // The batched pass shares one Fox–Glynn window sequence across all
        // time points; every point must nevertheless reproduce its fresh
        // single-point computation exactly (same weights, same accumulation
        // order), including the unsorted grid and the t = 0 entry.
        let chain = two_state(0.3, 0.7);
        let solver = TransientSolver::new(&chain);
        let times = [2.5, 0.0, 0.4, 11.0, 1.7];

        let probs = solver.probabilities_at_many(&times).unwrap();
        let sojourn = solver.expected_sojourn_times_many(&times).unwrap();
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(probs[i], solver.probabilities_at(t).unwrap(), "t={t}");
            assert_eq!(
                sojourn[i],
                solver.expected_sojourn_times(t).unwrap(),
                "t={t}"
            );
        }

        let safe = [true, true];
        let goal = [false, true];
        let per_state = solver
            .bounded_until_per_state_many(&safe, &goal, &times)
            .unwrap();
        let scalars = solver.bounded_until_many(&safe, &goal, &times).unwrap();
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(
                per_state[i],
                solver.bounded_until_per_state(&safe, &goal, t).unwrap(),
                "t={t}"
            );
            assert_eq!(
                scalars[i],
                solver.bounded_until(&safe, &goal, t).unwrap(),
                "t={t}"
            );
        }

        // Empty batches are fine.
        assert!(solver.probabilities_at_many(&[]).unwrap().is_empty());
        assert!(solver
            .bounded_until_many(&safe, &goal, &[])
            .unwrap()
            .is_empty());
        // One bad point poisons the whole batch.
        assert!(solver.probabilities_at_many(&[1.0, -2.0]).is_err());
        assert!(solver
            .bounded_until_per_state_many(&safe, &goal, &[f64::NAN])
            .is_err());
    }
}
