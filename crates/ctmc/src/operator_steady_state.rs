//! Matrix-free steady-state analysis: iterative stationary solvers over any
//! [`LinearOperator`] instead of a materialised [`SparseMatrix`].
//!
//! The solver is handed the rate operator `R` (e.g. the Kronecker sum of
//! per-line quotient generators from `arcade_lumping::product`) and the
//! per-state exit rates `E`, and drives the balance equations
//! `pi_s E(s) = sum_{s'} pi_{s'} R[s'][s]` through `R`'s sharded left-multiply
//! kernel — the joint generator is never stored, so a facility product of
//! `k` line quotients solves in `O(states)` memory instead of
//! `O(transitions)`.
//!
//! Three methods are available: sharded damped Jacobi and power iteration
//! (the operator counterparts of [`crate::SteadyStateSolver`]'s sweeps, one
//! operator pass per iteration with the successive-iterate norm folded in),
//! and a restarted GMRES-style Krylov iteration on the normalised balance
//! equations, which converges in a handful of operator applies where the
//! stationary iterations need thousands on stiff chains (repair rates four
//! orders of magnitude above failure rates, as in the water-treatment
//! models).
//!
//! # Determinism
//!
//! All three methods are bit-identical for every thread count: the operator
//! applies are bit-identical by the [`crate::ops`] contract, the fused
//! update-and-norm passes merge per-shard maxima with the order-independent
//! `f64::max`, and every Krylov reduction (dot products, norms, the
//! re-orthogonalisation pass) runs serially in state-index order. Unlike the
//! materialised solver the floating-point accumulation differs from
//! [`crate::SteadyStateSolver`]'s (the diagonal is applied outside the
//! operator), so the two agree to numerical tolerance, not bit-for-bit.
//!
//! # Contract
//!
//! The caller guarantees the operator describes a single irreducible chain
//! (e.g. a product of irreducible factors). There is no BSCC decomposition
//! here — reducible chains belong on the materialised
//! [`crate::SteadyStateSolver`], which owns the graph analysis.
//!
//! [`LinearOperator`]: crate::ops::LinearOperator
//! [`SparseMatrix`]: crate::sparse::SparseMatrix

use arcade_telemetry::Recorder;
use serde::{Deserialize, Serialize};

use crate::error::CtmcError;
use crate::exec::ExecOptions;
use crate::ops::LinearOperator;
use crate::{DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE};

/// Iterative method used by [`OperatorSteadyStateSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OperatorSteadyStateMethod {
    /// Restarted GMRES on the normalised balance equations (default): the
    /// singular system `pi Q = 0` is made nonsingular by replacing one column
    /// with the normalisation constraint `sum pi = 1`, and the Krylov
    /// iteration solves it in few operator applies even on stiff chains.
    #[default]
    Krylov,
    /// Damped Jacobi iteration on the balance equations (the operator
    /// counterpart of [`crate::SteadyStateMethod::Jacobi`]). Robust and
    /// memory-minimal — three vectors — but needs many sweeps when rates are
    /// stiff; the place to fall back to when the Krylov restart memory
    /// (`restart + 2` vectors) is too dear.
    Jacobi,
    /// Power iteration on the uniformised DTMC `P = I + Q/q`, applied
    /// matrix-free.
    Power,
}

impl OperatorSteadyStateMethod {
    /// Stable identifier used in logs, stats and JSON reports.
    pub fn tier_name(&self) -> &'static str {
        match self {
            OperatorSteadyStateMethod::Krylov => "krylov-operator",
            OperatorSteadyStateMethod::Jacobi => "jacobi-operator",
            OperatorSteadyStateMethod::Power => "power-operator",
        }
    }
}

/// Headroom applied to the maximal exit rate when uniformising, matching the
/// materialised power iteration.
const UNIFORMIZATION_FACTOR: f64 = 1.02;

/// Damping of the Jacobi update, matching the materialised sweep.
const DAMPING: f64 = 0.5;

/// Default Krylov restart length: `restart + 2` basis vectors bound the
/// solver's memory at roughly `32 * num_states` doubles.
const DEFAULT_RESTART: usize = 30;

/// Matrix-free steady-state solver over a [`LinearOperator`] plus exit rates.
///
/// See the module docs for the determinism and irreducibility contract. The
/// builder mirrors [`crate::SteadyStateSolver`]:
///
/// ```
/// use ctmc::{ExecOptions, OperatorSteadyStateMethod, OperatorSteadyStateSolver};
/// use ctmc::sparse::SparseMatrixBuilder;
///
/// // A two-state repairable component as a bare operator: fail 0.002/h,
/// // repair 0.2/h.
/// let mut b = SparseMatrixBuilder::new(2, 2);
/// b.push(0, 1, 0.002);
/// b.push(1, 0, 0.2);
/// let rates = b.build();
/// let pi = OperatorSteadyStateSolver::new(&rates, vec![0.002, 0.2])
///     .unwrap()
///     .method(OperatorSteadyStateMethod::Krylov)
///     .exec(ExecOptions::serial())
///     .solve()
///     .unwrap();
/// assert!((pi[1] - 0.002 / 0.202).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct OperatorSteadyStateSolver<'a, O: LinearOperator> {
    rates: &'a O,
    exit_rates: Vec<f64>,
    method: OperatorSteadyStateMethod,
    tolerance: f64,
    max_iterations: usize,
    restart: usize,
    exec: ExecOptions,
    initial_guess: Option<Vec<f64>>,
    recorder: Recorder,
}

impl<'a, O: LinearOperator> OperatorSteadyStateSolver<'a, O> {
    /// Creates a solver for the rate operator `rates` with the given exit
    /// rates, default method (Krylov) and default tolerances.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] if the operator is not square
    /// or `exit_rates` has the wrong length, and
    /// [`CtmcError::InvalidArgument`] for negative or non-finite exits.
    pub fn new(rates: &'a O, exit_rates: Vec<f64>) -> Result<Self, CtmcError> {
        if rates.num_rows() != rates.num_cols() {
            return Err(CtmcError::DimensionMismatch {
                expected: rates.num_rows(),
                actual: rates.num_cols(),
            });
        }
        if exit_rates.len() != rates.num_rows() {
            return Err(CtmcError::DimensionMismatch {
                expected: rates.num_rows(),
                actual: exit_rates.len(),
            });
        }
        if exit_rates.iter().any(|&e| !e.is_finite() || e < 0.0) {
            return Err(CtmcError::InvalidArgument {
                reason: "exit rates must be non-negative and finite".to_string(),
            });
        }
        Ok(OperatorSteadyStateSolver {
            rates,
            exit_rates,
            method: OperatorSteadyStateMethod::default(),
            tolerance: DEFAULT_TOLERANCE,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            restart: DEFAULT_RESTART,
            exec: ExecOptions::default(),
            initial_guess: None,
            recorder: Recorder::current(),
        })
    }

    /// Selects the iterative method.
    pub fn method(mut self, method: OperatorSteadyStateMethod) -> Self {
        self.method = method;
        self
    }

    /// Overrides the telemetry recorder the solve reports spans and
    /// convergence probes to. Observability only — never changes results.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets the convergence tolerance: the maximum-norm threshold on the
    /// per-iteration change (Jacobi/power) or on the normalised-balance
    /// residual (Krylov).
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Caps the number of operator applies across the whole solve.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the Krylov restart length (ignored by Jacobi/power). The solver
    /// keeps `restart + 2` basis vectors, so this bounds its working memory.
    pub fn restart(mut self, restart: usize) -> Self {
        self.restart = restart.max(1);
        self
    }

    /// Selects the worker pool for the operator applies and the fused
    /// elementwise sweeps. Never changes results (module docs).
    pub fn exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Warm-starts the iteration from `guess` (nonnegative, finite; it is
    /// normalised, falling back to the uniform start when it carries no
    /// mass). The fixed point is unchanged — a good guess only shortens the
    /// iteration. For Kronecker-sum products the product of the factor
    /// stationary distributions is *exactly* stationary, so a warm-started
    /// solve converges in a handful of applies and acts as an independent
    /// validation of the product-form argument.
    pub fn initial_guess(mut self, guess: Vec<f64>) -> Self {
        self.initial_guess = Some(guess);
        self
    }

    /// Computes the stationary distribution.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NotConverged`] if the method fails to reach the
    /// requested tolerance within the iteration cap, and validation errors
    /// for a malformed initial guess.
    pub fn solve(&self) -> Result<Vec<f64>, CtmcError> {
        self.solve_counted().map(|(pi, _)| pi)
    }

    /// [`OperatorSteadyStateSolver::solve`] plus the number of operator
    /// applies performed — the cost unit of the matrix-free path and the
    /// observable a warm start shortens.
    ///
    /// # Errors
    ///
    /// See [`OperatorSteadyStateSolver::solve`].
    pub fn solve_counted(&self) -> Result<(Vec<f64>, usize), CtmcError> {
        let mut span = self.recorder.span("solve");
        span.count("states", self.num_states() as u64);
        let result = self.solve_counted_inner();
        if let Ok((_, applies)) = &result {
            span.count("iterations", *applies as u64);
            span.count("operator_applies", *applies as u64);
        }
        result
    }

    fn solve_counted_inner(&self) -> Result<(Vec<f64>, usize), CtmcError> {
        let start = self.start_vector()?;
        let max_exit = self.exit_rates.iter().copied().fold(0.0f64, f64::max);
        if max_exit <= 0.0 {
            // No transitions at all: every distribution is stationary; return
            // the (normalised) start, matching the materialised solvers.
            return Ok((start, 0));
        }
        match self.method {
            OperatorSteadyStateMethod::Jacobi => self.jacobi(start),
            OperatorSteadyStateMethod::Power => self.power(start, max_exit),
            OperatorSteadyStateMethod::Krylov => self.krylov(start, max_exit),
        }
    }

    /// Maximum absolute balance-equation residual of `pi` against the
    /// operator: `max_s |(pi R)[s] - pi_s E(s)|`. One sharded operator apply;
    /// an independent certificate of an externally computed stationary
    /// vector, bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::DimensionMismatch`] on a length mismatch.
    pub fn balance_residual(&self, pi: &[f64]) -> Result<f64, CtmcError> {
        let mut inflow = vec![0.0; self.num_states()];
        self.rates.left_multiply_exec(pi, &mut inflow, &self.exec)?;
        Ok(inflow
            .iter()
            .zip(pi.iter().zip(self.exit_rates.iter()))
            .map(|(&inf, (&p, &e))| (inf - p * e).abs())
            .fold(0.0f64, f64::max))
    }

    fn num_states(&self) -> usize {
        self.exit_rates.len()
    }

    /// The normalised starting vector: the validated initial guess when one
    /// is set and carries mass, the uniform distribution otherwise.
    fn start_vector(&self) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        if let Some(guess) = &self.initial_guess {
            if guess.len() != n {
                return Err(CtmcError::DimensionMismatch {
                    expected: n,
                    actual: guess.len(),
                });
            }
            if guess.iter().any(|&g| !g.is_finite() || g < 0.0) {
                return Err(CtmcError::InvalidArgument {
                    reason: "initial guess must be nonnegative and finite".to_string(),
                });
            }
            let total: f64 = guess.iter().sum();
            if total > 0.0 {
                return Ok(guess.iter().map(|g| g / total).collect());
            }
        }
        Ok(vec![1.0 / n as f64; n])
    }

    /// Fused elementwise update: writes `next[s] = update(s, inflow[s])` on
    /// the worker pool and returns the maximum of `delta(s, inflow[s])` —
    /// per-shard maxima merged with the order-independent `f64::max`, so both
    /// the vector and the norm are bit-identical for every thread count.
    fn fused_update<U, D>(&self, inflow: &[f64], next: &mut [f64], update: U, delta: D) -> f64
    where
        U: Fn(usize, f64) -> f64 + Sync,
        D: Fn(usize, f64) -> f64 + Sync,
    {
        let n = next.len();
        let workers = self.exec.workers_for(n).min(n.max(1));
        if workers <= 1 {
            let mut max_delta = 0.0f64;
            for (s, slot) in next.iter_mut().enumerate() {
                *slot = update(s, inflow[s]);
                max_delta = max_delta.max(delta(s, inflow[s]));
            }
            return max_delta;
        }
        let chunk = crate::exec::chunk_len(n, workers);
        std::thread::scope(|scope| {
            let update = &update;
            let delta = &delta;
            let handles: Vec<_> = next
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, shard)| {
                    let start = i * chunk;
                    scope.spawn(move || {
                        let mut max_delta = 0.0f64;
                        for (offset, slot) in shard.iter_mut().enumerate() {
                            let s = start + offset;
                            *slot = update(s, inflow[s]);
                            max_delta = max_delta.max(delta(s, inflow[s]));
                        }
                        max_delta
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no worker panicked"))
                .fold(0.0f64, f64::max)
        })
    }

    /// Damped Jacobi on the balance equations: one operator apply plus one
    /// fused elementwise sweep per iteration. The fixed point is unchanged by
    /// any diagonal entries the operator may carry (a self-loop contributes
    /// equally to both sides of the balance equation).
    fn jacobi(&self, start: Vec<f64>) -> Result<(Vec<f64>, usize), CtmcError> {
        let n = self.num_states();
        let mut pi = start;
        let mut next = vec![0.0; n];
        let mut inflow = vec![0.0; n];
        let exit = &self.exit_rates;
        let mut probe = self
            .recorder
            .probe("residual", OperatorSteadyStateMethod::Jacobi.tier_name());
        for iteration in 0..self.max_iterations {
            self.rates
                .left_multiply_exec(&pi, &mut inflow, &self.exec)?;
            let pi_ref = &pi;
            let max_delta = self.fused_update(
                &inflow,
                &mut next,
                |s, inf| {
                    if exit[s] <= 0.0 {
                        pi_ref[s]
                    } else {
                        DAMPING * (inf / exit[s]) + (1.0 - DAMPING) * pi_ref[s]
                    }
                },
                |s, inf| {
                    if exit[s] <= 0.0 {
                        0.0
                    } else {
                        (inf / exit[s] - pi_ref[s]).abs()
                    }
                },
            );
            probe.record(max_delta);
            std::mem::swap(&mut pi, &mut next);
            normalize(&mut pi);
            if max_delta < self.tolerance {
                return Ok((pi, iteration + 1));
            }
        }
        Err(CtmcError::NotConverged {
            solver: "jacobi-operator steady-state",
            iterations: self.max_iterations,
            residual: self.balance_residual(&pi)?,
        })
    }

    /// Power iteration on the uniformised DTMC, matrix-free: the step
    /// `pi + (pi R - pi ∘ E)/q` never forms `P`.
    fn power(&self, start: Vec<f64>, max_exit: f64) -> Result<(Vec<f64>, usize), CtmcError> {
        let n = self.num_states();
        let q = max_exit * UNIFORMIZATION_FACTOR;
        let mut pi = start;
        let mut next = vec![0.0; n];
        let mut inflow = vec![0.0; n];
        let exit = &self.exit_rates;
        let mut probe = self
            .recorder
            .probe("residual", OperatorSteadyStateMethod::Power.tier_name());
        for iteration in 0..self.max_iterations {
            self.rates
                .left_multiply_exec(&pi, &mut inflow, &self.exec)?;
            let pi_ref = &pi;
            let max_delta = self.fused_update(
                &inflow,
                &mut next,
                |s, inf| pi_ref[s] + (inf - pi_ref[s] * exit[s]) / q,
                |s, inf| ((inf - pi_ref[s] * exit[s]) / q).abs(),
            );
            probe.record(max_delta);
            std::mem::swap(&mut pi, &mut next);
            normalize(&mut pi);
            if max_delta < self.tolerance {
                return Ok((pi, iteration + 1));
            }
        }
        Err(CtmcError::NotConverged {
            solver: "power-operator steady-state",
            iterations: self.max_iterations,
            residual: self.balance_residual(&pi)?,
        })
    }

    /// Restarted GMRES on the normalised balance equations.
    ///
    /// The singular system `pi Q = 0` (with `Q = (R - diag E)/q`, scaled by
    /// the uniformisation rate so the residual norm is comparable across
    /// chains of any stiffness) is made nonsingular by replacing the column
    /// of the maximal-exit state `k` with the all-ones column — i.e. solve
    /// `pi Ã = e_k` where `(x Ã)[k] = sum_s x_s` and `(x Ã)[j] = (x Q)[j]`
    /// elsewhere. Because `Q`'s rows sum to zero, any solution satisfies
    /// *all* balance equations (the replaced one included) and sums to
    /// exactly one; for an irreducible chain it is the unique stationary
    /// vector.
    ///
    /// Determinism: the Arnoldi process re-orthogonalises with a second
    /// modified-Gram–Schmidt pass in fixed basis order, and every dot
    /// product and norm is a serial fold in state-index order; only the
    /// operator applies shard, and those are bit-identical by contract.
    fn krylov(&self, start: Vec<f64>, max_exit: f64) -> Result<(Vec<f64>, usize), CtmcError> {
        let n = self.num_states();
        let q = max_exit * UNIFORMIZATION_FACTOR;
        // First occurrence of the maximal exit rate: a deterministic pivot.
        let k = self
            .exit_rates
            .iter()
            .position(|&e| e == max_exit)
            .expect("max_exit is attained");
        let m = self.restart.min(n);
        let exit = &self.exit_rates;

        // One application of Ã to a row vector; counts one operator apply.
        let mut scratch = vec![0.0; n];
        let mut applies = 0usize;
        let mut x = start;
        let mut w = vec![0.0; n];
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        let mut residual_inf = f64::INFINITY;
        let mut probe = self
            .recorder
            .probe("residual", OperatorSteadyStateMethod::Krylov.tier_name());

        while applies < self.max_iterations {
            // True residual r = e_k - x Ã.
            apply_modified(self.rates, exit, q, k, &x, &mut w, &mut scratch, &self.exec)?;
            applies += 1;
            let mut r: Vec<f64> = w.iter().map(|v| -v).collect();
            r[k] += 1.0;
            residual_inf = r.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
            probe.record(residual_inf);
            if residual_inf < self.tolerance {
                clamp_normalize(&mut x);
                return Ok((x, applies));
            }
            let beta = norm2(&r);
            if beta == 0.0 {
                clamp_normalize(&mut x);
                return Ok((x, applies));
            }
            r.iter_mut().for_each(|v| *v /= beta);

            basis.clear();
            basis.push(r);
            // Upper-Hessenberg columns (rotated in place into R) and the
            // Givens-rotated right-hand side.
            let mut hcols: Vec<Vec<f64>> = Vec::with_capacity(m);
            let mut cs: Vec<f64> = Vec::with_capacity(m);
            let mut sn: Vec<f64> = Vec::with_capacity(m);
            let mut g = vec![0.0; m + 1];
            g[0] = beta;
            let mut cols = 0usize;
            let mut breakdown = false;

            for i in 0..m {
                if applies >= self.max_iterations {
                    break;
                }
                apply_modified(
                    self.rates,
                    exit,
                    q,
                    k,
                    &basis[i],
                    &mut w,
                    &mut scratch,
                    &self.exec,
                )?;
                applies += 1;
                // Modified Gram–Schmidt, twice, in fixed basis order: the
                // deterministic re-orthogonalisation that keeps the basis
                // orthogonal to working precision without any
                // scheduling-dependent pivoting.
                let mut h = vec![0.0; i + 2];
                for pass in 0..2 {
                    for (j, v) in basis.iter().enumerate().take(i + 1) {
                        let c = dot(&w, v);
                        if pass == 0 {
                            h[j] = c;
                        } else {
                            h[j] += c;
                        }
                        for (ws, vs) in w.iter_mut().zip(v.iter()) {
                            *ws -= c * vs;
                        }
                    }
                }
                let hnorm = norm2(&w);
                h[i + 1] = hnorm;
                // Apply the accumulated Givens rotations to the new column,
                // then compute the rotation that annihilates its subdiagonal.
                for j in 0..i {
                    let t = cs[j] * h[j] + sn[j] * h[j + 1];
                    h[j + 1] = -sn[j] * h[j] + cs[j] * h[j + 1];
                    h[j] = t;
                }
                let denom = (h[i] * h[i] + h[i + 1] * h[i + 1]).sqrt();
                if denom == 0.0 {
                    // The subspace is invariant and exhausted: stagnation.
                    breakdown = true;
                    break;
                }
                cs.push(h[i] / denom);
                sn.push(h[i + 1] / denom);
                h[i] = denom;
                h[i + 1] = 0.0;
                g[i + 1] = -sn[i] * g[i];
                g[i] *= cs[i];
                hcols.push(h);
                cols = i + 1;
                if hnorm == 0.0 {
                    // Happy breakdown: the exact solution lies in the span.
                    breakdown = true;
                    break;
                }
                if g[i + 1].abs() < self.tolerance {
                    break;
                }
                let mut v = vec![0.0; n];
                for (vs, ws) in v.iter_mut().zip(w.iter()) {
                    *vs = ws / hnorm;
                }
                basis.push(v);
            }

            if cols > 0 {
                // Back-substitute the least-squares solution and update x.
                let mut y = vec![0.0; cols];
                let mut solvable = true;
                for j in (0..cols).rev() {
                    let mut acc = g[j];
                    for (l, yl) in y.iter().enumerate().skip(j + 1) {
                        acc -= hcols[l][j] * yl;
                    }
                    let diag = hcols[j][j];
                    if diag == 0.0 {
                        solvable = false;
                        break;
                    }
                    y[j] = acc / diag;
                }
                if solvable {
                    for (yi, v) in y.iter().zip(basis.iter()) {
                        for (xs, vs) in x.iter_mut().zip(v.iter()) {
                            *xs += yi * vs;
                        }
                    }
                } else {
                    // A singular projected system: no progress possible.
                    break;
                }
            } else if breakdown {
                // No progress possible from this iterate.
                break;
            }
        }
        Err(CtmcError::NotConverged {
            solver: "krylov-operator steady-state",
            iterations: applies,
            residual: residual_inf,
        })
    }
}

/// One application of the modified balance operator:
/// `w = x Ã` with `(x Ã)[j] = ((x R)[j] - x_j E_j)/q` for `j != k` and
/// `(x Ã)[k] = sum_s x_s` (the normalisation column). The column sum runs
/// serially in state-index order — deterministic for every thread count.
#[allow(clippy::too_many_arguments)]
fn apply_modified<O: LinearOperator>(
    rates: &O,
    exit: &[f64],
    q: f64,
    k: usize,
    x: &[f64],
    w: &mut [f64],
    scratch: &mut [f64],
    exec: &ExecOptions,
) -> Result<(), CtmcError> {
    rates.left_multiply_exec(x, scratch, exec)?;
    for (ws, ((&sc, &xs), &es)) in w
        .iter_mut()
        .zip(scratch.iter().zip(x.iter()).zip(exit.iter()))
    {
        *ws = (sc - xs * es) / q;
    }
    w[k] = x.iter().sum();
    Ok(())
}

/// Serial dot product in index order (deterministic across thread counts).
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Serial Euclidean norm in index order.
fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        v.iter_mut().for_each(|x| *x /= total);
    }
}

/// Clamps the tiny negative entries a Krylov least-squares solution may carry
/// (at residual scale) and renormalises to a probability vector.
fn clamp_normalize(v: &mut [f64]) {
    v.iter_mut().for_each(|x| {
        if *x < 0.0 {
            *x = 0.0;
        }
    });
    normalize(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::{Ctmc, CtmcBuilder};
    use crate::steady_state::SteadyStateSolver;

    const METHODS: [OperatorSteadyStateMethod; 3] = [
        OperatorSteadyStateMethod::Krylov,
        OperatorSteadyStateMethod::Jacobi,
        OperatorSteadyStateMethod::Power,
    ];

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, lambda).unwrap();
        b.add_transition(1, 0, mu).unwrap();
        b.build().unwrap()
    }

    /// Irreducible ring chain with shortcut chords, large enough to clear the
    /// parallel-work threshold.
    fn ring_chain(n: usize) -> Ctmc {
        let mut b = CtmcBuilder::new(n);
        for s in 0..n {
            b.add_transition(s, (s + 1) % n, 1.0 + (s % 5) as f64)
                .unwrap();
            b.add_transition(s, (s + n / 2 + s % 7) % n, 2.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn stiff_two_state_matches_closed_form_for_every_method() {
        // Repair rate two orders of magnitude above the failure rate — the
        // stiffness regime of the paper's component models.
        let chain = two_state(0.002, 0.2);
        let expected_down = 0.002 / 0.202;
        for method in METHODS {
            let pi =
                OperatorSteadyStateSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec())
                    .unwrap()
                    .method(method)
                    .tolerance(1e-12)
                    .solve()
                    .unwrap();
            assert!(
                (pi[1] - expected_down).abs() < 1e-9,
                "{method:?}: {}",
                pi[1]
            );
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{method:?}");
        }
    }

    #[test]
    fn matches_the_materialised_solver_on_a_ring_chain() {
        let chain = ring_chain(600);
        let reference = SteadyStateSolver::new(&chain)
            .tolerance(1e-13)
            .solve()
            .unwrap();
        for method in METHODS {
            let pi =
                OperatorSteadyStateSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec())
                    .unwrap()
                    .method(method)
                    .tolerance(1e-13)
                    .solve()
                    .unwrap();
            for (a, b) in pi.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-10, "{method:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sharded_solves_are_bit_identical_to_serial() {
        let chain = ring_chain(2200);
        for method in METHODS {
            let reference =
                OperatorSteadyStateSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec())
                    .unwrap()
                    .method(method)
                    .tolerance(1e-8)
                    .exec(ExecOptions::serial())
                    .solve_counted()
                    .unwrap();
            for threads in [2usize, 4, 8] {
                let sharded = OperatorSteadyStateSolver::new(
                    chain.rate_matrix(),
                    chain.exit_rates().to_vec(),
                )
                .unwrap()
                .method(method)
                .tolerance(1e-8)
                .exec(ExecOptions::with_threads(threads))
                .solve_counted()
                .unwrap();
                assert_eq!(sharded.0, reference.0, "{method:?}, {threads} threads");
                assert_eq!(sharded.1, reference.1, "{method:?}, {threads} threads");
            }
        }
    }

    #[test]
    fn warm_start_shortens_the_krylov_solve_and_keeps_the_fixed_point() {
        let chain = ring_chain(600);
        let solver = |guess: Option<Vec<f64>>| {
            let mut s =
                OperatorSteadyStateSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec())
                    .unwrap()
                    .tolerance(1e-12);
            if let Some(g) = guess {
                s = s.initial_guess(g);
            }
            s.solve_counted().unwrap()
        };
        let (cold, cold_applies) = solver(None);
        let (warm, warm_applies) = solver(Some(cold.clone()));
        assert!(
            warm_applies <= cold_applies,
            "{warm_applies} > {cold_applies}"
        );
        for (a, b) in warm.iter().zip(cold.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        // A zero-mass guess falls back to the uniform start.
        let (fallback, _) = solver(Some(vec![0.0; 600]));
        for (a, b) in fallback.iter().zip(cold.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn balance_residual_certifies_the_solution() {
        let chain = ring_chain(600);
        let solver =
            OperatorSteadyStateSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec())
                .unwrap()
                .tolerance(1e-12);
        let pi = solver.solve().unwrap();
        // The certificate is an unscaled balance residual; rates here are
        // O(1), so the solve tolerance bounds it up to the uniformisation
        // factor.
        assert!(solver.balance_residual(&pi).unwrap() < 1e-9);
        let uniform = vec![1.0 / 600.0; 600];
        assert!(solver.balance_residual(&uniform).unwrap() > 1e-6);
        assert!(solver.balance_residual(&[1.0]).is_err());
    }

    #[test]
    fn validation_mirrors_the_transient_operator_solver() {
        let chain = two_state(1.0, 2.0);
        let rates = chain.rate_matrix();
        assert!(OperatorSteadyStateSolver::new(rates, vec![0.0; 3]).is_err());
        assert!(OperatorSteadyStateSolver::new(rates, vec![-1.0, 0.0]).is_err());
        assert!(OperatorSteadyStateSolver::new(rates, vec![f64::NAN, 0.0]).is_err());
        let mut b = crate::sparse::SparseMatrixBuilder::new(2, 3);
        b.push(0, 1, 1.0);
        let rect = b.build();
        assert!(OperatorSteadyStateSolver::new(&rect, vec![0.0; 2]).is_err());

        let solver = OperatorSteadyStateSolver::new(rates, chain.exit_rates().to_vec()).unwrap();
        assert!(solver.clone().initial_guess(vec![1.0]).solve().is_err());
        assert!(solver
            .clone()
            .initial_guess(vec![-1.0, 2.0])
            .solve()
            .is_err());
    }

    #[test]
    fn transition_free_operator_returns_the_start() {
        let empty = crate::sparse::SparseMatrixBuilder::new(3, 3).build();
        let (pi, applies) = OperatorSteadyStateSolver::new(&empty, vec![0.0; 3])
            .unwrap()
            .solve_counted()
            .unwrap();
        assert_eq!(pi, vec![1.0 / 3.0; 3]);
        assert_eq!(applies, 0);
    }

    #[test]
    fn iteration_cap_produces_not_converged() {
        let chain = two_state(1.0, 3.0);
        for method in [
            OperatorSteadyStateMethod::Jacobi,
            OperatorSteadyStateMethod::Power,
        ] {
            let result =
                OperatorSteadyStateSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec())
                    .unwrap()
                    .method(method)
                    .max_iterations(1)
                    .tolerance(1e-16)
                    .solve();
            assert!(
                matches!(result, Err(CtmcError::NotConverged { .. })),
                "{method:?}"
            );
        }
        // Krylov needs at least the initial residual apply plus one Arnoldi
        // step; a one-apply budget cannot converge from a bad start.
        let result =
            OperatorSteadyStateSolver::new(chain.rate_matrix(), chain.exit_rates().to_vec())
                .unwrap()
                .max_iterations(1)
                .tolerance(1e-16)
                .solve();
        assert!(matches!(result, Err(CtmcError::NotConverged { .. })));
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(
            OperatorSteadyStateMethod::Krylov.tier_name(),
            "krylov-operator"
        );
        assert_eq!(
            OperatorSteadyStateMethod::Jacobi.tier_name(),
            "jacobi-operator"
        );
        assert_eq!(
            OperatorSteadyStateMethod::Power.tier_name(),
            "power-operator"
        );
    }
}
