//! Property-based determinism tests of the parallel execution layer: the
//! sharded kernels and the batched multi-time-point solvers must be
//! bit-identical to the serial path for every thread count.

use ctmc::{
    Ctmc, CtmcBuilder, ExecOptions, SparseMatrix, SparseMatrixBuilder, TransientOptions,
    TransientSolver,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic xorshift stream so large matrices can be described by a seed
/// instead of a 10k-element proptest vector.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A pseudo-random matrix with enough stored entries to clear the
/// parallel-work threshold, so the sharded code path genuinely runs. Each
/// row gets a contiguous (wrapping) run of columns at a random offset, which
/// guarantees distinct coordinates — nothing merges away below the threshold.
fn matrix_from_seed(rows: usize, cols: usize, seed: u64) -> SparseMatrix {
    let per_row = ctmc::exec::MIN_PARALLEL_WORK.div_ceil(rows).min(cols);
    let mut builder = SparseMatrixBuilder::new(rows, cols);
    let mut state = seed | 1;
    for r in 0..rows {
        let offset = xorshift(&mut state) as usize % cols;
        for j in 0..per_row {
            let v = (xorshift(&mut state) % 2001) as f64 / 1000.0 - 1.0;
            builder.push(r, (offset + j) % cols, v);
        }
    }
    builder.build()
}

fn vector_from_seed(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| (xorshift(&mut state) % 2001) as f64 / 1000.0 - 1.0)
        .collect()
}

/// A small random irreducible CTMC (cycle plus chords), as in the other
/// proptest suites.
fn arbitrary_chain() -> impl Strategy<Value = Ctmc> {
    (2usize..=6)
        .prop_flat_map(|n| {
            let cycle_rates = proptest::collection::vec(0.01f64..10.0, n);
            let extras = proptest::collection::vec((0..n, 0..n, 0.01f64..10.0), 0..8);
            (Just(n), cycle_rates, extras)
        })
        .prop_map(|(n, cycle_rates, extras)| {
            let mut builder = CtmcBuilder::new(n);
            for (i, rate) in cycle_rates.iter().enumerate() {
                builder.add_transition(i, (i + 1) % n, *rate).unwrap();
            }
            for (from, to, rate) in extras {
                if from != to {
                    builder.add_transition(from, to, rate).unwrap();
                }
            }
            builder.set_initial_state(0).unwrap();
            builder.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_multiplies_are_bit_identical_on_large_matrices(
        rows in 80usize..200,
        cols in 80usize..200,
        seed in any::<u64>(),
    ) {
        let matrix = matrix_from_seed(rows, cols, seed);
        prop_assert!(matrix.num_entries() >= ctmc::exec::MIN_PARALLEL_WORK);
        let x_left = vector_from_seed(rows, seed ^ 0xABCD);
        let x_right = vector_from_seed(cols, seed ^ 0x1234);

        let mut serial_left = vec![0.0; cols];
        matrix.left_multiply(&x_left, &mut serial_left).unwrap();
        let mut serial_right = vec![0.0; rows];
        matrix.right_multiply(&x_right, &mut serial_right).unwrap();

        for threads in THREAD_COUNTS {
            let exec = ExecOptions::with_threads(threads);
            let mut y = vec![f64::NAN; cols];
            matrix.left_multiply_exec(&x_left, &mut y, &exec).unwrap();
            prop_assert_eq!(&y, &serial_left, "left multiply, {} threads", threads);
            let mut y = vec![f64::NAN; rows];
            matrix.right_multiply_exec(&x_right, &mut y, &exec).unwrap();
            prop_assert_eq!(&y, &serial_right, "right multiply, {} threads", threads);
        }
    }

    #[test]
    fn transient_measures_do_not_depend_on_the_thread_count(
        chain in arbitrary_chain(),
        t1 in 0.0f64..20.0,
        t2 in 0.0f64..20.0,
    ) {
        let times = [t1, t2, 0.0];
        let n = chain.num_states();
        let goal: Vec<bool> = (0..n).map(|s| s == n - 1).collect();
        let safe = vec![true; n];

        let serial = TransientSolver::with_options(&chain, TransientOptions {
            exec: ExecOptions::serial(),
            ..TransientOptions::default()
        });
        let probs = serial.probabilities_at_many(&times).unwrap();
        let reach = serial.bounded_until_many(&safe, &goal, &times).unwrap();

        for threads in THREAD_COUNTS {
            let solver = TransientSolver::with_options(&chain, TransientOptions {
                exec: ExecOptions::with_threads(threads),
                ..TransientOptions::default()
            });
            prop_assert_eq!(
                &solver.probabilities_at_many(&times).unwrap(),
                &probs,
                "distributions, {} threads",
                threads
            );
            prop_assert_eq!(
                &solver.bounded_until_many(&safe, &goal, &times).unwrap(),
                &reach,
                "reachability, {} threads",
                threads
            );
        }
    }
}
