//! Property tests of the matrix-free stationary solver: for random
//! irreducible chains, every [`OperatorSteadyStateSolver`] method must agree
//! with the materialised [`SteadyStateSolver`] to 1e-10, and the sharded
//! solves must be bit-identical for every thread count.

use ctmc::{
    Ctmc, CtmcBuilder, ExecOptions, OperatorSteadyStateMethod, OperatorSteadyStateSolver,
    SteadyStateSolver,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const METHODS: [OperatorSteadyStateMethod; 3] = [
    OperatorSteadyStateMethod::Krylov,
    OperatorSteadyStateMethod::Jacobi,
    OperatorSteadyStateMethod::Power,
];

/// An irreducible ring chain with shortcut chords and deterministic
/// pseudo-random rates derived from `seed` — the same chain family the
/// lumping product proptests use.
fn ring_chain(n: usize, seed: u64) -> Ctmc {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut builder = CtmcBuilder::new(n);
    for s in 0..n {
        let rate = 0.1 + (next() % 1000) as f64 / 250.0;
        builder.add_transition(s, (s + 1) % n, rate).unwrap();
        if n > 2 {
            let chord = (s + 1 + next() as usize % (n - 2)) % n;
            if chord != s {
                let rate = 0.05 + (next() % 1000) as f64 / 500.0;
                builder.add_transition(s, chord, rate).unwrap();
            }
        }
    }
    builder.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Operator ≡ materialised on random irreducible chains: both solvers
    /// driven to a tolerance well below the comparison threshold.
    #[test]
    fn operator_methods_agree_with_the_materialised_solver(
        n in 2usize..=40,
        seed in 1u64..10_000,
    ) {
        let chain = ring_chain(n, seed);
        let reference = SteadyStateSolver::new(&chain)
            .tolerance(1e-13)
            .solve()
            .unwrap();
        for method in METHODS {
            let pi = OperatorSteadyStateSolver::new(
                chain.rate_matrix(),
                chain.exit_rates().to_vec(),
            )
            .unwrap()
            .method(method)
            .tolerance(1e-13)
            .solve()
            .unwrap();
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{method:?}");
            for (s, (a, b)) in pi.iter().zip(reference.iter()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-10,
                    "{method:?}, state {s}: {a} vs {b}"
                );
            }
        }
    }

    /// A warm start from the answer keeps the fixed point and the sharded
    /// solves are bit-identical (same vector, same apply count) for every
    /// thread count.
    #[test]
    fn sharded_operator_solves_are_bit_identical(
        n in 8usize..=40,
        seed in 1u64..10_000,
    ) {
        let chain = ring_chain(n, seed);
        for method in METHODS {
            let reference = OperatorSteadyStateSolver::new(
                chain.rate_matrix(),
                chain.exit_rates().to_vec(),
            )
            .unwrap()
            .method(method)
            .exec(ExecOptions::serial())
            .solve_counted()
            .unwrap();
            for &threads in &THREAD_COUNTS {
                let sharded = OperatorSteadyStateSolver::new(
                    chain.rate_matrix(),
                    chain.exit_rates().to_vec(),
                )
                .unwrap()
                .method(method)
                .exec(ExecOptions::with_threads(threads))
                .solve_counted()
                .unwrap();
                prop_assert_eq!(&sharded.0, &reference.0, "{:?}, {} threads", method, threads);
                prop_assert_eq!(sharded.1, reference.1, "{:?}, {} threads", method, threads);
            }
            // The balance-residual certificate accepts the solution and
            // rejects a visibly wrong vector.
            let solver = OperatorSteadyStateSolver::new(
                chain.rate_matrix(),
                chain.exit_rates().to_vec(),
            )
            .unwrap();
            prop_assert!(solver.balance_residual(&reference.0).unwrap() < 1e-7);
        }
    }
}
