//! Property-based tests of the CTMC numerics on randomly generated chains.

use ctmc::{Ctmc, CtmcBuilder, FoxGlynn, SteadyStateSolver, TransientSolver};
use proptest::prelude::*;

/// Strategy generating a small, fully-connected-enough random CTMC:
/// `n` states (2..=6) with a Hamiltonian cycle (guaranteeing irreducibility)
/// plus a set of random extra transitions.
fn arbitrary_irreducible_chain() -> impl Strategy<Value = Ctmc> {
    (2usize..=6)
        .prop_flat_map(|n| {
            let cycle_rates = proptest::collection::vec(0.01f64..10.0, n);
            let extras = proptest::collection::vec((0..n, 0..n, 0.01f64..10.0), 0..8);
            (Just(n), cycle_rates, extras)
        })
        .prop_map(|(n, cycle_rates, extras)| {
            let mut builder = CtmcBuilder::new(n);
            for (i, rate) in cycle_rates.iter().enumerate() {
                builder.add_transition(i, (i + 1) % n, *rate).unwrap();
            }
            for (from, to, rate) in extras {
                if from != to {
                    builder.add_transition(from, to, rate).unwrap();
                }
            }
            builder.set_initial_state(0).unwrap();
            builder.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transient_distributions_are_probability_vectors(
        chain in arbitrary_irreducible_chain(),
        t in 0.0f64..50.0,
    ) {
        let probabilities = TransientSolver::new(&chain).probabilities_at(t).unwrap();
        let total: f64 = probabilities.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "sum {total}");
        prop_assert!(probabilities.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
    }

    #[test]
    fn steady_state_is_a_fixed_point_of_the_balance_equations(
        chain in arbitrary_irreducible_chain(),
    ) {
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        let total: f64 = pi.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        // pi * Q = 0 componentwise (within tolerance).
        let generator = chain.generator_matrix();
        let mut flow = vec![0.0; chain.num_states()];
        generator.left_multiply(&pi, &mut flow).unwrap();
        for value in flow {
            prop_assert!(value.abs() < 1e-6, "residual {value}");
        }
    }

    #[test]
    fn transient_converges_to_steady_state(chain in arbitrary_irreducible_chain()) {
        let pi = SteadyStateSolver::new(&chain).solve().unwrap();
        // A generous horizon relative to the slowest rate in the chain.
        let horizon = 2000.0 / chain.exit_rates().iter().copied().fold(f64::INFINITY, f64::min);
        let transient = TransientSolver::new(&chain).probabilities_at(horizon).unwrap();
        for (a, b) in transient.iter().zip(pi.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "transient {a} vs steady {b}");
        }
    }

    #[test]
    fn bounded_reachability_is_monotone_in_time(
        chain in arbitrary_irreducible_chain(),
        t1 in 0.0f64..20.0,
        delta in 0.0f64..20.0,
    ) {
        let goal = vec![chain.num_states() - 1];
        let solver = TransientSolver::new(&chain);
        let early = solver.bounded_reachability(&goal, t1).unwrap();
        let late = solver.bounded_reachability(&goal, t1 + delta).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&early));
        prop_assert!(late >= early - 1e-9, "late {late} < early {early}");
    }

    #[test]
    fn sojourn_times_integrate_to_the_elapsed_time(
        chain in arbitrary_irreducible_chain(),
        t in 0.0f64..50.0,
    ) {
        let sojourn = TransientSolver::new(&chain).expected_sojourn_times(t).unwrap();
        let total: f64 = sojourn.iter().sum();
        prop_assert!((total - t).abs() < 1e-6, "total {total} vs t {t}");
        prop_assert!(sojourn.iter().all(|&l| l >= -1e-12));
    }

    #[test]
    fn fox_glynn_weights_form_a_distribution(lambda in 0.0f64..5000.0) {
        let fg = FoxGlynn::new(lambda, 1e-12).unwrap();
        let total: f64 = fg.weights.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        prop_assert!(fg.left <= fg.right);
        prop_assert!(fg.weights.iter().all(|w| *w >= 0.0 && w.is_finite()));
    }

    #[test]
    fn uniformized_matrix_is_stochastic(chain in arbitrary_irreducible_chain(), factor in 1.0f64..3.0) {
        let q = chain.max_exit_rate() * factor + 1e-9;
        let p = chain.uniformized_matrix(q).unwrap();
        for sum in p.row_sums() {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
