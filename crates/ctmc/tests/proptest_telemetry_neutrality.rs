//! Property tests that telemetry is observationally free: running either
//! stationary solver under an enabled recorder — spans only, or spans plus
//! per-iteration residual probes — returns bit-identical vectors and
//! identical iteration counts to the untraced solve, at 1, 2, 4 and 8
//! worker threads. Spans observe, they never steer.

use arcade_telemetry::Recorder;
use ctmc::{
    Ctmc, CtmcBuilder, ExecOptions, OperatorSteadyStateMethod, OperatorSteadyStateSolver,
    SteadyStateSolver,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The same irreducible ring-with-chords family the other solver proptests
/// draw from.
fn ring_chain(n: usize, seed: u64) -> Ctmc {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut builder = CtmcBuilder::new(n);
    for s in 0..n {
        let rate = 0.1 + (next() % 1000) as f64 / 250.0;
        builder.add_transition(s, (s + 1) % n, rate).unwrap();
        if n > 2 {
            let chord = (s + 1 + next() as usize % (n - 2)) % n;
            if chord != s {
                let rate = 0.05 + (next() % 1000) as f64 / 500.0;
                builder.add_transition(s, chord, rate).unwrap();
            }
        }
    }
    builder.build().unwrap()
}

fn bits(pi: &[f64]) -> Vec<u64> {
    pi.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The materialised Gauss–Seidel solver under a scoped recorder (with
    /// and without probes) is bit-identical to the untraced solve at every
    /// thread count, and the recorder's counters agree with the returned
    /// iteration count.
    #[test]
    fn materialised_solver_is_bit_identical_under_recording(
        n in 2usize..=32,
        seed in 1u64..10_000,
    ) {
        let chain = ring_chain(n, seed);
        for &threads in &THREAD_COUNTS {
            let exec = ExecOptions::with_threads(threads);
            let baseline = SteadyStateSolver::new(&chain)
                .exec(exec)
                .solve_counted()
                .unwrap();
            for recorder in [Recorder::enabled(), Recorder::with_probes()] {
                let traced = {
                    let _scope = recorder.enter();
                    SteadyStateSolver::new(&chain)
                        .exec(exec)
                        .solve_counted()
                        .unwrap()
                };
                prop_assert_eq!(
                    bits(&traced.0),
                    bits(&baseline.0),
                    "threads {}, probes {}",
                    threads,
                    recorder.probes_enabled()
                );
                prop_assert_eq!(traced.1, baseline.1);
                prop_assert_eq!(
                    recorder.counter_total("solve", "iterations"),
                    baseline.1 as u64
                );
                if recorder.probes_enabled() {
                    let series = recorder.series();
                    prop_assert_eq!(series.len(), 1);
                    prop_assert_eq!(series[0].values.len(), baseline.1);
                }
            }
        }
    }

    /// The matrix-free Krylov solver — the numerically most delicate tier —
    /// under recording, same contract.
    #[test]
    fn operator_solver_is_bit_identical_under_recording(
        n in 8usize..=32,
        seed in 1u64..10_000,
    ) {
        let chain = ring_chain(n, seed);
        for &threads in &THREAD_COUNTS {
            let exec = ExecOptions::with_threads(threads);
            let solver = || {
                OperatorSteadyStateSolver::new(
                    chain.rate_matrix(),
                    chain.exit_rates().to_vec(),
                )
                .unwrap()
                .method(OperatorSteadyStateMethod::Krylov)
                .exec(exec)
            };
            let baseline = solver().solve_counted().unwrap();
            let recorder = Recorder::with_probes();
            let traced = {
                let _scope = recorder.enter();
                solver().solve_counted().unwrap()
            };
            prop_assert_eq!(bits(&traced.0), bits(&baseline.0), "threads {}", threads);
            prop_assert_eq!(traced.1, baseline.1);
            prop_assert_eq!(
                recorder.counter_total("solve", "iterations"),
                baseline.1 as u64
            );
        }
    }
}
