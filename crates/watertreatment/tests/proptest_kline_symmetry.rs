//! Property tests of the k-line twin-bank symmetry fold.
//!
//! * A bank of k identical lines must fold to **exactly**
//!   `C(n + k − 1, k)` sorted-tuple orbit representatives, where `n` is the
//!   per-line solver-chain size — for every one of the five paper repair
//!   strategies and k ∈ {3, 4}.
//! * The fold is evaluated strictly sequentially, so the orbit-enumeration
//!   availability of a DED twin bank must be bit-identical at 1, 2, 4 and
//!   8 worker threads.

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis, FacilityModel};
use arcade_symmetry::orbit_count;
use proptest::prelude::*;
use watertreatment::ModelSpec;

fn bank(spec: &str) -> FacilityModel {
    ModelSpec::parse(spec)
        .unwrap()
        .facility_model()
        .unwrap()
        .expect("facility spec")
}

fn options(threads: usize) -> ComposerOptions {
    ComposerOptions {
        exec: ExecOptions::with_threads(threads),
        ..ComposerOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn twin_banks_fold_to_the_multiset_coefficient(
        strategy_index in 0usize..5,
        k in 3usize..=4,
    ) {
        let label = watertreatment::strategies::paper_strategies()[strategy_index]
            .label
            .to_lowercase();
        let model = bank(&format!("facility/{label}^{k}"));
        let analysis = FacilityAnalysis::with_options(&model, options(1)).unwrap();
        let stats = analysis.stats();
        prop_assert_eq!(stats.lines.len(), k);
        let n = stats.lines[0].stats.num_states;
        for line in &stats.lines {
            prop_assert_eq!(line.stats.num_states, n, "twins compile identically");
        }
        prop_assert_eq!(stats.joint_blocks, n.pow(k as u32), "flat product of twins");
        prop_assert_eq!(
            stats.orbit_blocks,
            Some(orbit_count(k, n)),
            "{label}^{k}: k twins of {n} blocks fold to C(n+k-1, k)"
        );
    }
}

#[test]
fn ded_twin_fold_is_bit_identical_across_thread_counts() {
    let model = bank("facility/ded^3");
    let reference = FacilityAnalysis::with_options(&model, options(1)).unwrap();
    let orbit = reference.orbit_availability(usize::MAX).unwrap();
    assert_eq!(orbit.orbit_bound, orbit_count(3, 96), "C(98, 3)");
    assert_eq!(orbit.orbits_explored, orbit.orbit_bound);
    assert!((orbit.total_mass - 1.0).abs() < 1e-9);
    let product_form = reference.steady_state_availability().unwrap();
    assert!((orbit.availability - product_form).abs() <= 1e-12);

    for threads in [2usize, 4, 8] {
        let analysis = FacilityAnalysis::with_options(&model, options(threads)).unwrap();
        let again = analysis.orbit_availability(usize::MAX).unwrap();
        assert_eq!(
            again.availability.to_bits(),
            orbit.availability.to_bits(),
            "{threads} threads"
        );
        assert_eq!(again.orbits_explored, orbit.orbits_explored);
        assert_eq!(
            analysis.steady_state_availability().unwrap().to_bits(),
            product_form.to_bits(),
            "{threads} threads"
        );
    }
}
