//! # watertreatment — the DSN 2010 case study
//!
//! This crate instantiates the Arcade framework for the simplified
//! water-treatment facility of *"Evaluating Repair Strategies for a
//! Water-Treatment Facility using Arcade"* (DSN 2010) and provides experiment
//! runners that regenerate every table and figure of the paper's evaluation
//! section.
//!
//! The facility consists of two independent process lines:
//!
//! * **Line 1**: 3 softening tanks, 3 sand filters, 1 reservoir, 4 pumps of
//!   which 3 are required (one spare);
//! * **Line 2**: 3 softening tanks, 2 sand filters, 1 reservoir, 3 pumps of
//!   which 2 are required (one spare).
//!
//! Component MTTF/MTTR values follow Fig. 2 of the paper (pump 500 h / 1 h,
//! sand filter 1000 h / 100 h, softener 2000 h / 5 h, reservoir 6000 h / 12 h);
//! see `DESIGN.md` for the derivation. Costs follow §5: a repair crew costs 1
//! per hour while idle and a failed component costs 3 per hour.
//!
//! # Quick start
//!
//! ```no_run
//! use watertreatment::{facility, strategies, Line};
//! use arcade_core::Analysis;
//!
//! # fn main() -> Result<(), arcade_core::ArcadeError> {
//! let spec = strategies::frf(2); // fastest-repair-first, two crews
//! let model = facility::line_model(Line::Line2, &spec)?;
//! let analysis = Analysis::new(&model)?;
//! println!("Line 2 availability under FRF-2: {:.7}", analysis.steady_state_availability()?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod facility;
pub mod registry;
pub mod strategies;

pub use facility::{Line, LineSelection, LineSpec};
pub use registry::{ModelSpec, ModelTarget};
pub use strategies::StrategySpec;

/// Combines the availabilities of the two independent lines into the overall
/// facility availability, as in the paper:
/// `A = A1 + A2 - A1 * A2`.
pub fn combined_availability(line1: f64, line2: f64) -> f64 {
    line1 + line2 - line1 * line2
}

/// The k-line generalisation of [`combined_availability`]: the probability
/// that at least one of k independent lines is operational,
/// `A = 1 − Π (1 − Aᵢ)`. For two lines this is algebraically the paper's
/// `A1 + A2 − A1·A2` (the FP evaluation order differs, so the two-line
/// helper stays the pinned reference for the paper's tables).
pub fn combined_availability_k(lines: &[f64]) -> f64 {
    1.0 - lines.iter().map(|a| 1.0 - a).product::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_availability_formula() {
        assert!((combined_availability(0.5, 0.5) - 0.75).abs() < 1e-12);
        assert!((combined_availability(1.0, 0.3) - 1.0).abs() < 1e-12);
        assert!((combined_availability(0.0, 0.3) - 0.3).abs() < 1e-12);
        // The paper's Table 2 dedicated row.
        let combined = combined_availability(0.7442018, 0.8186317);
        assert!((combined - 0.9536063).abs() < 1e-6);
    }

    #[test]
    fn k_line_combined_availability_generalises_the_pair_formula() {
        let pair = combined_availability_k(&[0.7442018, 0.8186317]);
        assert!((pair - combined_availability(0.7442018, 0.8186317)).abs() < 1e-12);
        assert!((combined_availability_k(&[0.5, 0.5, 0.5]) - 0.875).abs() < 1e-12);
        assert!((combined_availability_k(&[0.9]) - 0.9).abs() < 1e-12);
        assert_eq!(combined_availability_k(&[]), 0.0);
    }
}
